//! The [`Strategy`] trait and the combinators the workspace uses.

use std::marker::PhantomData;
use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike the real proptest, a stub strategy is just a generator — there
/// is no value tree and no shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }

    /// Builds a recursive strategy: `self` is the leaf, and `recurse`
    /// wraps an inner strategy into a composite, applied up to `depth`
    /// times. The `_desired_size` and `_expected_branch_size` hints of the
    /// real API are accepted and ignored.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            current = Union::new_weighted(vec![
                (1, leaf.clone()),
                (2, recurse(current).boxed()),
            ])
            .boxed();
        }
        current
    }
}

/// A type-erased, reference-counted strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Weighted choice between strategies of one value type.
pub struct Union<S> {
    options: Vec<(u32, S)>,
}

impl<S: Strategy> Union<S> {
    /// Uniform choice over `options`.
    pub fn new(options: impl IntoIterator<Item = S>) -> Self {
        Union { options: options.into_iter().map(|s| (1, s)).collect() }
    }

    /// Weighted choice over `options`.
    pub fn new_weighted(options: Vec<(u32, S)>) -> Self {
        assert!(!options.is_empty(), "Union of zero strategies");
        Union { options }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        let total: u64 = self.options.iter().map(|&(w, _)| u64::from(w)).sum();
        let mut pick = rng.below(total.max(1));
        for (weight, option) in &self.options {
            let weight = u64::from(*weight);
            if pick < weight {
                return option.generate(rng);
            }
            pick -= weight;
        }
        self.options[0].1.generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128 as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Simple regex strategies of the form `[class]{min,max}`: random strings
/// of `min..=max` characters drawn from the class. This is the only regex
/// shape the workspace's tests use; anything else is rejected loudly.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, min, max) = parse_class_repeat(self)
            .unwrap_or_else(|| panic!("unsupported regex strategy `{self}` (stub supports `[class]{{min,max}}` only)"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| alphabet[rng.below(alphabet.len() as u64) as usize]).collect()
    }
}

fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
    let (min, max) = counts.split_once(',')?;
    let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
    if min > max {
        return None;
    }

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` is a range unless the dash is first or last in the class.
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            if lo <= hi {
                alphabet.extend((lo..=hi).filter(|c| c.is_ascii()));
                i += 3;
                continue;
            }
        }
        alphabet.push(class[i]);
        i += 1;
    }
    if alphabet.is_empty() {
        return None;
    }
    Some((alphabet, min, max))
}

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy produced by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The whole-domain strategy for this type.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for the full domain of `T` (see [`Arbitrary`]).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// The strategy type backing [`any`].
pub struct Any<T>(PhantomData<T>);

macro_rules! any_int {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = Any<$t>;

            fn arbitrary() -> Any<$t> {
                Any(PhantomData)
            }
        }
    )*};
}

any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = Any<bool>;

    fn arbitrary() -> Any<bool> {
        Any(PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges");
        for _ in 0..1000 {
            let v = (10i32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let u = (0usize..3).generate(&mut rng);
            assert!(u < 3);
        }
    }

    #[test]
    fn class_repeat_parses() {
        let (alphabet, min, max) = parse_class_repeat("[ -~]{0,200}").unwrap();
        assert_eq!(min, 0);
        assert_eq!(max, 200);
        assert!(alphabet.contains(&' ') && alphabet.contains(&'~') && alphabet.contains(&'a'));

        let (alphabet, _, _) = parse_class_repeat("[a-z0-9(){};=<>+*,: ]{0,200}").unwrap();
        assert!(alphabet.contains(&'q') && alphabet.contains(&'{') && alphabet.contains(&' '));
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::deterministic("weights");
        let u = Union::new_weighted(vec![(1u32, Just(0u8).boxed()), (9, Just(1u8).boxed())]);
        let ones: usize = (0..1000).map(|_| usize::from(u.generate(&mut rng))).sum();
        assert!(ones > 800, "{ones}");
    }
}
