//! Deterministic random source for generated test cases.

/// A SplitMix64 generator; seeded from the property's name so every run
/// of a test binary replays the same cases.
#[derive(Clone, Debug)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds from an arbitrary label (the property name).
    pub fn deterministic(label: &str) -> Self {
        // FNV-1a over the label, folded into a fixed session constant.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in label.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng(hash ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}
