//! Minimal offline stub of `proptest`.
//!
//! The build environment for this repository has no crates.io access, so
//! the real crate cannot be fetched. This stub implements the subset of
//! the proptest API the workspace's property tests use — the [`Strategy`]
//! trait with `prop_map`/`prop_recursive`/`boxed`, integer-range and
//! simple regex (`[class]{min,max}`) strategies, tuples, unions,
//! collections, and the `proptest!`/`prop_oneof!`/`prop_assert*!` macros —
//! on top of a deterministic SplitMix64 generator.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its inputs (via the
//!   strategy's `Debug` output where available) but is not minimized.
//! * **Deterministic seeding.** Each property derives its seed from the
//!   test name, so failures reproduce exactly across runs.
//! * **64 cases per property by default** (the real crate runs 256);
//!   override with `#![proptest_config(ProptestConfig { cases: .., .. })]`.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The usual `use proptest::prelude::*;` surface.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// Per-property execution configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; the stub never shrinks.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_shrink_iters: 0 }
    }
}

/// Defines property tests: each function body runs `config.cases` times
/// with fresh inputs drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr)) => {};
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let result: ::std::result::Result<(), ::std::string::String> = (|| {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = result {
                    panic!(
                        "property `{}` failed at case {case}: {message}",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a property; failure fails the case (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Asserts two values are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {left:?}\n right: {right:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Asserts two values are not equal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} != {}`\n  both: {left:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

/// Skips the case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}
