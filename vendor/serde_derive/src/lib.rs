//! No-op `Serialize`/`Deserialize` derive macros for the offline serde
//! stub (see `vendor/serde`). They accept any item and expand to nothing:
//! the attributes stay valid, no trait impls are generated, and no code
//! in this workspace requires the impls.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
