//! Minimal offline stub of `criterion`, covering the subset this
//! workspace's benches use: `criterion_group!`/`criterion_main!`,
//! benchmark groups with `sample_size`/`measurement_time`/`throughput`,
//! and `Bencher::iter`. The build environment has no crates.io access, so
//! the real crate cannot be fetched.
//!
//! Measurement model: each `bench_function` first calibrates an iteration
//! count so one sample lasts roughly `measurement_time / sample_size`,
//! then takes `sample_size` wall-clock samples and reports the median,
//! minimum and maximum time per iteration (plus throughput when
//! configured). No statistical outlier analysis, no HTML reports.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers keep working.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver (stub).
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Mirrors `Criterion::configure_from_args`; the stub takes no
    /// command-line configuration.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            throughput: None,
        }
    }

    /// Runs one stand-alone benchmark with default group settings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let mut group = self.benchmark_group("default");
        group.bench_function(name, f);
        group.finish();
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of wall-clock samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Annotates how much work one iteration performs.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Measures `f` and prints per-iteration timing.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, mut f: F) {
        let name = name.into();

        // Calibrate: how many iterations fit in one sample slot?
        let budget = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64().max(1e-9);
        let iters = ((budget / per_iter).round() as u64).clamp(1, 1_000_000_000);

        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher { iters, elapsed: Duration::ZERO };
            f(&mut bencher);
            samples.push(bencher.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);

        let mut line = format!(
            "{}/{name}: median {}  [min {}, max {}]  ({} samples x {iters} iters)",
            self.name,
            fmt_time(median),
            fmt_time(lo),
            fmt_time(hi),
            self.sample_size,
        );
        if let Some(t) = self.throughput {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let rate = count as f64 / median;
            line.push_str(&format!("  {:.3e} {unit}/s", rate));
        }
        println!("{line}");
    }

    /// Ends the group (printing is already done incrementally).
    pub fn finish(self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
