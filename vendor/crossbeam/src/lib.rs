//! Minimal offline stub of `crossbeam`, providing only what this
//! workspace uses: [`utils::CachePadded`]. The build environment has no
//! crates.io access, so the real crate cannot be fetched; the alignment
//! trick below is the load-bearing part of the original and is preserved
//! faithfully.

/// Utilities (mirrors `crossbeam::utils`).
pub mod utils {
    use core::fmt;
    use core::ops::{Deref, DerefMut};

    /// Pads and aligns a value to the length of a cache line, so two
    /// `CachePadded` values never share a line (no false sharing between
    /// the producer's tail and the consumer's head indices).
    ///
    /// 128 bytes covers the adjacent-line prefetcher pairs on modern
    /// x86_64 and the 128-byte lines on apple-silicon aarch64, matching
    /// the real crossbeam's choice for these targets.
    #[derive(Clone, Copy, Default, PartialEq, Eq)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Pads `value` to a cache line.
        pub const fn new(value: T) -> CachePadded<T> {
            CachePadded { value }
        }

        /// Returns the inner value.
        pub fn into_inner(self) -> T {
            self.value
        }
    }

    impl<T> Deref for CachePadded<T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }

    impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("CachePadded").field("value", &self.value).finish()
        }
    }

    impl<T> From<T> for CachePadded<T> {
        fn from(value: T) -> Self {
            CachePadded::new(value)
        }
    }
}
