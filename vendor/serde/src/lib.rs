//! Minimal offline stub of the `serde` facade.
//!
//! The build environment for this repository has no network access and no
//! crates.io mirror, so the real `serde` cannot be fetched. Nothing in the
//! workspace actually serializes (there is no `serde_json` or other
//! format crate in the dependency graph); the `#[derive(Serialize,
//! Deserialize)]` attributes exist so downstream users of the real serde
//! can plug formats in. This stub keeps those derives compiling: it
//! provides the two marker traits and re-exports no-op derive macros.
//!
//! Swapping the real serde back in is a one-line change in the workspace
//! `Cargo.toml` once a registry is reachable.

/// Marker stand-in for `serde::Serialize`.
///
/// The stub derive does not implement this trait; it only keeps the
/// `#[derive(Serialize)]` attribute valid.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
