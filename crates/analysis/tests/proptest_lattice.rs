//! Property tests for the similarity lattice and the fixpoint.

use bw_analysis::{combine, combine_all, combine_optimistic, Category, ModuleAnalysis};
use proptest::prelude::*;

fn category() -> impl Strategy<Value = Category> {
    prop_oneof![
        Just(Category::Na),
        Just(Category::Shared),
        Just(Category::ThreadId),
        Just(Category::Partial),
        Just(Category::None),
    ]
}

/// Partial order of the similarity lattice (`Na` at bottom, `None` at top).
fn le(a: Category, b: Category) -> bool {
    use Category::*;
    a == b
        || a == Na
        || b == None
        || matches!((a, b), (Shared, ThreadId) | (Shared, Partial))
}

proptest! {
    /// Table II is the join of the similarity lattice for non-`Na`
    /// operands: the result is an upper bound of both inputs.
    #[test]
    fn combine_is_an_upper_bound(a in category(), b in category()) {
        prop_assume!(a != Category::Na && b != Category::Na);
        let c = combine(a, b);
        prop_assert!(le(a, c), "{a} not <= {c}");
        prop_assert!(le(b, c), "{b} not <= {c}");
    }

    /// Folding is order-insensitive once `Na` blocking is accounted for:
    /// any permutation of non-`Na` operands gives the same category.
    #[test]
    fn combine_all_is_permutation_invariant(
        mut cats in proptest::collection::vec(category(), 1..6),
    ) {
        cats.retain(|&c| c != Category::Na);
        prop_assume!(!cats.is_empty());
        let forward = combine_all(cats.iter().copied());
        cats.reverse();
        prop_assert_eq!(forward, combine_all(cats.iter().copied()));
    }

    /// The optimistic fold equals the strict fold when no `Na` is present.
    #[test]
    fn optimistic_equals_strict_without_na(
        cats in proptest::collection::vec(category(), 1..6),
    ) {
        prop_assume!(cats.iter().all(|&c| c != Category::Na));
        prop_assert_eq!(
            combine_all(cats.iter().copied()),
            combine_optimistic(cats.iter().copied())
        );
    }

    /// The whole-module fixpoint is idempotent: re-running the analysis on
    /// the same module gives identical branch categories, and terminates
    /// within the paper's "fewer than ten iterations" on generated
    /// single-loop programs.
    #[test]
    fn fixpoint_is_idempotent_and_fast(bound in 1u8..30, use_tid in any::<bool>()) {
        let guard = if use_tid { "threadid()" } else { "cfg" };
        let source = format!(
            r#"
            shared int cfg = 5;
            int data[64];
            @spmd func f() {{
                for (var i: int = 0; i < {bound}; i = i + 1) {{
                    if (i < {guard}) {{ output(i); }}
                    if (data[i % 64] > 0) {{ output(0 - i); }}
                }}
            }}
            "#,
        );
        let module = bw_ir::frontend::compile(&source).expect("compiles");
        let a = ModuleAnalysis::run(&module);
        let b = ModuleAnalysis::run(&module);
        let cats_a: Vec<_> = a.branches.iter().map(|br| br.category).collect();
        let cats_b: Vec<_> = b.branches.iter().map(|br| br.category).collect();
        prop_assert_eq!(cats_a, cats_b);
        prop_assert!(a.iterations < 10, "took {} iterations", a.iterations);
    }
}
