//! Property tests for the similarity lattice and the fixpoint, including
//! the packed-bitset representation the parallel analysis uses: every
//! lattice operation on [`PackedCategory`] must agree with the enum
//! reference implementation.

use bw_analysis::{combine, combine_all, combine_optimistic, Category, ModuleAnalysis, PackedCategory};
use proptest::prelude::*;

fn category() -> impl Strategy<Value = Category> {
    prop_oneof![
        Just(Category::Na),
        Just(Category::Shared),
        Just(Category::ThreadId),
        Just(Category::Partial),
        Just(Category::None),
    ]
}

/// Partial order of the similarity lattice (`Na` at bottom, `None` at top).
fn le(a: Category, b: Category) -> bool {
    use Category::*;
    a == b
        || a == Na
        || b == None
        || matches!((a, b), (Shared, ThreadId) | (Shared, Partial))
}

proptest! {
    /// Table II is the join of the similarity lattice for non-`Na`
    /// operands: the result is an upper bound of both inputs.
    #[test]
    fn combine_is_an_upper_bound(a in category(), b in category()) {
        prop_assume!(a != Category::Na && b != Category::Na);
        let c = combine(a, b);
        prop_assert!(le(a, c), "{a} not <= {c}");
        prop_assert!(le(b, c), "{b} not <= {c}");
    }

    /// Folding is order-insensitive once `Na` blocking is accounted for:
    /// any permutation of non-`Na` operands gives the same category.
    #[test]
    fn combine_all_is_permutation_invariant(
        mut cats in proptest::collection::vec(category(), 1..6),
    ) {
        cats.retain(|&c| c != Category::Na);
        prop_assume!(!cats.is_empty());
        let forward = combine_all(cats.iter().copied());
        cats.reverse();
        prop_assert_eq!(forward, combine_all(cats.iter().copied()));
    }

    /// The optimistic fold equals the strict fold when no `Na` is present.
    #[test]
    fn optimistic_equals_strict_without_na(
        cats in proptest::collection::vec(category(), 1..6),
    ) {
        prop_assume!(cats.iter().all(|&c| c != Category::Na));
        prop_assert_eq!(
            combine_all(cats.iter().copied()),
            combine_optimistic(cats.iter().copied())
        );
    }

    /// Packing round-trips: unpack(pack(c)) == c for every category.
    #[test]
    fn packed_round_trips(a in category()) {
        prop_assert_eq!(PackedCategory::pack(a).unpack(), a);
    }

    /// The packed combine agrees with the enum Table II combine, including
    /// the asymmetric `Na` cases.
    #[test]
    fn packed_combine_matches_enum(a in category(), b in category()) {
        let packed = PackedCategory::pack(a).combine(PackedCategory::pack(b));
        prop_assert_eq!(packed.unpack(), combine(a, b));
    }

    /// The packed combine is commutative away from `Na` (where the enum
    /// combine is deliberately asymmetric), so the parallel analysis may
    /// fold operands in any order.
    #[test]
    fn packed_combine_is_commutative_without_na(a in category(), b in category()) {
        prop_assume!(a != Category::Na && b != Category::Na);
        let ab = PackedCategory::pack(a).combine(PackedCategory::pack(b));
        let ba = PackedCategory::pack(b).combine(PackedCategory::pack(a));
        prop_assert_eq!(ab, ba);
    }

    /// Packed combine never loses ground: the result is an upper bound of
    /// both non-`Na` inputs in the lattice order (monotonicity of the
    /// per-value update under re-evaluation).
    #[test]
    fn packed_combine_is_an_upper_bound(a in category(), b in category()) {
        prop_assume!(a != Category::Na && b != Category::Na);
        let c = PackedCategory::pack(a).combine(PackedCategory::pack(b)).unpack();
        prop_assert!(le(a, c), "{} not <= {}", a, c);
        prop_assert!(le(b, c), "{} not <= {}", b, c);
    }

    /// The packed strict fold agrees with the enum strict fold on any
    /// operand list (including lists containing `Na`, which blocks both).
    #[test]
    fn packed_combine_all_matches_enum(
        cats in proptest::collection::vec(category(), 1..6),
    ) {
        let packed =
            PackedCategory::combine_all(cats.iter().map(|&c| PackedCategory::pack(c)));
        prop_assert_eq!(packed.unpack(), combine_all(cats.iter().copied()));
    }

    /// The packed optimistic fold agrees with the enum optimistic fold on
    /// any operand list (`Na` operands are skipped by both).
    #[test]
    fn packed_combine_optimistic_matches_enum(
        cats in proptest::collection::vec(category(), 0..6),
    ) {
        let packed =
            PackedCategory::combine_optimistic(cats.iter().map(|&c| PackedCategory::pack(c)));
        prop_assert_eq!(packed.unpack(), combine_optimistic(cats.iter().copied()));
    }

    /// The whole-module fixpoint is idempotent: re-running the analysis on
    /// the same module gives identical branch categories, and terminates
    /// within the paper's "fewer than ten iterations" on generated
    /// single-loop programs.
    #[test]
    fn fixpoint_is_idempotent_and_fast(bound in 1u8..30, use_tid in any::<bool>()) {
        let guard = if use_tid { "threadid()" } else { "cfg" };
        let source = format!(
            r#"
            shared int cfg = 5;
            int data[64];
            @spmd func f() {{
                for (var i: int = 0; i < {bound}; i = i + 1) {{
                    if (i < {guard}) {{ output(i); }}
                    if (data[i % 64] > 0) {{ output(0 - i); }}
                }}
            }}
            "#,
        );
        let module = bw_ir::frontend::compile(&source).expect("compiles");
        let a = ModuleAnalysis::run(&module);
        let b = ModuleAnalysis::run(&module);
        let cats_a: Vec<_> = a.branches.iter().map(|br| br.category).collect();
        let cats_b: Vec<_> = b.branches.iter().map(|br| br.category).collect();
        prop_assert_eq!(cats_a, cats_b);
        prop_assert!(a.iterations < 10, "took {} iterations", a.iterations);
    }
}
