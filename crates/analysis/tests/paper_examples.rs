//! Integration tests reproducing the paper's worked examples: the Figure 1
//! classification, the Figure 2 / Table III convergence trace, and the
//! instrumentation optimizations of Section III-A.

use bw_analysis::{AnalysisConfig, Category, CheckKind, CheckPlan, ModuleAnalysis, SkipReason, TidCheck};
use bw_ir::frontend::compile;
use bw_ir::Module;

fn analyze(src: &str) -> (Module, ModuleAnalysis) {
    let module = compile(src).expect("compile");
    let analysis = ModuleAnalysis::run(&module);
    (module, analysis)
}

/// The full Figure 1 program: four branches, four categories.
fn figure1_src() -> &'static str {
    r#"
    module figure1;
    tid_counter int id = 0;
    shared int im = 16;
    int gp[64];
    mutex l;
    @init func main() {
        for (var i: int = 0; i < 64; i = i + 1) { gp[i] = rand(32); }
    }
    @spmd func slave() {
        lock(l);
        var procid: int = fetch_add(id, 1);
        unlock(l);
        // Branch 1: threadID
        if (procid == 0) { output(procid); }
        var private: int = 0;
        // Branch 2: shared
        for (var i: int = 0; i <= im - 1; i = i + 1) {
            // Branch 3: none
            if (gp[procid] > im - 1) {
                private = 1;
            } else {
                private = 0 - 1;
            }
            // Branch 4: partial
            if (private > 0) { output(private); }
        }
    }
    "#
}

#[test]
fn figure1_branch_categories() {
    let (module, analysis) = analyze(figure1_src());
    let slave = module.func_by_name("slave").unwrap();
    let cats: Vec<Category> = analysis
        .branches
        .iter()
        .filter(|b| b.func == slave)
        .map(|b| b.category)
        .collect();
    // Branch order in the lowered IR: threadID if, loop header (shared),
    // none if, partial if.
    assert_eq!(
        cats,
        vec![Category::ThreadId, Category::Shared, Category::None, Category::Partial],
    );
}

#[test]
fn figure1_parallel_section_excludes_init() {
    let (module, analysis) = analyze(figure1_src());
    let main = module.func_by_name("main").unwrap();
    assert!(analysis.branches.iter().filter(|b| b.func == main).all(|b| !b.in_parallel_section));
    assert!(!analysis.parallel_funcs[main.index()]);
}

/// Figure 2: `foo` is called from two call sites with different (but both
/// shared) arguments; both branches inside `foo` must still be `shared`
/// (the paper tracks instances per call site rather than merging to
/// `partial`).
fn figure2_src() -> &'static str {
    r#"
    module figure2;
    shared bool test = true;
    func foo(arg: int) {
        // Branch 2 (loop) and Branch 1 (if) of the paper's Figure 2.
        for (var i: int = 0; i < 5; i = i + 1) {
            if (i < arg) { output(i); }
        }
    }
    @spmd func slave() {
        foo(1);
        if (test) {
            foo(2);
        }
    }
    "#
}

#[test]
fn figure2_branches_are_shared_across_call_sites() {
    let (module, analysis) = analyze(figure2_src());
    let foo = module.func_by_name("foo").unwrap();
    let cats: Vec<Category> =
        analysis.branches.iter().filter(|b| b.func == foo).map(|b| b.category).collect();
    assert_eq!(cats, vec![Category::Shared, Category::Shared]);
}

/// Table III: the branches of Figure 2 start the first iteration at `NA`
/// (the induction variable's phi has not resolved yet) and become `shared`
/// from the second iteration on; the fixpoint converges in a handful of
/// iterations (the paper reports three for this example, fewer than ten in
/// general).
#[test]
fn table3_convergence_trace() {
    let (module, analysis) = analyze(figure2_src());
    let foo = module.func_by_name("foo").unwrap();
    let foo_branches: Vec<usize> = analysis
        .branches
        .iter()
        .enumerate()
        .filter(|(_, b)| b.func == foo)
        .map(|(i, _)| i)
        .collect();

    assert!(analysis.iterations <= 10, "paper: fewer than ten iterations");
    assert!(analysis.trace.len() >= 2);

    // Branch order inside foo: the loop-header branch (i < 5), then the
    // call-site-dependent branch (i < arg).
    let (loop_branch, arg_branch) = (foo_branches[0], foo_branches[1]);

    // The loop branch resolves in the first pass (our RPO visit order sees
    // `i = phi(0, i+1)` after the constant 0; the paper's arbitrary order
    // needed a second pass — same fixpoint, different schedule).
    assert_eq!(analysis.trace[0][loop_branch], Category::Shared);

    // The `i < arg` branch stays NA after the first pass — `arg` depends on
    // the call sites in slave(), which have not produced categories yet —
    // and becomes shared in the second, exactly as in Table III.
    assert_eq!(analysis.trace[0][arg_branch], Category::Na);
    assert_eq!(analysis.trace[1][arg_branch], Category::Shared);

    // Final: both stable at shared.
    for &bi in &foo_branches {
        assert_eq!(analysis.trace.last().unwrap()[bi], Category::Shared);
    }
}

#[test]
fn loop_induction_variable_is_shared_not_partial() {
    // The loop phi merges 0 and i+1 — plain Table II combine (shared), not
    // the if-else partial downgrade.
    let (_m, analysis) = analyze(
        r#"
        shared int n = 10;
        @spmd func f() {
            for (var i: int = 0; i < n; i = i + 1) { output(i); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::Shared);
}

#[test]
fn if_else_merge_of_distinct_shared_values_is_partial() {
    let (_m, analysis) = analyze(
        r#"
        int gp[8];
        shared int lim = 4;
        @spmd func f() {
            var private: int = 0;
            if (gp[threadid()] > lim) { private = 1; } else { private = 0 - 1; }
            if (private > 0) { output(private); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::None);
    assert_eq!(analysis.branches[1].category, Category::Partial);
}

#[test]
fn unmodified_variable_through_branch_stays_shared() {
    // x is shared and not written in either arm; the (trivial) merge phi
    // must not downgrade it to partial.
    let (_m, analysis) = analyze(
        r#"
        shared int n = 3;
        int noise[8];
        @spmd func f() {
            var x: int = n * 2;
            if (noise[threadid()] > 0) { output(1); }
            if (x > 4) { output(x); }
        }
        "#,
    );
    assert_eq!(analysis.branches[1].category, Category::Shared);
}

#[test]
fn threadid_through_arithmetic_stays_threadid() {
    let (_m, analysis) = analyze(
        r#"
        shared int n = 8;
        @spmd func f() {
            var chunk: int = threadid() * n + 1;
            if (chunk < n * 4) { output(chunk); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::ThreadId);
}

#[test]
fn threadid_combined_with_partial_is_none() {
    // Table II: partial ⊔ threadID = none.
    let (_m, analysis) = analyze(
        r#"
        int gp[8];
        shared int lim = 4;
        @spmd func f() {
            var p: int = 0;
            if (gp[threadid()] > lim) { p = 1; } else { p = 2; }
            if (p + threadid() > 3) { output(p); }
        }
        "#,
    );
    assert_eq!(analysis.branches[1].category, Category::None);
}

#[test]
fn rand_is_none() {
    let (_m, analysis) = analyze(
        r#"
        @spmd func f() {
            if (rand(10) > 5) { output(1); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::None);
}

#[test]
fn non_shared_global_load_is_none() {
    let (_m, analysis) = analyze(
        r#"
        int counter = 0;
        @spmd func f() {
            if (counter > 0) { output(1); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::None);
}

#[test]
fn shared_array_indexed_by_tid_is_partial() {
    // The loaded value is one of the elements of a shared (read-only)
    // array: groupable by value.
    let (_m, analysis) = analyze(
        r#"
        shared int bounds[8];
        @spmd func f() {
            if (bounds[threadid()] > 0) { output(1); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::Partial);
}

#[test]
fn numthreads_is_shared() {
    let (_m, analysis) = analyze(
        r#"
        @spmd func f() {
            if (numthreads() > 4) { output(1); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::Shared);
}

#[test]
fn mixed_call_sites_degrade_to_partial() {
    let (module, analysis) = analyze(
        r#"
        shared int n = 4;
        func leaf(x: int) {
            if (x > 2) { output(x); }
        }
        @spmd func f() {
            leaf(n);          // shared arg
            leaf(threadid()); // threadID arg
        }
        "#,
    );
    let leaf = module.func_by_name("leaf").unwrap();
    let cat = analysis.branches.iter().find(|b| b.func == leaf).unwrap().category;
    assert_eq!(cat, Category::Partial);
}

#[test]
fn indirect_callee_params_merge_over_table() {
    let (module, analysis) = analyze(
        r#"
        shared int n = 4;
        table fs = { a, b };
        func a(x: int) { if (x > 1) { output(x); } }
        func b(x: int) { if (x > 2) { output(x); } }
        @spmd func f() {
            fs[threadid() - threadid() / 2 * 2](n);
        }
        "#,
    );
    for name in ["a", "b"] {
        let fid = module.func_by_name(name).unwrap();
        let cat = analysis.branches.iter().find(|b| b.func == fid).unwrap().category;
        assert_eq!(cat, Category::Shared, "{name}");
    }
}

// ---- instrumentation plan ----

#[test]
fn critical_section_branches_are_skipped() {
    let (module, analysis) = analyze(
        r#"
        mutex m;
        shared int n = 4;
        @spmd func f() {
            lock(m);
            if (n > 2) { output(1); }   // inside critical section
            unlock(m);
            if (n > 3) { output(2); }   // outside
        }
        "#,
    );
    assert_eq!(analysis.branches[0].min_locks_held, 1);
    assert_eq!(analysis.branches[1].min_locks_held, 0);

    let plan = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    assert!(matches!(plan.decisions[0], Err(SkipReason::CriticalSection)));
    assert!(plan.decisions[1].is_ok());

    let no_opt =
        CheckPlan::build(&module, &analysis, AnalysisConfig { critical_section_opt: false, ..AnalysisConfig::default() });
    assert!(no_opt.decisions[0].is_ok());
}

#[test]
fn critical_section_propagates_through_calls() {
    let (module, analysis) = analyze(
        r#"
        mutex m;
        shared int n = 4;
        func helper() {
            if (n > 2) { output(1); }
        }
        @spmd func f() {
            lock(m);
            helper();
            unlock(m);
        }
        "#,
    );
    let helper = module.func_by_name("helper").unwrap();
    let b = analysis.branches.iter().find(|b| b.func == helper).unwrap();
    assert_eq!(b.min_locks_held, 1);
}

#[test]
fn deep_loops_hit_the_nesting_cutoff() {
    let (module, analysis) = analyze(
        r#"
        shared int n = 2;
        @spmd func f() {
            for (var a: int = 0; a < n; a = a + 1) {
             for (var b: int = 0; b < n; b = b + 1) {
              for (var c: int = 0; c < n; c = c + 1) {
               for (var d: int = 0; d < n; d = d + 1) {
                for (var e: int = 0; e < n; e = e + 1) {
                 for (var g: int = 0; g < n; g = g + 1) {
                  for (var h: int = 0; h < n; h = h + 1) {
                    output(h);
                  }
                 }
                }
               }
              }
             }
            }
        }
        "#,
    );
    let plan = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    // Seven nested loops: headers sit at depths 1..=7. Depths >= 6 are cut
    // off, so the two innermost loop branches are skipped.
    let deepest = analysis.branches.iter().map(|b| b.loop_depth).max().unwrap();
    assert_eq!(deepest, 7);
    let skipped: Vec<u32> = plan
        .decisions
        .iter()
        .enumerate()
        .filter(|(_, d)| matches!(d, Err(SkipReason::TooDeep)))
        .map(|(i, _)| analysis.branches[i].loop_depth)
        .collect();
    assert_eq!(skipped, vec![6, 7]);
}

#[test]
fn promotion_turns_none_into_group_by_witness() {
    let (module, analysis) = analyze(
        r#"
        int gp[8];
        @spmd func f() {
            if (gp[threadid()] > 0) { output(1); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::None);

    let plan = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    let check = plan.check(bw_ir::BranchId(0)).expect("promoted");
    assert_eq!(check.effective_category, Category::Partial);
    assert_eq!(check.kind, CheckKind::GroupByWitness);

    let strict = CheckPlan::build(
        &module,
        &analysis,
        AnalysisConfig { promote_none: false, ..AnalysisConfig::default() },
    );
    assert!(matches!(strict.decisions[0], Err(SkipReason::NotSimilar)));
}

#[test]
fn tid_predicates_cover_all_comparison_shapes() {
    let (module, analysis) = analyze(
        r#"
        shared int half = 4;
        @spmd func f() {
            var t: int = threadid();
            if (t == 0) { output(1); }
            if (t != 0) { output(2); }
            if (t < half) { output(3); }
            if (t >= half) { output(4); }
            if (half > t) { output(5); }   // swapped operands → prefix
        }
        "#,
    );
    let plan = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    let kinds: Vec<CheckKind> = (0..5)
        .map(|i| plan.check(bw_ir::BranchId(i)).unwrap().kind)
        .collect();
    assert_eq!(
        kinds,
        vec![
            CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken),
            CheckKind::ThreadIdPredicate(TidCheck::AtMostOneNotTaken),
            CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix),
            CheckKind::ThreadIdPredicate(TidCheck::TakenIsSuffix),
            CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix),
        ]
    );
    let _ = module;
}

#[test]
fn shared_branch_witnesses_exclude_constants() {
    let (module, analysis) = analyze(
        r#"
        shared int n = 4;
        @spmd func f() {
            if (n > 2) { output(1); }
        }
        "#,
    );
    let plan = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    let check = plan.check(bw_ir::BranchId(0)).unwrap();
    assert_eq!(check.kind, CheckKind::SharedUniform);
    // Only the load of `n` is a witness; the constant 2 is not.
    assert_eq!(check.witnesses.len(), 1);
}

#[test]
fn derived_tid_without_direct_cmp_falls_back_to_grouping() {
    let (module, analysis) = analyze(
        r#"
        shared int n = 8;
        @spmd func f() {
            var start: int = threadid() * n;
            if (start < n * 4) { output(start); }
        }
        "#,
    );
    assert_eq!(analysis.branches[0].category, Category::ThreadId);
    let plan = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    assert_eq!(plan.check(bw_ir::BranchId(0)).unwrap().kind, CheckKind::GroupByWitness);
}

#[test]
fn fixpoint_converges_quickly_on_all_examples() {
    for src in [figure1_src(), figure2_src()] {
        let (_m, analysis) = analyze(src);
        assert!(analysis.iterations < 10, "took {} iterations", analysis.iterations);
    }
}

#[test]
fn dedup_checks_keeps_one_branch_per_condition_set() {
    // Two branches on the same shared variable: §VI says checking one is
    // enough for data faults.
    let (module, analysis) = analyze(
        r#"
        shared int n = 4;
        @spmd func f() {
            if (n > 2) { output(1); }
            if (n > 3) { output(2); }
            if (threadid() == 0) { output(3); }
        }
        "#,
    );
    let base = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    assert_eq!(base.num_instrumented(), 3);

    let dedup = CheckPlan::build(
        &module,
        &analysis,
        AnalysisConfig { dedup_checks: true, ..AnalysisConfig::default() },
    );
    // The two `n` branches share their condition-data set; the threadID
    // branch has a different (empty, constant-only → cond) witness set.
    assert_eq!(dedup.num_instrumented(), 2);
    assert!(dedup.decisions[0].is_ok());
    assert!(matches!(dedup.decisions[1], Err(SkipReason::DuplicateWitness)));
    assert!(dedup.decisions[2].is_ok());
}
