//! Regression test: analysis results must not depend on module layout.
//!
//! Pointer-typed parameters are seeded `Unknown` provenance *before* the
//! interprocedural provenance fixpoint. An earlier version seeded them
//! after the loop, so a callee declared before its caller could reach the
//! fixpoint with a different (more precise, layout-dependent) provenance
//! than the same callee declared after it. This builds the same logical
//! program in both declaration orders and requires identical results.

use bw_analysis::{Category, ModuleAnalysis};
use bw_ir::{FuncId, FunctionBuilder, Module, Op, Type, Val, ValueId};

/// Builds `helper(p: ptr) { v = *p; if (v < lim) output(v); }` —
/// its branch depends on the provenance seeded for the pointer param.
fn build_helper(module: &mut Module, lim: bw_ir::GlobalId) -> bw_ir::Function {
    let mut b = FunctionBuilder::new("helper", vec![Type::Ptr], None);
    let p = ValueId::from_index(0);
    let v = b.load(p, Type::I64);
    let bound = b.load_global(module, lim);
    let c = b.cmp(bw_ir::CmpOp::Lt, v, bound);
    let then_bb = b.add_block("then");
    let exit_bb = b.add_block("exit");
    b.br(c, then_bb, exit_bb);
    b.switch_to(then_bb);
    b.output(v);
    b.jump(exit_bb);
    b.switch_to(exit_bb);
    b.ret(None);
    b.finish()
}

/// Builds `slave() { helper(&buf[tid]); helper(&buf[0]); }`, calling a
/// helper that will live at `helper_id` (possibly not yet declared — the
/// call op is emitted directly to allow a forward reference).
fn build_slave(
    module: &mut Module,
    buf: bw_ir::GlobalId,
    helper_id: FuncId,
) -> bw_ir::Function {
    let mut b = FunctionBuilder::new("slave", vec![], None);
    let base = b.global_addr(buf);
    let tid = b.thread_id();
    let p1 = b.gep(base, tid);
    let site = module.new_call_site();
    b.emit(Op::Call { func: helper_id, args: vec![p1], site }, None);
    let zero = b.const_i64(0);
    let p2 = b.gep(base, zero);
    let site = module.new_call_site();
    b.emit(Op::Call { func: helper_id, args: vec![p2], site }, None);
    b.ret(None);
    b.finish()
}

/// The same program with the two possible function declaration orders.
fn build(helper_first: bool) -> Module {
    let mut module = Module::new("layout");
    let lim = module.add_global("lim", Type::I64, Val::I64(8), true);
    let buf = module.add_array("buf", Type::I64, 16, Val::I64(0), true);
    let (helper_id, slave_id) = if helper_first {
        (FuncId::from_index(0), FuncId::from_index(1))
    } else {
        (FuncId::from_index(1), FuncId::from_index(0))
    };
    let helper = build_helper(&mut module, lim);
    let slave = build_slave(&mut module, buf, helper_id);
    if helper_first {
        module.add_func(helper);
        module.add_func(slave);
    } else {
        module.add_func(slave);
        module.add_func(helper);
    }
    module.spmd_entry = Some(slave_id);
    bw_ir::verify_module(&module).expect("layout test module must verify");
    module
}

/// Per-value categories of the named function, position-aligned (the
/// function body is identical in both layouts, so ValueIds line up).
fn cats_of(module: &Module, analysis: &ModuleAnalysis, name: &str) -> Vec<Category> {
    let f = module.func_by_name(name).unwrap();
    (0..module.func(f).num_values())
        .map(|i| analysis.value_category(f, ValueId::from_index(i)))
        .collect()
}

#[test]
fn analysis_is_function_order_invariant() {
    let m_a = build(true);
    let m_b = build(false);
    let a = ModuleAnalysis::run(&m_a);
    let b = ModuleAnalysis::run(&m_b);

    for name in ["helper", "slave"] {
        assert_eq!(
            cats_of(&m_a, &a, name),
            cats_of(&m_b, &b, name),
            "per-value categories of `{name}` depend on declaration order"
        );
    }

    // Branch categories, keyed by owning function name so the comparison
    // survives the FuncId renumbering.
    let branch_cats = |m: &Module, an: &ModuleAnalysis| {
        let mut v: Vec<(String, Category)> = an
            .branches
            .iter()
            .map(|br| (m.func(br.func).name.clone(), br.category))
            .collect();
        v.sort();
        v
    };
    assert_eq!(branch_cats(&m_a, &a), branch_cats(&m_b, &b));
}

#[test]
fn parallel_analysis_is_function_order_invariant() {
    for helper_first in [true, false] {
        let m = build(helper_first);
        let oracle = ModuleAnalysis::run(&m);
        for workers in [1, 4] {
            let par = ModuleAnalysis::run_parallel(&m, workers);
            assert_eq!(
                oracle.divergence(&par),
                None,
                "helper_first={helper_first} workers={workers}"
            );
        }
    }
}
