//! Similarity categories (Table I) and the propagation lattice (Table II).
//!
//! A category describes how a value (and ultimately a branch condition)
//! relates across the threads of an SPMD program:
//!
//! * [`Category::Shared`] — derived only from constants and shared globals;
//!   identical in every thread.
//! * [`Category::ThreadId`] — derived from the thread ID plus shared values;
//!   a known function of the thread ID.
//! * [`Category::Partial`] — takes one of a small set of shared values;
//!   threads holding the same value agree.
//! * [`Category::None`] — thread-private; no statically known similarity.
//! * [`Category::Na`] — not yet assigned (the fixpoint's bottom element).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The similarity category of a value or branch (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Not assigned yet (fixpoint bottom).
    Na,
    /// Same value in all threads.
    Shared,
    /// A function of the thread ID (thread ID combined with shared values).
    ThreadId,
    /// One of a small set of shared values; equal-valued threads agree.
    Partial,
    /// No statically inferable similarity.
    None,
}

impl Category {
    /// All categories, in lattice-friendly order.
    pub const ALL: [Category; 5] =
        [Category::Na, Category::Shared, Category::ThreadId, Category::Partial, Category::None];

    /// Whether this category makes a branch eligible for checking
    /// (everything but `None` and `Na`).
    pub fn is_checkable(self) -> bool {
        matches!(self, Category::Shared | Category::ThreadId | Category::Partial)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Na => "NA",
            Category::Shared => "shared",
            Category::ThreadId => "threadID",
            Category::Partial => "partial",
            Category::None => "none",
        };
        f.write_str(s)
    }
}

/// The propagation rule of Table II: given the instruction's current
/// category (accumulated over the operands processed so far) and the next
/// operand's category, returns the updated instruction category.
///
/// The table is reproduced verbatim from the paper:
///
/// | curr \ op | NA | shared   | threadID | partial | none |
/// |-----------|----|----------|----------|---------|------|
/// | NA        | NA | shared   | threadID | partial | none |
/// | shared    | NA | shared   | threadID | partial | none |
/// | threadID  | NA | threadID | threadID | none    | none |
/// | partial   | NA | partial  | none     | partial | none |
/// | none      | NA | none     | none     | none    | none |
pub fn combine(curr: Category, operand: Category) -> Category {
    use Category::*;
    match (curr, operand) {
        (_, Na) => Na,
        (Na, op) => op,
        (Shared, op) => op,
        (ThreadId, Shared) | (ThreadId, ThreadId) => ThreadId,
        (ThreadId, Partial) | (ThreadId, None) => None,
        (Partial, Shared) | (Partial, Partial) => Partial,
        (Partial, ThreadId) | (Partial, None) => None,
        (None, _) => None,
    }
}

/// Folds [`combine`] over an operand list, starting from `Na` (the paper's
/// `visitInst`). Returns `Na` as soon as any operand is `Na`.
pub fn combine_all(operands: impl IntoIterator<Item = Category>) -> Category {
    let mut curr = Category::Na;
    let mut first = true;
    for op in operands {
        if op == Category::Na {
            return Category::Na;
        }
        curr = if first { op } else { combine(curr, op) };
        first = false;
    }
    curr
}

/// Optimistic fold used for phi nodes and call-site merges: `Na` operands
/// are skipped instead of forcing the result to `Na`, so loop-carried
/// values resolve from their initial value (the behaviour Table III of the
/// paper requires: the induction variable `i = phi(0, i+1)` becomes `shared`
/// in the first iteration even though `i+1` is still `NA`).
pub fn combine_optimistic(operands: impl IntoIterator<Item = Category>) -> Category {
    let mut curr = Category::Na;
    for op in operands {
        if op == Category::Na {
            continue;
        }
        curr = if curr == Category::Na { op } else { combine(curr, op) };
    }
    curr
}

/// A [`Category`] packed into a one-byte bitset, the state representation
/// of the parallel analysis.
///
/// Each non-`Na` category is one bit; `Na` is the empty set. The Table II
/// rule then becomes a union followed by a normalization: `none` poisons,
/// `threadID` and `partial` together collapse to `none` (their runtime
/// values disagree across threads in ways neither grouping covers), and
/// otherwise the highest present bit wins. One byte per value lets the
/// parallel fixpoint keep the whole module's state in a dense `AtomicU8`
/// table instead of per-function `HashMap`s.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PackedCategory(u8);

impl PackedCategory {
    /// Fixpoint bottom (the empty set).
    pub const NA: PackedCategory = PackedCategory(0);
    /// Same value in all threads.
    pub const SHARED: PackedCategory = PackedCategory(1 << 0);
    /// A function of the thread ID.
    pub const THREAD_ID: PackedCategory = PackedCategory(1 << 1);
    /// One of a small set of shared values.
    pub const PARTIAL: PackedCategory = PackedCategory(1 << 2);
    /// No statically inferable similarity.
    pub const NONE: PackedCategory = PackedCategory(1 << 3);

    /// The raw bits (always one of the five constants).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds from raw bits previously obtained via [`Self::bits`].
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `bits` is not one of the five encodings.
    pub fn from_bits(bits: u8) -> PackedCategory {
        debug_assert!(
            matches!(bits, 0 | 1 | 2 | 4 | 8),
            "invalid packed category bits: {bits:#x}"
        );
        PackedCategory(bits)
    }

    /// Packs an enum [`Category`].
    pub fn pack(cat: Category) -> PackedCategory {
        match cat {
            Category::Na => Self::NA,
            Category::Shared => Self::SHARED,
            Category::ThreadId => Self::THREAD_ID,
            Category::Partial => Self::PARTIAL,
            Category::None => Self::NONE,
        }
    }

    /// Unpacks back to the enum [`Category`].
    pub fn unpack(self) -> Category {
        match self {
            Self::NA => Category::Na,
            Self::SHARED => Category::Shared,
            Self::THREAD_ID => Category::ThreadId,
            Self::PARTIAL => Category::Partial,
            Self::NONE => Category::None,
            _ => unreachable!("invalid packed category bits: {:#x}", self.0),
        }
    }

    /// Whether this category makes a branch eligible for checking.
    pub fn is_checkable(self) -> bool {
        matches!(self, Self::SHARED | Self::THREAD_ID | Self::PARTIAL)
    }

    /// Bitset form of [`combine`] — identical to Table II cell for cell.
    ///
    /// `Na` keeps the table's asymmetry: any `Na` operand forces `Na`, while
    /// an `Na` accumulator just adopts the operand. Past that, the rule is
    /// union-then-normalize on the bitset.
    pub fn combine(self, operand: PackedCategory) -> PackedCategory {
        if operand == Self::NA {
            return Self::NA;
        }
        if self == Self::NA {
            return operand;
        }
        Self::normalize(self.0 | operand.0)
    }

    /// Projects an arbitrary union of category bits back onto the five
    /// canonical points: `none` poisons, `threadID ∪ partial` collapses to
    /// `none`, otherwise the strongest present bit wins.
    fn normalize(union: u8) -> PackedCategory {
        if union & Self::NONE.0 != 0 {
            return Self::NONE;
        }
        if union & Self::THREAD_ID.0 != 0 && union & Self::PARTIAL.0 != 0 {
            return Self::NONE;
        }
        if union & Self::THREAD_ID.0 != 0 {
            return Self::THREAD_ID;
        }
        if union & Self::PARTIAL.0 != 0 {
            return Self::PARTIAL;
        }
        Self::SHARED
    }

    /// Bitset form of [`combine_all`]: strict fold, `Na` blocks.
    pub fn combine_all(operands: impl IntoIterator<Item = PackedCategory>) -> PackedCategory {
        let mut union = 0u8;
        let mut any = false;
        for op in operands {
            if op == Self::NA {
                return Self::NA;
            }
            union |= op.0;
            any = true;
        }
        if !any {
            return Self::NA;
        }
        Self::normalize(union)
    }

    /// Bitset form of [`combine_optimistic`]: `Na` operands are skipped.
    pub fn combine_optimistic(
        operands: impl IntoIterator<Item = PackedCategory>,
    ) -> PackedCategory {
        let mut union = 0u8;
        for op in operands {
            union |= op.0;
        }
        if union == 0 {
            return Self::NA;
        }
        Self::normalize(union)
    }
}

impl From<Category> for PackedCategory {
    fn from(cat: Category) -> Self {
        PackedCategory::pack(cat)
    }
}

impl From<PackedCategory> for Category {
    fn from(packed: PackedCategory) -> Self {
        packed.unpack()
    }
}

impl fmt::Display for PackedCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.unpack().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Category::*;

    /// Every cell of Table II, row by row.
    #[test]
    fn table2_exhaustive() {
        let expected: [[Category; 5]; 5] = [
            // operand:  NA, shared,   threadID, partial, none
            /* NA       */ [Na, Shared, ThreadId, Partial, None],
            /* shared   */ [Na, Shared, ThreadId, Partial, None],
            /* threadID */ [Na, ThreadId, ThreadId, None, None],
            /* partial  */ [Na, Partial, None, Partial, None],
            /* none     */ [Na, None, None, None, None],
        ];
        for (i, curr) in ALL_ROWS.iter().enumerate() {
            for (j, op) in ALL_ROWS.iter().enumerate() {
                assert_eq!(
                    combine(*curr, *op),
                    expected[i][j],
                    "combine({curr}, {op})"
                );
            }
        }
    }

    const ALL_ROWS: [Category; 5] = [Na, Shared, ThreadId, Partial, None];

    #[test]
    fn combine_is_monotone_in_operand_growth() {
        // If the operand category grows (in the similarity lattice order
        // Shared ≤ {ThreadId, Partial} ≤ None), the result never shrinks.
        fn le(a: Category, b: Category) -> bool {
            a == b
                || matches!(
                    (a, b),
                    (Shared, ThreadId)
                        | (Shared, Partial)
                        | (Shared, None)
                        | (ThreadId, None)
                        | (Partial, None)
                )
        }
        for curr in [Shared, ThreadId, Partial, None] {
            for a in [Shared, ThreadId, Partial, None] {
                for b in [Shared, ThreadId, Partial, None] {
                    if le(a, b) {
                        assert!(
                            le(combine(curr, a), combine(curr, b)),
                            "monotonicity violated: combine({curr},{a}) vs combine({curr},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn combine_all_blocks_on_na() {
        assert_eq!(combine_all([Shared, Na, Shared]), Na);
        assert_eq!(combine_all([Shared, ThreadId]), ThreadId);
        assert_eq!(combine_all([]), Na);
    }

    #[test]
    fn combine_optimistic_skips_na() {
        assert_eq!(combine_optimistic([Shared, Na]), Shared);
        assert_eq!(combine_optimistic([Na, Na]), Na);
        assert_eq!(combine_optimistic([Na, ThreadId, Shared]), ThreadId);
    }

    #[test]
    fn paper_examples() {
        // Branch 1: procid == 0 → threadID ⊔ shared = threadID
        assert_eq!(combine_all([ThreadId, Shared]), ThreadId);
        // Branch 2: i <= im-1 with i, im shared → shared
        assert_eq!(combine_all([Shared, Shared]), Shared);
        // Branch 3: gp[procid].num > im-1 → none ⊔ shared = none
        assert_eq!(combine_all([None, Shared]), None);
        // Branch 4: private > 0 with private partial → partial
        assert_eq!(combine_all([Partial, Shared]), Partial);
    }

    #[test]
    fn checkability() {
        assert!(Shared.is_checkable());
        assert!(ThreadId.is_checkable());
        assert!(Partial.is_checkable());
        assert!(!None.is_checkable());
        assert!(!Na.is_checkable());
    }

    /// The packed bitset lattice agrees with the enum on every Table II
    /// cell and round-trips every category.
    #[test]
    fn packed_matches_enum_exhaustively() {
        for a in Category::ALL {
            assert_eq!(PackedCategory::pack(a).unpack(), a);
            assert_eq!(
                PackedCategory::from_bits(PackedCategory::pack(a).bits()),
                PackedCategory::pack(a)
            );
            for b in Category::ALL {
                assert_eq!(
                    PackedCategory::pack(a).combine(PackedCategory::pack(b)).unpack(),
                    combine(a, b),
                    "packed combine({a}, {b})"
                );
            }
        }
    }

    #[test]
    fn display_matches_paper_terms() {
        assert_eq!(Shared.to_string(), "shared");
        assert_eq!(ThreadId.to_string(), "threadID");
        assert_eq!(Partial.to_string(), "partial");
        assert_eq!(None.to_string(), "none");
    }
}
