//! Similarity categories (Table I) and the propagation lattice (Table II).
//!
//! A category describes how a value (and ultimately a branch condition)
//! relates across the threads of an SPMD program:
//!
//! * [`Category::Shared`] — derived only from constants and shared globals;
//!   identical in every thread.
//! * [`Category::ThreadId`] — derived from the thread ID plus shared values;
//!   a known function of the thread ID.
//! * [`Category::Partial`] — takes one of a small set of shared values;
//!   threads holding the same value agree.
//! * [`Category::None`] — thread-private; no statically known similarity.
//! * [`Category::Na`] — not yet assigned (the fixpoint's bottom element).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The similarity category of a value or branch (paper Table I).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Category {
    /// Not assigned yet (fixpoint bottom).
    Na,
    /// Same value in all threads.
    Shared,
    /// A function of the thread ID (thread ID combined with shared values).
    ThreadId,
    /// One of a small set of shared values; equal-valued threads agree.
    Partial,
    /// No statically inferable similarity.
    None,
}

impl Category {
    /// All categories, in lattice-friendly order.
    pub const ALL: [Category; 5] =
        [Category::Na, Category::Shared, Category::ThreadId, Category::Partial, Category::None];

    /// Whether this category makes a branch eligible for checking
    /// (everything but `None` and `Na`).
    pub fn is_checkable(self) -> bool {
        matches!(self, Category::Shared | Category::ThreadId | Category::Partial)
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Category::Na => "NA",
            Category::Shared => "shared",
            Category::ThreadId => "threadID",
            Category::Partial => "partial",
            Category::None => "none",
        };
        f.write_str(s)
    }
}

/// The propagation rule of Table II: given the instruction's current
/// category (accumulated over the operands processed so far) and the next
/// operand's category, returns the updated instruction category.
///
/// The table is reproduced verbatim from the paper:
///
/// | curr \ op | NA | shared   | threadID | partial | none |
/// |-----------|----|----------|----------|---------|------|
/// | NA        | NA | shared   | threadID | partial | none |
/// | shared    | NA | shared   | threadID | partial | none |
/// | threadID  | NA | threadID | threadID | none    | none |
/// | partial   | NA | partial  | none     | partial | none |
/// | none      | NA | none     | none     | none    | none |
pub fn combine(curr: Category, operand: Category) -> Category {
    use Category::*;
    match (curr, operand) {
        (_, Na) => Na,
        (Na, op) => op,
        (Shared, op) => op,
        (ThreadId, Shared) | (ThreadId, ThreadId) => ThreadId,
        (ThreadId, Partial) | (ThreadId, None) => None,
        (Partial, Shared) | (Partial, Partial) => Partial,
        (Partial, ThreadId) | (Partial, None) => None,
        (None, _) => None,
    }
}

/// Folds [`combine`] over an operand list, starting from `Na` (the paper's
/// `visitInst`). Returns `Na` as soon as any operand is `Na`.
pub fn combine_all(operands: impl IntoIterator<Item = Category>) -> Category {
    let mut curr = Category::Na;
    let mut first = true;
    for op in operands {
        if op == Category::Na {
            return Category::Na;
        }
        curr = if first { op } else { combine(curr, op) };
        first = false;
    }
    curr
}

/// Optimistic fold used for phi nodes and call-site merges: `Na` operands
/// are skipped instead of forcing the result to `Na`, so loop-carried
/// values resolve from their initial value (the behaviour Table III of the
/// paper requires: the induction variable `i = phi(0, i+1)` becomes `shared`
/// in the first iteration even though `i+1` is still `NA`).
pub fn combine_optimistic(operands: impl IntoIterator<Item = Category>) -> Category {
    let mut curr = Category::Na;
    for op in operands {
        if op == Category::Na {
            continue;
        }
        curr = if curr == Category::Na { op } else { combine(curr, op) };
    }
    curr
}

#[cfg(test)]
mod tests {
    use super::*;
    use Category::*;

    /// Every cell of Table II, row by row.
    #[test]
    fn table2_exhaustive() {
        let expected: [[Category; 5]; 5] = [
            // operand:  NA, shared,   threadID, partial, none
            /* NA       */ [Na, Shared, ThreadId, Partial, None],
            /* shared   */ [Na, Shared, ThreadId, Partial, None],
            /* threadID */ [Na, ThreadId, ThreadId, None, None],
            /* partial  */ [Na, Partial, None, Partial, None],
            /* none     */ [Na, None, None, None, None],
        ];
        for (i, curr) in ALL_ROWS.iter().enumerate() {
            for (j, op) in ALL_ROWS.iter().enumerate() {
                assert_eq!(
                    combine(*curr, *op),
                    expected[i][j],
                    "combine({curr}, {op})"
                );
            }
        }
    }

    const ALL_ROWS: [Category; 5] = [Na, Shared, ThreadId, Partial, None];

    #[test]
    fn combine_is_monotone_in_operand_growth() {
        // If the operand category grows (in the similarity lattice order
        // Shared ≤ {ThreadId, Partial} ≤ None), the result never shrinks.
        fn le(a: Category, b: Category) -> bool {
            a == b
                || matches!(
                    (a, b),
                    (Shared, ThreadId)
                        | (Shared, Partial)
                        | (Shared, None)
                        | (ThreadId, None)
                        | (Partial, None)
                )
        }
        for curr in [Shared, ThreadId, Partial, None] {
            for a in [Shared, ThreadId, Partial, None] {
                for b in [Shared, ThreadId, Partial, None] {
                    if le(a, b) {
                        assert!(
                            le(combine(curr, a), combine(curr, b)),
                            "monotonicity violated: combine({curr},{a}) vs combine({curr},{b})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn combine_all_blocks_on_na() {
        assert_eq!(combine_all([Shared, Na, Shared]), Na);
        assert_eq!(combine_all([Shared, ThreadId]), ThreadId);
        assert_eq!(combine_all([]), Na);
    }

    #[test]
    fn combine_optimistic_skips_na() {
        assert_eq!(combine_optimistic([Shared, Na]), Shared);
        assert_eq!(combine_optimistic([Na, Na]), Na);
        assert_eq!(combine_optimistic([Na, ThreadId, Shared]), ThreadId);
    }

    #[test]
    fn paper_examples() {
        // Branch 1: procid == 0 → threadID ⊔ shared = threadID
        assert_eq!(combine_all([ThreadId, Shared]), ThreadId);
        // Branch 2: i <= im-1 with i, im shared → shared
        assert_eq!(combine_all([Shared, Shared]), Shared);
        // Branch 3: gp[procid].num > im-1 → none ⊔ shared = none
        assert_eq!(combine_all([None, Shared]), None);
        // Branch 4: private > 0 with private partial → partial
        assert_eq!(combine_all([Partial, Shared]), Partial);
    }

    #[test]
    fn checkability() {
        assert!(Shared.is_checkable());
        assert!(ThreadId.is_checkable());
        assert!(Partial.is_checkable());
        assert!(!None.is_checkable());
        assert!(!Na.is_checkable());
    }

    #[test]
    fn display_matches_paper_terms() {
        assert_eq!(Shared.to_string(), "shared");
        assert_eq!(ThreadId.to_string(), "threadID");
        assert_eq!(Partial.to_string(), "partial");
        assert_eq!(None.to_string(), "none");
    }
}
