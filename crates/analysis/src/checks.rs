//! Check-plan construction: turns the similarity analysis into the list of
//! runtime checks the monitor executes (the paper's instrumentation pass).
//!
//! Instead of rewriting the IR with calls to `sendBranchCondition` /
//! `sendBranchAddr`, the plan is a side table the interpreter consults when
//! it executes an instrumented branch: which values to hash into the
//! *condition witness*, which check the monitor applies, and whether the
//! branch is instrumented at all. This is behaviourally equivalent to the
//! paper's IR rewriting (the cost model charges the same per-event cost the
//! library calls would) while keeping the IR immutable.

use bw_ir::{BranchId, CmpOp, FuncId, Module, Op, UnOp, ValueId};
use serde::{Deserialize, Serialize};

use crate::analysis::ModuleAnalysis;
use crate::category::Category;

/// Configuration knobs of the static analysis + instrumentation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Promote `none` branches to `partial` checking (compare only threads
    /// whose condition value matches) — the paper's first optimization.
    pub promote_none: bool,
    /// Skip branches that execute inside critical sections (at most one
    /// thread at a time) — the paper's second optimization.
    pub critical_section_opt: bool,
    /// Do not instrument branches nested in more than this many loops (the
    /// paper uses six; `raytrace` loses coverage to this cutoff).
    pub max_loop_depth: u32,
    /// Only instrument branches in the parallel section (functions reachable
    /// from the SPMD entry). Branches elsewhere run single-threaded and
    /// cannot be cross-checked.
    pub parallel_section_only: bool,
    /// Check only one branch per distinct condition-data set — the paper's
    /// Section VI overhead optimization ("there may be many branches that
    /// depend on the same set of variables, and faults propagating to the
    /// data will affect all of them. Therefore, it is sufficient to check
    /// one of the branches"). Trades detection of pure branch-flip faults
    /// on the skipped branches for fewer events; off by default.
    pub dedup_checks: bool,
    /// Run the similarity fixpoint SCC-parallel across this many worker
    /// threads (`Some(0)` = one per available core). `None` keeps the
    /// sequential whole-module iteration. Both paths produce bitwise-
    /// identical results; the parallel one trades the paper's Table III
    /// iteration trace for throughput on large modules.
    pub analysis_workers: Option<usize>,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            promote_none: true,
            critical_section_opt: true,
            max_loop_depth: 6,
            parallel_section_only: true,
            dedup_checks: false,
            analysis_workers: None,
        }
    }
}

/// The thread-ID predicate check derived from the branch's comparison shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TidCheck {
    /// `tid == shared`: at most one reporting thread takes the branch.
    AtMostOneTaken,
    /// `tid != shared`: at most one reporting thread does *not* take it.
    AtMostOneNotTaken,
    /// `tid < shared` / `tid <= shared`: the takers form a prefix of the
    /// thread IDs (taken is monotone non-increasing in tid).
    TakenIsPrefix,
    /// `tid > shared` / `tid >= shared`: the takers form a suffix.
    TakenIsSuffix,
}

impl TidCheck {
    /// Derives the check from a comparison with the thread ID on the left.
    pub fn from_cmp(op: CmpOp) -> TidCheck {
        match op {
            CmpOp::Eq => TidCheck::AtMostOneTaken,
            CmpOp::Ne => TidCheck::AtMostOneNotTaken,
            CmpOp::Lt | CmpOp::Le => TidCheck::TakenIsPrefix,
            CmpOp::Gt | CmpOp::Ge => TidCheck::TakenIsSuffix,
        }
    }
}

/// How the monitor checks one branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckKind {
    /// All reporting threads must send the same witness and take the same
    /// direction (`shared` branches).
    SharedUniform,
    /// Thread-ID predicate on the outcomes, plus witness uniformity on the
    /// shared side of the comparison (`threadID` branches with a direct
    /// `tid ⋈ shared` comparison).
    ThreadIdPredicate(TidCheck),
    /// Group reporters by witness; each group must be direction-uniform
    /// (`partial` branches, promoted `none` branches, and `threadID`
    /// branches without a recognizable predicate).
    GroupByWitness,
}

/// Why a branch is not instrumented.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SkipReason {
    /// Outside the parallel section.
    NotParallel,
    /// Category `none` and promotion disabled.
    NotSimilar,
    /// Nested deeper than the loop-depth cutoff.
    TooDeep,
    /// Inside a critical section.
    CriticalSection,
    /// Another branch with the same condition-data set is already checked
    /// (the Section VI deduplication optimization).
    DuplicateWitness,
}

/// The instrumentation decision for one branch.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BranchCheck {
    /// The branch this check belongs to.
    pub branch: BranchId,
    /// The static category the check enforces (after promotion).
    pub effective_category: Category,
    /// The check the monitor applies.
    pub kind: CheckKind,
    /// Values hashed into the condition witness, in order. Evaluated from
    /// the executing thread's registers at the branch; they always dominate
    /// the branch because they are operands of (the chain producing) its
    /// condition.
    pub witnesses: Vec<ValueId>,
}

/// The full instrumentation plan for a module.
#[derive(Clone, Debug)]
pub struct CheckPlan {
    /// Per-branch decision: `Ok(check)` if instrumented, `Err(reason)` why
    /// not otherwise. Indexed by [`BranchId`].
    pub decisions: Vec<Result<BranchCheck, SkipReason>>,
    /// The configuration the plan was built with.
    pub config: AnalysisConfig,
}

impl CheckPlan {
    /// Builds the plan from an analysis result.
    pub fn build(module: &Module, analysis: &ModuleAnalysis, config: AnalysisConfig) -> CheckPlan {
        let mut seen_witnesses: std::collections::HashSet<(u32, Vec<u64>)> =
            std::collections::HashSet::new();
        let decisions = analysis
            .branches
            .iter()
            .map(|b| {
                if config.parallel_section_only && !b.in_parallel_section {
                    return Err(SkipReason::NotParallel);
                }
                if b.loop_depth >= config.max_loop_depth {
                    return Err(SkipReason::TooDeep);
                }
                if config.critical_section_opt && b.min_locks_held > 0 {
                    return Err(SkipReason::CriticalSection);
                }
                let effective = match b.category {
                    Category::None | Category::Na if config.promote_none => Category::Partial,
                    Category::None | Category::Na => return Err(SkipReason::NotSimilar),
                    c => c,
                };
                let (kind, witnesses) = derive_check(module, analysis, b.func, b.cond, effective);
                if config.dedup_checks {
                    let f = module.func(b.func);
                    let mut key: Vec<u64> =
                        witnesses.iter().map(|&v| condition_source_token(f, v)).collect();
                    key.sort_unstable();
                    if !seen_witnesses.insert((b.func.0, key)) {
                        return Err(SkipReason::DuplicateWitness);
                    }
                }
                Ok(BranchCheck { branch: b.id, effective_category: effective, kind, witnesses })
            })
            .collect();
        CheckPlan { decisions, config }
    }

    /// The check for a branch, if it is instrumented.
    pub fn check(&self, branch: BranchId) -> Option<&BranchCheck> {
        self.decisions.get(branch.index())?.as_ref().ok()
    }

    /// Number of instrumented branches.
    pub fn num_instrumented(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_ok()).count()
    }
}

/// Structural information about a branch condition, used both for witness
/// selection and by the fault injector (which corrupts the branch's
/// *condition data*, i.e. these values).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConditionInfo {
    /// The comparison producing the condition, if the condition is (a
    /// possibly negated chain over) a comparison: `(op, lhs, rhs, negated)`.
    pub cmp: Option<(CmpOp, ValueId, ValueId, bool)>,
    /// The non-constant condition data values (the comparison's variable
    /// operands, or the condition itself when it is not a comparison).
    pub data_values: Vec<ValueId>,
}

impl ConditionInfo {
    /// Extracts condition structure for `cond` in `f`.
    pub fn extract(f: &bw_ir::Function, cond: ValueId) -> ConditionInfo {
        let mut value = resolve_trivial(f, cond);
        let mut negated = false;
        while let Some(inst) = f.def_inst(value) {
            match &inst.op {
                Op::Un { op: UnOp::Not, operand } => {
                    negated = !negated;
                    value = resolve_trivial(f, *operand);
                }
                _ => break,
            }
        }
        let cmp = f.def_inst(value).and_then(|inst| match &inst.op {
            Op::Cmp { op, lhs, rhs } => Some((*op, *lhs, *rhs, negated)),
            _ => None,
        });
        let data_values = match cmp {
            Some((_, lhs, rhs, _)) => {
                let w = non_const_values(f, &[lhs, rhs]);
                if w.is_empty() {
                    vec![cond]
                } else {
                    w
                }
            }
            None => vec![cond],
        };
        ConditionInfo { cmp, data_values }
    }
}

/// Chooses the runtime check and witness set for one branch condition.
fn derive_check(
    module: &Module,
    analysis: &ModuleAnalysis,
    func: FuncId,
    cond: ValueId,
    effective: Category,
) -> (CheckKind, Vec<ValueId>) {
    let f = module.func(func);

    // Peel `not`s (tracking parity) and trivial phis off the condition.
    let mut value = resolve_trivial(f, cond);
    let mut negated = false;
    while let Some(inst) = f.def_inst(value) {
        match &inst.op {
            Op::Un { op: UnOp::Not, operand } => {
                negated = !negated;
                value = resolve_trivial(f, *operand);
            }
            _ => break,
        }
    }

    let cmp = f.def_inst(value).and_then(|inst| match &inst.op {
        Op::Cmp { op, lhs, rhs } => Some((*op, *lhs, *rhs)),
        _ => None,
    });

    match effective {
        Category::ThreadId => {
            if let Some((op, lhs, rhs)) = cmp {
                // Orient the comparison with the thread ID on the left.
                let lhs_is_tid = is_direct_tid(f, lhs)
                    && analysis.value_category(func, rhs) == Category::Shared;
                let rhs_is_tid = is_direct_tid(f, rhs)
                    && analysis.value_category(func, lhs) == Category::Shared;
                if lhs_is_tid || rhs_is_tid {
                    let mut oriented = if lhs_is_tid { op } else { op.swapped() };
                    if negated {
                        oriented = oriented.negated();
                    }
                    let shared_side = if lhs_is_tid { rhs } else { lhs };
                    let witnesses = non_const_values(f, &[shared_side]);
                    return (CheckKind::ThreadIdPredicate(TidCheck::from_cmp(oriented)), witnesses);
                }
            }
            // ThreadID-derived but not a direct `tid ⋈ shared` comparison:
            // fall back to value grouping, which is sound for any branch.
            (CheckKind::GroupByWitness, cmp_witnesses(f, cmp, value))
        }
        Category::Shared => (CheckKind::SharedUniform, cmp_witnesses(f, cmp, value)),
        _ => (CheckKind::GroupByWitness, cmp_witnesses(f, cmp, value)),
    }
}

/// Witnesses for value-comparing checks: the non-constant operands of the
/// comparison, or the condition itself when it is not a comparison.
fn cmp_witnesses(
    f: &bw_ir::Function,
    cmp: Option<(CmpOp, ValueId, ValueId)>,
    cond: ValueId,
) -> Vec<ValueId> {
    match cmp {
        Some((_, lhs, rhs)) => {
            let w = non_const_values(f, &[lhs, rhs]);
            if w.is_empty() {
                vec![cond]
            } else {
                w
            }
        }
        None => vec![cond],
    }
}

fn non_const_values(f: &bw_ir::Function, values: &[ValueId]) -> Vec<ValueId> {
    values
        .iter()
        .copied()
        .filter(|&v| !matches!(f.def_inst(v).map(|i| &i.op), Some(Op::Const(_))))
        .collect()
}

/// Whether `value` is directly the thread ID: the `threadid` intrinsic or a
/// fetch-add on a thread-ID counter global, possibly behind trivial phis.
fn is_direct_tid(f: &bw_ir::Function, value: ValueId) -> bool {
    match f.def_inst(resolve_trivial(f, value)).map(|i| &i.op) {
        Some(Op::ThreadId) => true,
        Some(Op::AtomicFetchAdd { .. }) => true, // counter flag checked by category
        _ => false,
    }
}

/// Canonical token identifying the *source* of a condition-data value for
/// the Section VI deduplication: two loads of the same global location are
/// the same condition data ("branches that depend on the same set of
/// variables") even though they are distinct SSA values.
fn condition_source_token(f: &bw_ir::Function, value: ValueId) -> u64 {
    let v = resolve_trivial(f, value);
    if let Some(Op::Load { addr, .. }) = f.def_inst(v).map(|i| &i.op) {
        let a = resolve_trivial(f, *addr);
        match f.def_inst(a).map(|i| &i.op) {
            // Scalar global load: token on the global id.
            Some(Op::GlobalAddr(g)) => return 0x8000_0000_0000_0000 | u64::from(g.0),
            // Constant-indexed array load: token on (global, offset).
            Some(Op::Gep { base, offset }) => {
                let base = resolve_trivial(f, *base);
                let off = resolve_trivial(f, *offset);
                if let (Some(Op::GlobalAddr(g)), Some(Op::Const(c))) = (
                    f.def_inst(base).map(|i| &i.op),
                    f.def_inst(off).map(|i| &i.op),
                ) {
                    let bits = c.bits() & 0x0fff_ffff;
                    return 0xc000_0000_0000_0000 | (u64::from(g.0) << 28) | bits;
                }
            }
            _ => {}
        }
    }
    u64::from(v.0)
}

/// Resolves trivial phis (all non-self incomings are the same value), which
/// the front-end's incremental SSA construction leaves behind for variables
/// that are read but not modified across a merge.
fn resolve_trivial(f: &bw_ir::Function, mut value: ValueId) -> ValueId {
    for _ in 0..64 {
        let Some(Op::Phi { incomings, .. }) = f.def_inst(value).map(|i| &i.op) else {
            return value;
        };
        let mut distinct = None;
        for inc in incomings {
            if inc.value == value {
                continue;
            }
            match distinct {
                None => distinct = Some(inc.value),
                Some(d) if d == inc.value => {}
                Some(_) => return value, // genuinely merging values
            }
        }
        match distinct {
            Some(d) => value = d,
            None => return value,
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_check_derivation() {
        assert_eq!(TidCheck::from_cmp(CmpOp::Eq), TidCheck::AtMostOneTaken);
        assert_eq!(TidCheck::from_cmp(CmpOp::Ne), TidCheck::AtMostOneNotTaken);
        assert_eq!(TidCheck::from_cmp(CmpOp::Lt), TidCheck::TakenIsPrefix);
        assert_eq!(TidCheck::from_cmp(CmpOp::Le), TidCheck::TakenIsPrefix);
        assert_eq!(TidCheck::from_cmp(CmpOp::Gt), TidCheck::TakenIsSuffix);
        assert_eq!(TidCheck::from_cmp(CmpOp::Ge), TidCheck::TakenIsSuffix);
    }

    #[test]
    fn default_config_matches_paper() {
        let c = AnalysisConfig::default();
        assert!(c.promote_none);
        assert!(c.critical_section_opt);
        assert_eq!(c.max_loop_depth, 6);
        assert!(c.parallel_section_only);
    }
}
