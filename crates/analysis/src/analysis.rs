//! The module-wide similarity fixpoint (paper Figure 3, interprocedural).
//!
//! Every SSA value in every function is assigned a [`Category`]. Seeds:
//! constants and loads of shared globals are `shared`; the thread-ID
//! intrinsic (and fetch-adds on a designated thread-ID counter global) are
//! `threadID`; loads of non-shared memory are `none`. Categories propagate
//! through instructions with the Table II rules ([`combine_all`]), with the
//! deviations the paper describes:
//!
//! * **Phi nodes** are folded optimistically (`NA` incomings are skipped) so
//!   loop-carried values resolve from their initial value — the behaviour
//!   Table III requires. An if-else *merge* phi whose result would be
//!   `shared` but merges two or more distinct values is downgraded to
//!   `partial` (the paper's `private = ±1` example).
//! * **Function parameters** merge the categories of the arguments passed at
//!   every (direct or table-indirect) call site. If all sites agree, the
//!   branch instances are tracked per call site and the common category is
//!   kept (the paper's "multiple instances" policy from Figure 2); mixed
//!   non-`none` categories fall back to `partial`, which is always sound
//!   because equal condition values imply equal outcomes.
//! * **Call results** take the callee's return category; a callee with
//!   several return sites (or an indirect call with several callees) yields
//!   `partial` at best.
//!
//! The fixpoint is monotone in the similarity lattice
//! (`shared ≤ {threadID, partial} ≤ none`), so it terminates; the paper
//! observes fewer than ten iterations in practice and the tests here check
//! the same programs converge just as fast.

use std::collections::HashMap;

use bw_ir::{
    BlockId, BranchId, Cfg, DomTree, FuncId, Function, GlobalId, LoopForest, Module, Op, ValueId,
};
use serde::{Deserialize, Serialize};

use crate::category::{combine_all, combine_optimistic, Category};

/// Where a pointer value can point, for load classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Prov {
    /// Not yet known (fixpoint bottom).
    Unresolved,
    /// Always into the given global region.
    Global(GlobalId),
    /// Always into thread-local memory.
    Local,
    /// Could be several places.
    Unknown,
}

impl Prov {
    /// Join of the provenance lattice (`Unresolved < {Global, Local} <
    /// Unknown`): commutative and associative, so the provenance fixpoint
    /// has a unique least solution independent of iteration order.
    pub(crate) fn merge(self, other: Prov) -> Prov {
        match (self, other) {
            (Prov::Unresolved, p) | (p, Prov::Unresolved) => p,
            (a, b) if a == b => a,
            _ => Prov::Unknown,
        }
    }
}

/// One conditional branch discovered in the module.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Stable id (index into [`ModuleAnalysis::branches`]).
    pub id: BranchId,
    /// Function containing the branch.
    pub func: FuncId,
    /// Block whose terminator it is.
    pub block: BlockId,
    /// Instruction index of the `Br` within the block.
    pub inst_index: usize,
    /// The branch condition value.
    pub cond: ValueId,
    /// Inferred similarity category of the condition.
    pub category: Category,
    /// Loop nesting depth of the block (0 = not in a loop).
    pub loop_depth: u32,
    /// Whether the branch is reachable from the SPMD entry (the paper's
    /// "parallel section").
    pub in_parallel_section: bool,
    /// Minimum number of mutexes guaranteed held when the branch executes
    /// (> 0 means the branch is inside a critical section).
    pub min_locks_held: u32,
}

/// Result of the similarity analysis over a module.
#[derive(Clone, Debug)]
pub struct ModuleAnalysis {
    /// Per-function, per-value categories.
    value_cats: Vec<Vec<Category>>,
    /// All conditional branches, indexed by [`BranchId`].
    pub branches: Vec<BranchInfo>,
    /// Number of whole-module fixpoint iterations executed.
    pub iterations: usize,
    /// Per-iteration snapshots of every branch's category (iteration 0 is
    /// the state after the first pass). Used to reproduce the paper's
    /// Table III convergence trace.
    pub trace: Vec<Vec<Category>>,
    /// Whether each function is reachable from the SPMD entry.
    pub parallel_funcs: Vec<bool>,
    /// Number of dependency-graph SCCs the parallel scheduler executed
    /// (0 when the sequential oracle path produced this result).
    pub sccs: usize,
}

impl ModuleAnalysis {
    /// Runs the similarity analysis on `module` (the sequential oracle:
    /// one whole-module fixpoint, as in the paper's Figure 3).
    pub fn run(module: &Module) -> ModuleAnalysis {
        Analyzer::new(module).run()
    }

    /// Runs the SCC-parallel analysis: the interprocedural value-dependency
    /// graph is condensed into its SCC DAG and per-SCC local fixpoints are
    /// scheduled across `workers` threads in dependency order (`0` = one
    /// worker per available core). The result is bitwise-identical to
    /// [`ModuleAnalysis::run`] at any worker count, except that
    /// [`ModuleAnalysis::trace`] is empty (there is no whole-module
    /// iteration to snapshot) and [`ModuleAnalysis::iterations`] reports
    /// the largest local-SCC round count instead.
    pub fn run_parallel(module: &Module, workers: usize) -> ModuleAnalysis {
        crate::parallel::run_parallel(module, workers)
    }

    /// Reports the first difference from `other` in the fields the two
    /// analysis paths must agree on (`value_cats`, `branches`,
    /// `parallel_funcs`), or `None` if they agree. `iterations`, `trace`
    /// and `sccs` are schedule artifacts and deliberately not compared.
    pub fn divergence(&self, other: &ModuleAnalysis) -> Option<String> {
        if self.value_cats != other.value_cats {
            for (fi, (a, b)) in self.value_cats.iter().zip(&other.value_cats).enumerate() {
                for (vi, (ca, cb)) in a.iter().zip(b).enumerate() {
                    if ca != cb {
                        return Some(format!("value f{fi}:v{vi}: {ca} vs {cb}"));
                    }
                }
            }
            return Some("value table shapes differ".into());
        }
        if self.branches != other.branches {
            for (a, b) in self.branches.iter().zip(&other.branches) {
                if a != b {
                    return Some(format!(
                        "branch {}: {:?} vs {:?}",
                        a.id.index(),
                        a,
                        b
                    ));
                }
            }
            return Some("branch counts differ".into());
        }
        if self.parallel_funcs != other.parallel_funcs {
            return Some("parallel_funcs differ".into());
        }
        None
    }

    /// The category of an SSA value.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn value_category(&self, func: FuncId, value: ValueId) -> Category {
        self.value_cats[func.index()][value.index()]
    }

    /// The branch at the terminator of `(func, block)`, if that block ends
    /// in a conditional branch.
    pub fn branch_at(&self, func: FuncId, block: BlockId) -> Option<&BranchInfo> {
        self.branches.iter().find(|b| b.func == func && b.block == block)
    }

    /// Overrides the category recorded for one SSA value — and for any
    /// branch whose condition is that value.
    ///
    /// This is a **testing seam**, not part of the analysis: the fuzz oracle
    /// uses it to plant a deliberately wrong category (simulating a broken
    /// Table II propagation rule) and then asserts that the differential
    /// harness catches the resulting monitor misbehaviour. Production code
    /// should never call this.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn override_value_category(&mut self, func: FuncId, value: ValueId, cat: Category) {
        self.value_cats[func.index()][value.index()] = cat;
        for b in &mut self.branches {
            if b.func == func && b.cond == value {
                b.category = cat;
            }
        }
    }

    /// Branches in the parallel section only.
    pub fn parallel_branches(&self) -> impl Iterator<Item = &BranchInfo> {
        self.branches.iter().filter(|b| b.in_parallel_section)
    }

    /// Counts parallel-section branches per category
    /// `(shared, threadID, partial, none)` — the rows of the paper's
    /// Table V. `Na` branches count as `none`, as in Figure 3 line 18.
    pub fn category_histogram(&self) -> CategoryHistogram {
        let mut h = CategoryHistogram::default();
        for b in self.parallel_branches() {
            match b.category {
                Category::Shared => h.shared += 1,
                Category::ThreadId => h.thread_id += 1,
                Category::Partial => h.partial += 1,
                Category::None | Category::Na => h.none += 1,
            }
        }
        h
    }
}

/// Per-category branch counts for one program (a Table V row).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CategoryHistogram {
    /// Branches classified `shared`.
    pub shared: usize,
    /// Branches classified `threadID`.
    pub thread_id: usize,
    /// Branches classified `partial`.
    pub partial: usize,
    /// Branches classified `none` (or unresolved).
    pub none: usize,
}

impl CategoryHistogram {
    /// Total number of branches.
    pub fn total(&self) -> usize {
        self.shared + self.thread_id + self.partial + self.none
    }

    /// Fraction of branches that are checkable (not `none`).
    pub fn similar_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.shared + self.thread_id + self.partial) as f64 / self.total() as f64
    }
}

/// Everything the fixpoint needs that is a pure function of the module:
/// CFG orders, loop structure, trivial-phi resolution, and the branch
/// list. Computed once and shared by the sequential and parallel paths so
/// both literally run the same transfer functions over the same facts.
pub(crate) struct ModuleFacts {
    pub(crate) rpo: Vec<Vec<BlockId>>,
    /// Per function: loop header → in-loop predecessors (back edges).
    pub(crate) loop_headers: Vec<HashMap<BlockId, Vec<BlockId>>>,
    /// Trivial-phi resolution: `resolved[f][v]` is the value `v` is a copy
    /// of (through chains of phis whose incomings all agree), or `v` itself.
    pub(crate) resolved: Vec<Vec<ValueId>>,
    pub(crate) branches: Vec<BranchInfo>,
}

impl ModuleFacts {
    pub(crate) fn new(module: &Module) -> ModuleFacts {
        let mut rpo = Vec::with_capacity(module.funcs.len());
        let mut loop_headers = Vec::with_capacity(module.funcs.len());
        let mut branches = Vec::new();
        let mut loop_depths: Vec<Vec<u32>> = Vec::with_capacity(module.funcs.len());

        for (fid, func) in module.iter_funcs() {
            let cfg = Cfg::new(func);
            let dom = DomTree::new(&cfg, func.entry());
            let loops = LoopForest::new(&cfg, &dom);
            rpo.push(cfg.reverse_postorder(func.entry()));

            let mut headers: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
            for l in loops.loops() {
                let latches: Vec<BlockId> = l
                    .blocks
                    .iter()
                    .copied()
                    .filter(|&b| cfg.succs(b).contains(&l.header))
                    .collect();
                headers.insert(l.header, latches);
            }
            loop_headers.push(headers);

            let depths: Vec<u32> =
                (0..func.blocks.len()).map(|i| loops.depth(BlockId::from_index(i))).collect();
            loop_depths.push(depths);

            for (bb, block) in func.iter_blocks() {
                for (i, inst) in block.insts.iter().enumerate() {
                    if let Op::Br { cond, .. } = inst.op {
                        branches.push(BranchInfo {
                            id: BranchId::from_index(branches.len()),
                            func: fid,
                            block: bb,
                            inst_index: i,
                            cond,
                            category: Category::Na,
                            loop_depth: loop_depths[fid.index()][bb.index()],
                            in_parallel_section: false,
                            min_locks_held: 0,
                        });
                    }
                }
            }
        }

        let resolved = module.funcs.iter().map(resolve_trivial_phis).collect();
        ModuleFacts { rpo, loop_headers, resolved, branches }
    }
}

/// Applies the shared post-fixpoint steps — default unresolved branches to
/// `none` (Figure 3, line 18), mark the parallel section, run the
/// critical-section dataflow — and assembles the result. Both analysis
/// paths end here, so their outputs are structurally identical by
/// construction.
pub(crate) fn finalize(
    module: &Module,
    rpo: &[Vec<BlockId>],
    mut branches: Vec<BranchInfo>,
    value_cats: Vec<Vec<Category>>,
    iterations: usize,
    trace: Vec<Vec<Category>>,
    sccs: usize,
) -> ModuleAnalysis {
    for b in &mut branches {
        b.category = value_cats[b.func.index()][b.cond.index()];
        if b.category == Category::Na {
            b.category = Category::None;
        }
    }
    let parallel_funcs = reachable_from_spmd(module);
    for b in &mut branches {
        b.in_parallel_section = parallel_funcs[b.func.index()];
    }
    compute_critical_sections(module, rpo, &mut branches);
    ModuleAnalysis { value_cats, branches, iterations, trace, parallel_funcs, sccs }
}

struct Analyzer<'m> {
    module: &'m Module,
    cats: Vec<Vec<Category>>,
    provs: Vec<Vec<Prov>>,
    ret_cats: Vec<Vec<(usize, Category)>>, // per func: (distinct ret site idx, category)
    rpo: Vec<Vec<BlockId>>,
    loop_headers: Vec<HashMap<BlockId, Vec<BlockId>>>, // header -> in-loop preds (back edges)
    /// Trivial-phi resolution: `resolved[f][v]` is the value `v` is a copy
    /// of (through chains of phis whose incomings all agree), or `v` itself.
    resolved: Vec<Vec<ValueId>>,
    branches: Vec<BranchInfo>,
}

/// Computes the trivial-phi resolution map of one function: a phi all of
/// whose (non-self) incomings resolve to the same value is a copy of that
/// value, and — following Braun et al.'s redundant-SCC observation — an
/// entire strongly connected component of phis with exactly one external
/// input is a copy of that input. The front-end's incremental SSA
/// construction leaves such phis (and mutually-referencing phi cycles)
/// behind for variables read but not written across merges; without
/// resolving them, the merge-phi `partial` downgrade would fire on values
/// that are not actually merged.
fn resolve_trivial_phis(func: &Function) -> Vec<ValueId> {
    let n = func.num_values();
    let mut resolved: Vec<ValueId> = (0..n).map(ValueId::from_index).collect();
    let mut is_phi = vec![false; n];
    let mut phi_incomings: Vec<Vec<ValueId>> = vec![Vec::new(); n];
    let mut phis = Vec::new();
    for block in &func.blocks {
        for inst in block.phis() {
            let result = inst.result.expect("phi has a result");
            is_phi[result.index()] = true;
            phi_incomings[result.index()] = inst
                .op
                .phi_incomings()
                .expect("phi")
                .iter()
                .map(|inc| inc.value)
                .collect();
            phis.push(result);
        }
    }

    let mut changed = true;
    let mut rounds = 0;
    while changed && rounds <= phis.len() + 10 {
        changed = false;
        rounds += 1;

        // Pass 1: simple chains — a phi whose non-self incomings all
        // resolve to one value is that value.
        for &p in &phis {
            let mut target: Option<ValueId> = None;
            let mut trivial = true;
            for &inc in &phi_incomings[p.index()] {
                let r = resolved[inc.index()];
                if r == p {
                    continue;
                }
                match target {
                    None => target = Some(r),
                    Some(t) if t == r => {}
                    Some(_) => {
                        trivial = false;
                        break;
                    }
                }
            }
            let new = if trivial { target.unwrap_or(p) } else { p };
            if resolved[p.index()] != new {
                resolved[p.index()] = new;
                changed = true;
            }
        }

        // Pass 2: SCCs of still-unresolved phis with a single external
        // input (mutually-referencing copies through nested merges).
        let unresolved: Vec<ValueId> =
            phis.iter().copied().filter(|&p| resolved[p.index()] == p).collect();
        if unresolved.is_empty() {
            break;
        }
        for component in phi_sccs(&unresolved, &phi_incomings, &resolved) {
            let in_scc = |v: ValueId| component.contains(&v);
            let mut external: Option<ValueId> = None;
            let mut single = true;
            'members: for &member in &component {
                for &inc in &phi_incomings[member.index()] {
                    let r = resolved[inc.index()];
                    if in_scc(r) {
                        continue;
                    }
                    match external {
                        None => external = Some(r),
                        Some(x) if x == r => {}
                        Some(_) => {
                            single = false;
                            break 'members;
                        }
                    }
                }
            }
            if single {
                if let Some(x) = external {
                    for &member in &component {
                        if resolved[member.index()] != x {
                            resolved[member.index()] = x;
                            changed = true;
                        }
                    }
                }
            }
        }
    }
    resolved
}

/// Strongly connected components (size >= 2, plus self-loops are impossible
/// here) of the "phi resolves-through phi" graph over `nodes`, via
/// iterative Tarjan.
fn phi_sccs(
    nodes: &[ValueId],
    phi_incomings: &[Vec<ValueId>],
    resolved: &[ValueId],
) -> Vec<Vec<ValueId>> {
    use std::collections::HashMap;
    let index_of: HashMap<ValueId, usize> =
        nodes.iter().copied().enumerate().map(|(i, v)| (v, i)).collect();
    let n = nodes.len();
    let succs: Vec<Vec<usize>> = nodes
        .iter()
        .map(|&p| {
            phi_incomings[p.index()]
                .iter()
                .filter_map(|&inc| index_of.get(&resolved[inc.index()]).copied())
                .collect()
        })
        .collect();

    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs = Vec::new();

    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        // Iterative Tarjan with an explicit work stack of (node, child pos).
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if *ci < succs[v].len() {
                let w = succs[v][*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&(parent, _)) = work.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut component = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        component.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    if component.len() >= 2 {
                        sccs.push(component);
                    }
                }
            }
        }
    }
    sccs
}

impl<'m> Analyzer<'m> {
    fn new(module: &'m Module) -> Self {
        let facts = ModuleFacts::new(module);
        let cats = module.funcs.iter().map(|f| vec![Category::Na; f.num_values()]).collect();
        let provs = module.funcs.iter().map(|f| vec![Prov::Unresolved; f.num_values()]).collect();
        let ret_cats = vec![Vec::new(); module.funcs.len()];

        Analyzer {
            module,
            cats,
            provs,
            ret_cats,
            rpo: facts.rpo,
            loop_headers: facts.loop_headers,
            resolved: facts.resolved,
            branches: facts.branches,
        }
    }

    fn run(mut self) -> ModuleAnalysis {
        self.resolve_provenance();

        let mut trace = Vec::new();
        let mut iterations = 0;
        // The categories only grow in a finite lattice, so this terminates;
        // the bound is a safety net against bugs.
        let max_iterations = 10 + self.module.num_insts();
        loop {
            iterations += 1;
            let changed = self.iterate();
            trace.push(self.branch_snapshot());
            if !changed {
                break;
            }
            assert!(
                iterations <= max_iterations,
                "similarity fixpoint failed to converge in {max_iterations} iterations"
            );
        }

        finalize(self.module, &self.rpo, self.branches, self.cats, iterations, trace, 0)
    }

    fn branch_snapshot(&self) -> Vec<Category> {
        self.branches.iter().map(|b| self.cats[b.func.index()][b.cond.index()]).collect()
    }

    /// Pointer provenance: a small forward fixpoint of its own.
    fn resolve_provenance(&mut self) {
        // Seed before iterating: parameters of pointer type are unknown
        // (pointers flowing through calls are not tracked). Seeding must
        // happen first so values derived from parameter pointers (geps,
        // loads) see `Unknown` during the fixpoint — seeding afterwards
        // would leave dependents at whatever the iteration order happened
        // to produce, making the result sensitive to function and block
        // layout.
        for (fid, func) in self.module.iter_funcs() {
            for i in 0..func.params.len() {
                if func.params[i] == bw_ir::Type::Ptr {
                    self.provs[fid.index()][i] = Prov::Unknown;
                }
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for (fid, func) in self.module.iter_funcs() {
                for &bb in &self.rpo[fid.index()].clone() {
                    for inst in &func.block(bb).insts {
                        let Some(result) = inst.result else { continue };
                        let new = match &inst.op {
                            Op::GlobalAddr(g) => Prov::Global(*g),
                            Op::Gep { base, .. } => self.provs[fid.index()][base.index()],
                            Op::Alloca { .. } => Prov::Local,
                            Op::Phi { incomings, .. } => {
                                let mut p = Prov::Unresolved;
                                for inc in incomings {
                                    if inc.value == result {
                                        continue;
                                    }
                                    p = p.merge(self.provs[fid.index()][inc.value.index()]);
                                }
                                p
                            }
                            // Pointers flowing through calls or loads are
                            // not tracked.
                            Op::Call { .. } | Op::CallIndirect { .. } | Op::Load { .. } => {
                                if inst.ty == Some(bw_ir::Type::Ptr) {
                                    Prov::Unknown
                                } else {
                                    continue;
                                }
                            }
                            _ => continue,
                        };
                        let slot = &mut self.provs[fid.index()][result.index()];
                        let merged = slot.merge(new);
                        if *slot != merged {
                            *slot = merged;
                            changed = true;
                        }
                    }
                }
            }
        }
    }

    /// One whole-module pass; returns whether anything changed.
    fn iterate(&mut self) -> bool {
        let mut changed = false;

        // 1. Merge call-site argument categories into parameter categories.
        changed |= self.update_params();

        // 2. Visit all instructions in RPO.
        for (fid, func) in self.module.iter_funcs() {
            let rpo = self.rpo[fid.index()].clone();
            for bb in rpo {
                for (i, inst) in func.block(bb).insts.iter().enumerate() {
                    let _ = i;
                    let Some(result) = inst.result else { continue };
                    let new = self.visit(fid, func, bb, inst, result);
                    if new != Category::Na {
                        let slot = &mut self.cats[fid.index()][result.index()];
                        if *slot != new {
                            *slot = new;
                            changed = true;
                        }
                    }
                }
            }
        }

        // 3. Refresh per-function return categories.
        for (fid, func) in self.module.iter_funcs() {
            let mut rets = Vec::new();
            for (_, block) in func.iter_blocks() {
                if let Some(inst) = block.terminator() {
                    if let Op::Ret(Some(v)) = inst.op {
                        rets.push((rets.len(), self.cats[fid.index()][v.index()]));
                    }
                }
            }
            if self.ret_cats[fid.index()] != rets {
                self.ret_cats[fid.index()] = rets;
                changed = true;
            }
        }

        changed
    }

    fn update_params(&mut self) -> bool {
        let mut changed = false;
        // Collect argument categories per (callee, param index).
        let mut inputs: HashMap<(FuncId, usize), Vec<Category>> = HashMap::new();
        for (fid, func) in self.module.iter_funcs() {
            for (_, block) in func.iter_blocks() {
                for inst in &block.insts {
                    match &inst.op {
                        Op::Call { func: callee, args, .. } => {
                            for (i, arg) in args.iter().enumerate() {
                                inputs
                                    .entry((*callee, i))
                                    .or_default()
                                    .push(self.cats[fid.index()][arg.index()]);
                            }
                        }
                        Op::CallIndirect { table, args, .. } => {
                            for &callee in &self.module.tables[table.index()].funcs {
                                for (i, arg) in args.iter().enumerate() {
                                    inputs
                                        .entry((callee, i))
                                        .or_default()
                                        .push(self.cats[fid.index()][arg.index()]);
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }
        for ((callee, i), cats) in inputs {
            let new = merge_sites(&cats);
            if new != Category::Na {
                let slot = &mut self.cats[callee.index()][i];
                if *slot != new {
                    *slot = new;
                    changed = true;
                }
            }
        }
        changed
    }

    fn visit(
        &self,
        fid: FuncId,
        func: &Function,
        bb: BlockId,
        inst: &bw_ir::Inst,
        result: ValueId,
    ) -> Category {
        let cat = |v: ValueId| self.cats[fid.index()][v.index()];
        match &inst.op {
            Op::Const(_) => Category::Shared,
            Op::GlobalAddr(_) => Category::Shared,
            Op::ThreadId => Category::ThreadId,
            Op::NumThreads => Category::Shared,
            Op::Rand { .. } => Category::None,
            Op::Alloca { .. } => Category::None,
            Op::AtomicFetchAdd { global, .. } => {
                if self.module.global(*global).tid_counter {
                    Category::ThreadId
                } else {
                    Category::None
                }
            }
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => {
                combine_all([cat(*lhs), cat(*rhs)])
            }
            Op::Un { operand, .. } => cat(*operand),
            Op::Gep { base, offset } => combine_all([cat(*base), cat(*offset)]),
            Op::Load { addr, .. } => match self.provs[fid.index()][addr.index()] {
                Prov::Global(g) if self.module.global(g).shared => match cat(*addr) {
                    Category::Na => Category::Na,
                    Category::Shared => Category::Shared,
                    // Value is "one of the elements of a shared array":
                    // groupable by value, hence partial.
                    _ => Category::Partial,
                },
                Prov::Unresolved => Category::Na,
                _ => Category::None,
            },
            Op::Phi { incomings, .. } => {
                // A trivial phi (all incomings agree through phi chains) is
                // a copy of its target — no merge happens at runtime.
                let resolved = &self.resolved[fid.index()];
                let target = resolved[result.index()];
                if target != result {
                    return cat(target);
                }
                let latches = self.loop_headers[fid.index()].get(&bb);
                let is_loop_phi = latches
                    .is_some_and(|l| incomings.iter().any(|inc| l.contains(&inc.block)));
                let cats: Vec<Category> = incomings
                    .iter()
                    .filter(|inc| resolved[inc.value.index()] != result)
                    .map(|inc| cat(inc.value))
                    .collect();
                let combined = combine_optimistic(cats.iter().copied());
                if !is_loop_phi && combined == Category::Shared {
                    // If-else convergence merging distinct shared values →
                    // partial (the paper's deviation from Table II).
                    let mut distinct: Vec<ValueId> = incomings
                        .iter()
                        .map(|inc| resolved[inc.value.index()])
                        .filter(|&v| v != result)
                        .collect();
                    distinct.sort_unstable();
                    distinct.dedup();
                    if distinct.len() >= 2 {
                        return Category::Partial;
                    }
                }
                combined
            }
            Op::Call { func: callee, .. } => self.callee_result(&[*callee]),
            Op::CallIndirect { table, .. } => {
                self.callee_result(&self.module.tables[table.index()].funcs)
            }
            // No result:
            Op::Store { .. }
            | Op::Output(_)
            | Op::MutexLock(_)
            | Op::MutexUnlock(_)
            | Op::Barrier(_)
            | Op::Br { .. }
            | Op::Jump(_)
            | Op::Ret(_)
            | Op::Trap => {
                let _ = func;
                Category::Na
            }
        }
    }

    fn callee_result(&self, callees: &[FuncId]) -> Category {
        let mut cats = Vec::new();
        let mut sites = 0usize;
        for &callee in callees {
            for (_, c) in &self.ret_cats[callee.index()] {
                sites += 1;
                cats.push(*c);
            }
        }
        let combined = combine_optimistic(cats.iter().copied());
        match combined {
            Category::Na | Category::None => combined,
            c if sites <= 1 && callees.len() <= 1 => c,
            // Result is "one of several" values: groupable at best.
            Category::Shared | Category::Partial => Category::Partial,
            // Several thread-ID-derived returns chosen by unknown control:
            // still groupable by value.
            _ => Category::Partial,
        }
    }

}

/// Which functions are reachable from the SPMD entry (the paper's
/// "parallel section").
pub(crate) fn reachable_from_spmd(module: &Module) -> Vec<bool> {
    let mut reachable = vec![false; module.funcs.len()];
    let Some(entry) = module.spmd_entry else {
        return reachable;
    };
    let mut work = vec![entry];
    reachable[entry.index()] = true;
    while let Some(fid) = work.pop() {
        for block in &module.func(fid).blocks {
            for inst in &block.insts {
                let callees: Vec<FuncId> = match &inst.op {
                    Op::Call { func, .. } => vec![*func],
                    Op::CallIndirect { table, .. } => module.tables[table.index()].funcs.clone(),
                    _ => continue,
                };
                for callee in callees {
                    if !reachable[callee.index()] {
                        reachable[callee.index()] = true;
                        work.push(callee);
                    }
                }
            }
        }
    }
    reachable
}

/// Interprocedural "minimum mutexes held" dataflow, used by the
/// critical-section optimization (branches only one thread can execute
/// at a time are not worth checking).
pub(crate) fn compute_critical_sections(
    module: &Module,
    rpo: &[Vec<BlockId>],
    branches: &mut [BranchInfo],
) {
    const INF: u32 = u32::MAX / 2;
    // held_entry[f] = min locks held when f is entered.
    let mut held_entry = vec![INF; module.funcs.len()];
    for role in [module.init, module.spmd_entry, module.fini].into_iter().flatten() {
        held_entry[role.index()] = 0;
    }

    // block_in[f][b] = min locks held entering block b of f.
    let mut block_in: Vec<Vec<u32>> =
        module.funcs.iter().map(|f| vec![INF; f.blocks.len()]).collect();

    let mut changed = true;
    while changed {
        changed = false;
        for (fid, func) in module.iter_funcs() {
            let entry_held = held_entry[fid.index()];
            let fi = fid.index();
            if block_in[fi][func.entry().index()] > entry_held {
                block_in[fi][func.entry().index()] = entry_held;
                changed = true;
            }
            for &bb in &rpo[fi] {
                let mut held = block_in[fi][bb.index()];
                if held >= INF {
                    continue;
                }
                for inst in &func.block(bb).insts {
                    match &inst.op {
                        Op::MutexLock(_) => held += 1,
                        Op::MutexUnlock(_) => held = held.saturating_sub(1),
                        Op::Call { func: callee, .. } if held_entry[callee.index()] > held => {
                            held_entry[callee.index()] = held;
                            changed = true;
                        }
                        Op::CallIndirect { table, .. } => {
                            for &callee in &module.tables[table.index()].funcs {
                                if held_entry[callee.index()] > held {
                                    held_entry[callee.index()] = held;
                                    changed = true;
                                }
                            }
                        }
                        Op::Br { then_bb, else_bb, .. } => {
                            for succ in [*then_bb, *else_bb] {
                                if block_in[fi][succ.index()] > held {
                                    block_in[fi][succ.index()] = held;
                                    changed = true;
                                }
                            }
                        }
                        Op::Jump(succ) if block_in[fi][succ.index()] > held => {
                            block_in[fi][succ.index()] = held;
                            changed = true;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    for b in branches {
        let fi = b.func.index();
        let func = module.func(b.func);
        let mut held = block_in[fi][b.block.index()];
        if held >= INF {
            held = 0; // unreachable branch
        } else {
            for inst in func.block(b.block).insts.iter().take(b.inst_index) {
                match &inst.op {
                    Op::MutexLock(_) => held += 1,
                    Op::MutexUnlock(_) => held = held.saturating_sub(1),
                    _ => {}
                }
            }
        }
        b.min_locks_held = held;
    }
}

/// Merges the categories arriving at a parameter from its call sites (or a
/// call result from multiple returns): unanimous sites keep their category
/// (instances are tracked per call site); mixed checkable categories fall
/// back to `partial`; any `none` poisons the merge.
fn merge_sites(cats: &[Category]) -> Category {
    let known: Vec<Category> = cats.iter().copied().filter(|&c| c != Category::Na).collect();
    if known.is_empty() {
        return Category::Na;
    }
    if known.contains(&Category::None) {
        return Category::None;
    }
    let first = known[0];
    if known.iter().all(|&c| c == first) {
        return first;
    }
    Category::Partial
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sites_rules() {
        use Category::*;
        assert_eq!(merge_sites(&[Shared, Shared]), Shared);
        assert_eq!(merge_sites(&[Shared, Na]), Shared);
        assert_eq!(merge_sites(&[Na, Na]), Na);
        assert_eq!(merge_sites(&[Shared, ThreadId]), Partial);
        assert_eq!(merge_sites(&[Shared, None]), None);
        assert_eq!(merge_sites(&[ThreadId, ThreadId]), ThreadId);
        assert_eq!(merge_sites(&[Partial, Shared]), Partial);
    }

    #[test]
    fn prov_merge() {
        let g = Prov::Global(GlobalId(0));
        assert_eq!(Prov::Unresolved.merge(g), g);
        assert_eq!(g.merge(g), g);
        assert_eq!(g.merge(Prov::Local), Prov::Unknown);
        assert_eq!(Prov::Unknown.merge(g), Prov::Unknown);
    }
}
