//! # bw-analysis — BLOCKWATCH static similarity analysis
//!
//! The paper's core contribution: a compile-time analysis that classifies
//! every conditional branch of an SPMD program into a *similarity category*
//! (Table I), by propagating operand categories through the SSA IR with the
//! rules of Table II until a fixpoint (Figure 3), and an instrumentation
//! planner that turns categories into concrete runtime checks.
//!
//! * [`Category`] / [`combine`] — the lattice and propagation rules.
//! * [`ModuleAnalysis`] — the interprocedural fixpoint, with a per-iteration
//!   trace (reproducing the paper's Table III).
//! * [`CheckPlan`] / [`AnalysisConfig`] — instrumentation decisions: which
//!   branches are checked, with which [`CheckKind`], using which witness
//!   values, including the paper's two optimizations (promotion of `none`
//!   branches to `partial` grouping, and skipping branches inside critical
//!   sections) plus the loop-nesting cutoff of six.
//!
//! # Examples
//!
//! Classify the four branches of the paper's Figure 1 example:
//!
//! ```
//! use bw_analysis::{Category, ModuleAnalysis};
//!
//! let module = bw_ir::frontend::compile(r#"
//!     tid_counter int id = 0;
//!     shared int im = 16;
//!     int gp[64];
//!     mutex l;
//!     @spmd func slave() {
//!         lock(l);
//!         var procid: int = fetch_add(id, 1);
//!         unlock(l);
//!         if (procid == 0) { output(0); }              // threadID
//!         var private: int = 0;
//!         for (var i: int = 0; i <= im - 1; i = i + 1) { // shared
//!             if (gp[procid] > im - 1) {               // none
//!                 private = 1;
//!             } else {
//!                 private = 0 - 1;
//!             }
//!             if (private > 0) { output(private); }    // partial
//!         }
//!     }
//! "#).unwrap();
//!
//! let analysis = ModuleAnalysis::run(&module);
//! let hist = analysis.category_histogram();
//! assert_eq!(hist.thread_id, 1);
//! assert_eq!(hist.shared, 1);
//! assert_eq!(hist.none, 1);
//! assert_eq!(hist.partial, 1);
//! ```

#![warn(missing_docs)]

mod analysis;
mod category;
mod checks;
mod parallel;

pub use analysis::{BranchInfo, CategoryHistogram, ModuleAnalysis};
pub use category::{combine, combine_all, combine_optimistic, Category, PackedCategory};
pub use checks::{
    AnalysisConfig, BranchCheck, CheckKind, CheckPlan, ConditionInfo, SkipReason, TidCheck,
};
