//! SCC-parallel similarity analysis.
//!
//! The sequential fixpoint ([`ModuleAnalysis::run`]) sweeps the whole
//! module until nothing changes. Its dependency structure is much sparser
//! than that: the category of a value depends only on its operands, call
//! arguments feeding a parameter, and callee returns feeding a call
//! result. This module condenses that interprocedural dependency graph
//! ([`bw_ir::ValueGraph`]) into its DAG of strongly connected components
//! and runs one small *local* fixpoint per SCC, scheduling SCCs across a
//! worker pool in dependency order: an SCC starts only once every SCC it
//! reads from has finished, so each local fixpoint sees exactly final
//! values for everything outside itself.
//!
//! State lives in two dense, globally-indexed tables — one byte per value
//! for the packed category bitset ([`PackedCategory`]) and four bytes for
//! packed pointer provenance — shared across workers as plain atomics with
//! relaxed ordering. The scheduler's ready-queue mutex and in-degree
//! counters provide the happens-before edges between an SCC's writers and
//! its dependents' readers.
//!
//! **Determinism.** The result is a function of the module alone, not of
//! the worker count or schedule: SCC membership and member order are
//! canonical (sorted global indices, dependencies-first topological
//! numbering), each local fixpoint only reads finalized predecessors or
//! its own members, and both lattices have order-independent joins. The
//! sequential analysis remains the oracle: `bw-gen`'s fuzz harness and the
//! parity suite cross-check [`ModuleAnalysis::divergence`] between the two
//! paths on every generated module and splash port.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

use bw_ir::{Condensation, FuncId, GlobalId, Module, Op, Type, ValueDef, ValueGraph, ValueId};

use crate::analysis::{finalize, ModuleAnalysis, ModuleFacts};
use crate::category::{Category, PackedCategory};

/// Packed pointer provenance: `0` unresolved, `1` local, `2` unknown,
/// `3 + g` global region `g`. Like the category bitset, one flat atomic
/// per value.
const PROV_UNRESOLVED: u32 = 0;
const PROV_LOCAL: u32 = 1;
const PROV_UNKNOWN: u32 = 2;
const PROV_GLOBAL_BASE: u32 = 3;

fn prov_global(g: GlobalId) -> u32 {
    PROV_GLOBAL_BASE + g.index() as u32
}

/// Join of the packed provenance lattice — mirrors `Prov::merge`.
fn prov_merge(a: u32, b: u32) -> u32 {
    if a == PROV_UNRESOLVED {
        b
    } else if b == PROV_UNRESOLVED || a == b {
        a
    } else {
        PROV_UNKNOWN
    }
}

pub(crate) fn run_parallel(module: &Module, workers: usize) -> ModuleAnalysis {
    let facts = ModuleFacts::new(module);
    let graph = ValueGraph::build(module);
    let cond = graph.condense();
    let analyzer = ParallelAnalyzer::new(module, &facts, &graph);
    analyzer.seed_provenance();

    let ncomps = cond.num_comps();
    let pool = effective_pool(workers, ncomps);
    let max_rounds = if pool <= 1 {
        // Degenerate pool: walk the components in topological order on
        // this thread. Identical results — the schedule never matters.
        let mut max_rounds = 0;
        for comp in &cond.comps {
            max_rounds = max_rounds.max(analyzer.process_comp(comp));
        }
        max_rounds
    } else {
        schedule(&analyzer, &cond, pool)
    };

    let value_cats = analyzer.unpack_cats();
    finalize(module, &facts.rpo, facts.branches, value_cats, max_rounds, Vec::new(), ncomps)
}

/// Worker-pool sizing, the `bw-fault` campaign idiom: `0` means one worker
/// per available core, and the pool never exceeds the job count.
fn effective_pool(workers: usize, njobs: usize) -> usize {
    let requested = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    requested.clamp(1, njobs.max(1))
}

/// Kahn-style DAG scheduling: every component starts with its in-degree as
/// a countdown; finishing a component decrements its dependents and pushes
/// the ones that hit zero onto a shared ready queue.
fn schedule(analyzer: &ParallelAnalyzer<'_>, cond: &Condensation, pool: usize) -> usize {
    let ncomps = cond.num_comps();
    let in_deg: Vec<AtomicU32> = cond.in_degrees().into_iter().map(AtomicU32::new).collect();
    let initial: VecDeque<u32> = (0..ncomps as u32)
        .filter(|&c| in_deg[c as usize].load(Ordering::Relaxed) == 0)
        .collect();
    let queue = Mutex::new(initial);
    let ready = Condvar::new();
    let done = AtomicUsize::new(0);
    let max_rounds = AtomicUsize::new(0);

    std::thread::scope(|s| {
        for _ in 0..pool {
            s.spawn(|| loop {
                let next = {
                    let mut q = queue.lock().expect("scheduler queue poisoned");
                    loop {
                        if let Some(c) = q.pop_front() {
                            break Some(c);
                        }
                        if done.load(Ordering::Acquire) == ncomps {
                            break None;
                        }
                        q = ready.wait(q).expect("scheduler queue poisoned");
                    }
                };
                let Some(c) = next else { return };
                let rounds = analyzer.process_comp(&cond.comps[c as usize]);
                max_rounds.fetch_max(rounds, Ordering::AcqRel);
                for &succ in &cond.comp_succs[c as usize] {
                    // AcqRel chains the happens-before edge through the
                    // last-finishing predecessor: its relaxed table writes
                    // are visible to whoever pops `succ`.
                    if in_deg[succ as usize].fetch_sub(1, Ordering::AcqRel) == 1 {
                        queue.lock().expect("scheduler queue poisoned").push_back(succ);
                        ready.notify_one();
                    }
                }
                if done.fetch_add(1, Ordering::AcqRel) + 1 == ncomps {
                    // Wake every idle worker for shutdown. Taking the lock
                    // first closes the check-then-wait window.
                    let _q = queue.lock().expect("scheduler queue poisoned");
                    ready.notify_all();
                }
            });
        }
    });

    max_rounds.load(Ordering::Acquire)
}

struct ParallelAnalyzer<'m> {
    module: &'m Module,
    facts: &'m ModuleFacts,
    graph: &'m ValueGraph,
    /// Packed category per value, globally indexed.
    cats: Vec<AtomicU8>,
    /// Packed provenance per value, globally indexed.
    provs: Vec<AtomicU32>,
    /// Global indices of the arguments feeding each parameter (empty for
    /// non-parameter values). Dense, like everything else here.
    param_args: Vec<Vec<u32>>,
    /// Global indices of each function's return-site operands.
    ret_values: Vec<Vec<u32>>,
}

impl<'m> ParallelAnalyzer<'m> {
    fn new(module: &'m Module, facts: &'m ModuleFacts, graph: &'m ValueGraph) -> Self {
        let n = graph.num_values();
        let cats = (0..n).map(|_| AtomicU8::new(PackedCategory::NA.bits())).collect();
        let provs = (0..n).map(|_| AtomicU32::new(PROV_UNRESOLVED)).collect();

        let mut param_args: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut ret_values: Vec<Vec<u32>> = vec![Vec::new(); module.funcs.len()];
        for (fid, func) in module.iter_funcs() {
            for (_, block) in func.iter_blocks() {
                if let Some(inst) = block.terminator() {
                    if let Op::Ret(Some(v)) = inst.op {
                        ret_values[fid.index()].push(graph.index(fid, v) as u32);
                    }
                }
                for inst in &block.insts {
                    let mut record = |callee: FuncId, args: &[ValueId]| {
                        let nparams = module.func(callee).params.len();
                        for (i, &arg) in args.iter().enumerate().take(nparams) {
                            let param = graph.index(callee, ValueId::from_index(i));
                            param_args[param].push(graph.index(fid, arg) as u32);
                        }
                    };
                    match &inst.op {
                        Op::Call { func: callee, args, .. } => record(*callee, args),
                        Op::CallIndirect { table, args, .. } => {
                            for &callee in &module.tables[table.index()].funcs {
                                record(callee, args);
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        ParallelAnalyzer { module, facts, graph, cats, provs, param_args, ret_values }
    }

    /// Seeds pointer-typed parameters to `Unknown` before any scheduling —
    /// the same pre-fixpoint seeding the sequential path performs.
    fn seed_provenance(&self) {
        for (fid, func) in self.module.iter_funcs() {
            for (i, ty) in func.params.iter().enumerate() {
                if *ty == Type::Ptr {
                    let g = self.graph.index(fid, ValueId::from_index(i));
                    self.provs[g].store(PROV_UNKNOWN, Ordering::Relaxed);
                }
            }
        }
    }

    fn cat(&self, g: u32) -> PackedCategory {
        PackedCategory::from_bits(self.cats[g as usize].load(Ordering::Relaxed))
    }

    fn prov(&self, g: u32) -> u32 {
        self.provs[g as usize].load(Ordering::Relaxed)
    }

    /// Runs the local fixpoint of one SCC: provenance first (categories
    /// read it), then categories, each iterated over the members in
    /// canonical order until stable. Returns the category round count.
    fn process_comp(&self, members: &[u32]) -> usize {
        loop {
            let mut changed = false;
            for &g in members {
                if let Some(new) = self.eval_prov(g) {
                    let old = self.prov(g);
                    let merged = prov_merge(old, new);
                    if merged != old {
                        self.provs[g as usize].store(merged, Ordering::Relaxed);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let mut rounds = 0;
        loop {
            rounds += 1;
            let mut changed = false;
            for &g in members {
                let new = self.eval_cat(g);
                // Figure 3 discipline: `NA` is never written back, so a
                // value keeps its last non-bottom category.
                if new != PackedCategory::NA && new != self.cat(g) {
                    self.cats[g as usize].store(new.bits(), Ordering::Relaxed);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            assert!(
                rounds <= members.len() + 10,
                "per-SCC similarity fixpoint failed to converge in {} rounds",
                members.len() + 10
            );
        }
        rounds
    }

    /// Provenance transfer of one value — mirrors the sequential
    /// `resolve_provenance` body. `None` means "no rule writes this value".
    fn eval_prov(&self, g: u32) -> Option<u32> {
        let (fid, vid) = self.graph.split(g as usize);
        let func = self.module.func(fid);
        let ValueDef::Inst { block, inst_index } = func.defs[vid.index()] else {
            return None; // parameter seeds are fixed up front
        };
        let inst = &func.block(block).insts[inst_index];
        let op_prov = |v: ValueId| self.prov(self.graph.index(fid, v) as u32);
        match &inst.op {
            Op::GlobalAddr(global) => Some(prov_global(*global)),
            Op::Gep { base, .. } => Some(op_prov(*base)),
            Op::Alloca { .. } => Some(PROV_LOCAL),
            Op::Phi { incomings, .. } => {
                let mut p = PROV_UNRESOLVED;
                for inc in incomings {
                    if inc.value == vid {
                        continue;
                    }
                    p = prov_merge(p, op_prov(inc.value));
                }
                Some(p)
            }
            Op::Call { .. } | Op::CallIndirect { .. } | Op::Load { .. } => {
                if inst.ty == Some(Type::Ptr) {
                    Some(PROV_UNKNOWN)
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    /// Category transfer of one value — the packed mirror of the
    /// sequential `visit` / `update_params` rules.
    fn eval_cat(&self, g: u32) -> PackedCategory {
        let (fid, vid) = self.graph.split(g as usize);
        let func = self.module.func(fid);
        let (block, inst_index) = match func.defs[vid.index()] {
            ValueDef::Param(_) => {
                // Call-site merge (Figure 2 "multiple instances" policy).
                return merge_sites_packed(
                    self.param_args[g as usize].iter().map(|&a| self.cat(a)),
                );
            }
            ValueDef::Inst { block, inst_index } => (block, inst_index),
        };
        let inst = &func.block(block).insts[inst_index];
        let cat = |v: ValueId| self.cat(self.graph.index(fid, v) as u32);
        match &inst.op {
            Op::Const(_) | Op::GlobalAddr(_) | Op::NumThreads => PackedCategory::SHARED,
            Op::ThreadId => PackedCategory::THREAD_ID,
            Op::Rand { .. } | Op::Alloca { .. } => PackedCategory::NONE,
            Op::AtomicFetchAdd { global, .. } => {
                if self.module.global(*global).tid_counter {
                    PackedCategory::THREAD_ID
                } else {
                    PackedCategory::NONE
                }
            }
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => {
                PackedCategory::combine_all([cat(*lhs), cat(*rhs)])
            }
            Op::Un { operand, .. } => cat(*operand),
            Op::Gep { base, offset } => PackedCategory::combine_all([cat(*base), cat(*offset)]),
            Op::Load { addr, .. } => {
                let p = self.prov(self.graph.index(fid, *addr) as u32);
                if p == PROV_UNRESOLVED {
                    PackedCategory::NA
                } else if p >= PROV_GLOBAL_BASE
                    && self
                        .module
                        .global(GlobalId::from_index((p - PROV_GLOBAL_BASE) as usize))
                        .shared
                {
                    match cat(*addr) {
                        PackedCategory::NA => PackedCategory::NA,
                        PackedCategory::SHARED => PackedCategory::SHARED,
                        // One of the elements of a shared array: groupable
                        // by value, hence partial.
                        _ => PackedCategory::PARTIAL,
                    }
                } else {
                    PackedCategory::NONE
                }
            }
            Op::Phi { incomings, .. } => {
                let resolved = &self.facts.resolved[fid.index()];
                let target = resolved[vid.index()];
                if target != vid {
                    return cat(target);
                }
                let latches = self.facts.loop_headers[fid.index()].get(&block);
                let is_loop_phi =
                    latches.is_some_and(|l| incomings.iter().any(|inc| l.contains(&inc.block)));
                let combined = PackedCategory::combine_optimistic(
                    incomings
                        .iter()
                        .filter(|inc| resolved[inc.value.index()] != vid)
                        .map(|inc| cat(inc.value)),
                );
                if !is_loop_phi && combined == PackedCategory::SHARED {
                    // If-else convergence merging distinct shared values →
                    // partial (the paper's deviation from Table II).
                    let mut distinct: Vec<ValueId> = incomings
                        .iter()
                        .map(|inc| resolved[inc.value.index()])
                        .filter(|&v| v != vid)
                        .collect();
                    distinct.sort_unstable();
                    distinct.dedup();
                    if distinct.len() >= 2 {
                        return PackedCategory::PARTIAL;
                    }
                }
                combined
            }
            Op::Call { func: callee, .. } => self.callee_result(&[*callee]),
            Op::CallIndirect { table, .. } => {
                self.callee_result(&self.module.tables[table.index()].funcs)
            }
            // No result (unreachable here — such instructions define no
            // value, so no global index points at them).
            _ => PackedCategory::NA,
        }
    }

    fn callee_result(&self, callees: &[FuncId]) -> PackedCategory {
        let mut sites = 0usize;
        let mut combined = PackedCategory::NA;
        for &callee in callees {
            for &rv in &self.ret_values[callee.index()] {
                sites += 1;
                let c = self.cat(rv);
                if c != PackedCategory::NA {
                    combined = if combined == PackedCategory::NA {
                        c
                    } else {
                        combined.combine(c)
                    };
                }
            }
        }
        match combined {
            PackedCategory::NA | PackedCategory::NONE => combined,
            c if sites <= 1 && callees.len() <= 1 => c,
            // Result is "one of several" values: groupable at best.
            _ => PackedCategory::PARTIAL,
        }
    }

    fn unpack_cats(&self) -> Vec<Vec<Category>> {
        self.module
            .iter_funcs()
            .map(|(fid, func)| {
                (0..func.num_values())
                    .map(|v| self.cat(self.graph.index(fid, ValueId::from_index(v)) as u32).unpack())
                    .collect()
            })
            .collect()
    }
}

/// Packed mirror of the sequential `merge_sites`: unanimous sites keep
/// their category, mixed checkable categories fall back to `partial`, any
/// `none` poisons the merge, and an all-`NA` (or empty) site set is `NA`.
fn merge_sites_packed(cats: impl IntoIterator<Item = PackedCategory>) -> PackedCategory {
    let mut first: Option<PackedCategory> = None;
    let mut unanimous = true;
    for c in cats {
        if c == PackedCategory::NA {
            continue;
        }
        if c == PackedCategory::NONE {
            return PackedCategory::NONE;
        }
        match first {
            None => first = Some(c),
            Some(f) if f == c => {}
            Some(_) => unanimous = false,
        }
    }
    match first {
        None => PackedCategory::NA,
        Some(f) if unanimous => f,
        Some(_) => PackedCategory::PARTIAL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prov_merge_mirrors_enum() {
        let g0 = prov_global(GlobalId(0));
        assert_eq!(prov_merge(PROV_UNRESOLVED, g0), g0);
        assert_eq!(prov_merge(g0, PROV_UNRESOLVED), g0);
        assert_eq!(prov_merge(g0, g0), g0);
        assert_eq!(prov_merge(g0, PROV_LOCAL), PROV_UNKNOWN);
        assert_eq!(prov_merge(PROV_UNKNOWN, g0), PROV_UNKNOWN);
    }

    #[test]
    fn merge_sites_packed_rules() {
        use PackedCategory as P;
        assert_eq!(merge_sites_packed([P::SHARED, P::SHARED]), P::SHARED);
        assert_eq!(merge_sites_packed([P::SHARED, P::NA]), P::SHARED);
        assert_eq!(merge_sites_packed([P::NA, P::NA]), P::NA);
        assert_eq!(merge_sites_packed([]), P::NA);
        assert_eq!(merge_sites_packed([P::SHARED, P::THREAD_ID]), P::PARTIAL);
        assert_eq!(merge_sites_packed([P::SHARED, P::NONE]), P::NONE);
        assert_eq!(merge_sites_packed([P::THREAD_ID, P::THREAD_ID]), P::THREAD_ID);
        assert_eq!(merge_sites_packed([P::PARTIAL, P::SHARED]), P::PARTIAL);
    }

    #[test]
    fn effective_pool_sizing() {
        assert_eq!(effective_pool(4, 100), 4);
        assert_eq!(effective_pool(8, 2), 2);
        assert_eq!(effective_pool(1, 0), 1);
        assert!(effective_pool(0, 64) >= 1);
    }
}
