//! Prometheus text-format exposition (stdlib only).
//!
//! [`TelemetrySnapshot::to_prometheus`] renders a snapshot in the
//! Prometheus text exposition format (version 0.0.4): one `# TYPE` line
//! per metric family, `bw_`-prefixed sanitized names, and power-of-two
//! histogram buckets mapped onto cumulative `_bucket{le="…"}` series
//! (the buckets' inclusive upper bounds translate exactly to `le`).
//!
//! Per-shard metric names (`…shard.<i>.…`) become a `shard="<i>"` label
//! on a single family instead of N distinct families, so dashboards can
//! aggregate across shards without regex gymnastics.

use std::fmt::Write as _;

use crate::metrics::HistogramSnapshot;
use crate::snapshot::TelemetrySnapshot;

/// Maps `name` into the Prometheus metric-name alphabet
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and
/// a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value per the text format: backslash, double quote
/// and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Splits a metric name into its Prometheus family name and labels:
/// a `shard.<digits>.` path segment is lifted out into a `shard` label,
/// everything else is sanitized into the family name.
fn family_of(name: &str) -> (String, Vec<(String, String)>) {
    let segments: Vec<&str> = name.split('.').collect();
    let mut kept: Vec<&str> = Vec::with_capacity(segments.len());
    let mut labels = Vec::new();
    let mut i = 0;
    while i < segments.len() {
        let seg = segments[i];
        let next_is_index = i + 1 < segments.len()
            && !segments[i + 1].is_empty()
            && segments[i + 1].bytes().all(|b| b.is_ascii_digit());
        if seg == "shard" && next_is_index && labels.is_empty() {
            kept.push(seg);
            labels.push(("shard".to_string(), segments[i + 1].to_string()));
            i += 2;
        } else {
            kept.push(seg);
            i += 1;
        }
    }
    let family = format!("bw_{}", sanitize_metric_name(&kept.join("_")));
    (family, labels)
}

fn write_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}=\"{}\"", k, escape_label_value(v));
    }
    out.push('}');
}

fn write_scalar_family(
    out: &mut String,
    kind: &str,
    entries: &[(String, u64)],
    seen: &mut Vec<String>,
) {
    for (name, value) in entries {
        let (family, labels) = family_of(name);
        if !seen.contains(&family) {
            let _ = writeln!(out, "# TYPE {family} {kind}");
            seen.push(family.clone());
        }
        out.push_str(&family);
        write_labels(out, &labels);
        let _ = writeln!(out, " {value}");
    }
}

fn write_histogram(out: &mut String, name: &str, h: &HistogramSnapshot, seen: &mut Vec<String>) {
    let (family, labels) = family_of(name);
    if !seen.contains(&family) {
        let _ = writeln!(out, "# TYPE {family} histogram");
        seen.push(family.clone());
    }
    let mut cum = 0u64;
    for &(bound, n) in &h.buckets {
        cum += n;
        if bound == u64::MAX {
            // Collapses into the +Inf bucket below.
            continue;
        }
        let mut all = labels.clone();
        all.push(("le".to_string(), bound.to_string()));
        let _ = write!(out, "{family}_bucket");
        write_labels(out, &all);
        let _ = writeln!(out, " {cum}");
    }
    let mut inf = labels.clone();
    inf.push(("le".to_string(), "+Inf".to_string()));
    let _ = write!(out, "{family}_bucket");
    write_labels(out, &inf);
    let _ = writeln!(out, " {}", h.count);
    let _ = write!(out, "{family}_sum");
    write_labels(out, &labels);
    let _ = writeln!(out, " {}", h.sum);
    let _ = write!(out, "{family}_count");
    write_labels(out, &labels);
    let _ = writeln!(out, " {}", h.count);
}

impl TelemetrySnapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (stdlib only; see the module docs for the name/label mapping).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut seen: Vec<String> = Vec::new();
        write_scalar_family(&mut out, "counter", self.counters(), &mut seen);
        write_scalar_family(&mut out, "gauge", self.gauges(), &mut seen);
        for (name, h) in self.histograms() {
            write_histogram(&mut out, name, h, &mut seen);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Histogram;

    #[test]
    fn names_are_sanitized_into_the_prometheus_alphabet() {
        assert_eq!(sanitize_metric_name("live.engine.runs"), "live_engine_runs");
        assert_eq!(sanitize_metric_name("weird name-1"), "weird_name_1");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn label_values_escape_quotes_backslashes_and_newlines() {
        assert_eq!(escape_label_value(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
    }

    #[test]
    fn counters_and_gauges_render_with_type_lines() {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("live.campaign.completed", 42);
        s.push_gauge("live.campaign.total", 100);
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE bw_live_campaign_completed counter\n"));
        assert!(text.contains("bw_live_campaign_completed 42\n"));
        assert!(text.contains("# TYPE bw_live_campaign_total gauge\n"));
        assert!(text.contains("bw_live_campaign_total 100\n"));
    }

    #[test]
    fn shard_indices_become_labels_on_one_family() {
        let mut s = TelemetrySnapshot::new();
        s.push_gauge("live.monitor.shard.0.queue_depth", 3);
        s.push_gauge("live.monitor.shard.11.queue_depth", 9);
        let text = s.to_prometheus();
        // One TYPE line, two labelled series.
        assert_eq!(
            text.matches("# TYPE bw_live_monitor_shard_queue_depth gauge").count(),
            1
        );
        assert!(text.contains("bw_live_monitor_shard_queue_depth{shard=\"0\"} 3\n"));
        assert!(text.contains("bw_live_monitor_shard_queue_depth{shard=\"11\"} 9\n"));
    }

    #[test]
    fn histograms_render_cumulative_le_buckets() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5] {
            h.observe(v);
        }
        let mut s = TelemetrySnapshot::new();
        s.push_histogram("campaign.injection_us", h.snapshot());
        let text = s.to_prometheus();
        assert!(text.contains("# TYPE bw_campaign_injection_us histogram\n"));
        assert!(text.contains("bw_campaign_injection_us_bucket{le=\"0\"} 1\n"));
        assert!(text.contains("bw_campaign_injection_us_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("bw_campaign_injection_us_bucket{le=\"7\"} 4\n"));
        assert!(text.contains("bw_campaign_injection_us_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("bw_campaign_injection_us_sum 7\n"));
        assert!(text.contains("bw_campaign_injection_us_count 4\n"));
    }

    #[test]
    fn the_top_bucket_folds_into_inf() {
        let h = Histogram::new();
        h.observe(u64::MAX);
        let mut s = TelemetrySnapshot::new();
        s.push_histogram("wide", h.snapshot());
        let text = s.to_prometheus();
        assert!(text.contains("bw_wide_bucket{le=\"+Inf\"} 1\n"));
        assert!(!text.contains(&format!("le=\"{}\"", u64::MAX)));
    }
}
