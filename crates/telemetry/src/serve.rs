//! A minimal stdlib HTTP endpoint serving Prometheus exposition.
//!
//! [`MetricsServer::bind`] spawns one background thread around a
//! non-blocking [`TcpListener`]: `GET /metrics` (or `/`) answers with
//! `registry.snapshot().to_prometheus()`, anything else gets a 404.
//! Connections are served inline, one at a time — scrapers poll on the
//! order of seconds, so a single accept loop is plenty, and refusing to
//! pull in an HTTP stack keeps the workspace dependency-free.
//!
//! The server reads the registry only; it can never perturb results, so
//! scraping a deterministic run mid-flight is always safe.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use crate::registry::MetricRegistry;

/// How long the accept loop naps when idle before re-checking for
/// connections or shutdown.
const ACCEPT_POLL: Duration = Duration::from_millis(20);

/// A background `/metrics` endpoint over `registry` (see module docs).
#[derive(Debug)]
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Binds `addr` (e.g. `"127.0.0.1:9184"`; port 0 picks a free one)
    /// and starts serving `registry`.
    pub fn bind(addr: &str, registry: Arc<MetricRegistry>) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("bw-metrics".to_string())
            .spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let _ = serve_connection(stream, &registry);
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        if thread_stop.load(Ordering::Acquire) {
                            break;
                        }
                        thread::sleep(ACCEPT_POLL);
                    }
                    Err(_) => {
                        if thread_stop.load(Ordering::Acquire) {
                            break;
                        }
                        thread::sleep(ACCEPT_POLL);
                    }
                }
            })
            .expect("spawn bw-metrics thread");
        Ok(MetricsServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection(mut stream: TcpStream, registry: &MetricRegistry) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    // Read the request head (best effort — a scraper's GET fits in one
    // small read; stop at the blank line or a 4 KiB cap).
    let mut head = Vec::with_capacity(512);
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 4096 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&head);
    let path = request
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let (status, body) = if path == "/metrics" || path == "/" {
        ("200 OK", registry.snapshot().to_prometheus())
    } else {
        ("404 Not Found", String::from("not found\n"))
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect to metrics server");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_text_and_404s_elsewhere() {
        let registry = Arc::new(MetricRegistry::new());
        registry.counter("live.test.requests").add(5);
        let server =
            MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind metrics");
        let addr = server.local_addr();

        let ok = http_get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("text/plain; version=0.0.4"));
        assert!(ok.contains("bw_live_test_requests 5"));

        let missing = http_get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        server.shutdown();
    }

    #[test]
    fn concurrent_scrapes_survive_registry_churn() {
        let registry = Arc::new(MetricRegistry::new());
        registry.counter("live.churn.base").add(1);
        let server =
            MetricsServer::bind("127.0.0.1:0", Arc::clone(&registry)).expect("bind metrics");
        let addr = server.local_addr();

        // A writer thread keeps registering and bumping counters while
        // several scrapers pull /metrics: every response must be a
        // complete 200 with a consistent snapshot (the accept loop takes
        // each snapshot atomically, churn or not).
        let churn_stop = Arc::new(AtomicBool::new(false));
        let churner = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&churn_stop);
            thread::spawn(move || {
                let mut i = 0u64;
                while !stop.load(Ordering::Acquire) {
                    registry.counter(&format!("live.churn.c{}", i % 64)).add(1);
                    i += 1;
                }
            })
        };
        thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..5 {
                        let response = http_get(addr, "/metrics");
                        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
                        assert!(response.contains("bw_live_churn_base 1"), "{response}");
                        // The head promises the exact body length it sent.
                        let body = response.split("\r\n\r\n").nth(1).unwrap_or("");
                        let declared: usize = response
                            .lines()
                            .find_map(|l| l.strip_prefix("Content-Length: "))
                            .and_then(|n| n.trim().parse().ok())
                            .expect("Content-Length header");
                        assert_eq!(body.len(), declared, "truncated scrape");
                    }
                });
            }
        });
        churn_stop.store(true, Ordering::Release);
        churner.join().unwrap();
        server.shutdown();
    }
}
