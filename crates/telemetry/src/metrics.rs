//! Lock-free metric primitives: relaxed-atomic counters, gauges and
//! fixed-bucket histograms.
//!
//! All three types are plain shared-memory cells updated with
//! `Ordering::Relaxed`: no update ever synchronizes with another, so a
//! recording site costs one uncontended atomic RMW (or less — see the
//! `tm_*` macros, which compile to nothing without the `telemetry`
//! feature). Reads are racy by design; a snapshot taken while writers are
//! live is a consistent-enough diagnostic, and a snapshot taken after the
//! writers joined is exact.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (usable in `static` and `const` contexts).
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / high-water cell.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge (usable in `static` and `const` contexts).
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if it is larger (relaxed high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two of `u64`
/// plus one for zero/one.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket (power-of-two) histogram of `u64` samples.
///
/// Bucket `i` counts samples whose value needs `i` significant bits
/// (bucket 0 holds the value 0, bucket 1 holds 1, bucket 2 holds 2–3,
/// bucket 3 holds 4–7, …). The layout is fixed at compile time so
/// recording never allocates and merging is index-wise addition.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram (usable in `static` and `const` contexts).
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index of `value`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Inclusive upper bound of bucket `index` (`u64::MAX` for the last).
    pub fn bucket_bound(index: usize) -> u64 {
        match index {
            0 => 0,
            64.. => u64::MAX,
            _ => (1u64 << index) - 1,
        }
    }

    /// Records one sample (three relaxed RMWs, no allocation).
    #[inline]
    pub fn observe(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state out as plain data.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((Self::bucket_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data copy of a [`Histogram`]: only non-empty buckets, as
/// `(inclusive upper bound, sample count)` pairs in increasing bound
/// order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping is the caller's concern).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Non-empty buckets as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`, clamped) by linear
    /// interpolation inside the power-of-two buckets.
    ///
    /// The true sample values are gone — only bucket counts survive — so
    /// the estimate assumes samples are spread uniformly across each
    /// bucket's `[lower, upper]` range. The error is bounded by the bucket
    /// width (a factor of two), which is plenty for order-of-magnitude
    /// latency reporting. The top non-empty bucket is clamped to the exact
    /// recorded `max`, so `quantile(1.0) == max`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0.0;
        for &(bound, n) in &self.buckets {
            let n = n as f64;
            if cum + n >= target {
                let lower = Self::bucket_lower(bound) as f64;
                let upper = bound.min(self.max) as f64;
                let frac = ((target - cum) / n).clamp(0.0, 1.0);
                return (lower + frac * (upper - lower).max(0.0)).min(self.max as f64);
            }
            cum += n;
        }
        self.max as f64
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p90(&self) -> f64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Inclusive lower edge of the bucket whose inclusive upper bound is
    /// `bound` (the buckets tile `u64`: 0, 1, 2–3, 4–7, …).
    fn bucket_lower(bound: u64) -> u64 {
        match bound {
            0 => 0,
            u64::MAX => 1u64 << 63,
            b => b.div_ceil(2),
        }
    }

    /// Encodes the non-empty buckets as `"bound:count;…"` — a flat-JSON
    /// friendly string so histogram trace records can carry their shape
    /// through the scalar-only [`crate::parse_flat_object`] parser.
    pub fn encode_buckets(&self) -> String {
        let mut out = String::new();
        for (i, (bound, n)) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            out.push_str(&format!("{bound}:{n}"));
        }
        out
    }

    /// Parses a [`HistogramSnapshot::encode_buckets`] string back into
    /// `(bound, count)` pairs. Malformed entries are skipped rather than
    /// failing the whole record — trace readers are best-effort.
    pub fn decode_buckets(s: &str) -> Vec<(u64, u64)> {
        s.split(';')
            .filter_map(|pair| {
                let (bound, n) = pair.split_once(':')?;
                Some((bound.parse().ok()?, n.parse().ok()?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_tracks_high_water() {
        let g = Gauge::new();
        g.record_max(3);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);
        g.set(2);
        assert_eq!(g.get(), 2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_bound(0), 0);
        assert_eq!(Histogram::bucket_bound(3), 7);
        assert_eq!(Histogram::bucket_bound(64), u64::MAX);
    }

    #[test]
    fn histogram_snapshot_is_exact_after_observations() {
        let h = Histogram::new();
        for v in [0, 1, 1, 5, 900] {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 907);
        assert_eq!(s.max, 900);
        assert_eq!(s.buckets, vec![(0, 1), (1, 2), (7, 1), (1023, 1)]);
        assert!((s.mean() - 181.4).abs() < 1e-9);
    }

    #[test]
    fn counters_are_safe_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }
}
