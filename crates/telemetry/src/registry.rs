//! The named, process-wide metric registry live observability reads from.
//!
//! A [`MetricRegistry`] is a directory of shared metric cells: callers ask
//! for a [`Counter`] / [`Gauge`] / [`Histogram`] by name and get an `Arc`
//! to the same cell every time, so the monitor shards, campaign workers
//! and engines can all bump "their" metric without threading handles
//! through configs (several of which are `Hash + Eq` and cannot carry
//! one). Subsystems that already own their atomics register a
//! [`MetricSource`] instead; [`MetricRegistry::snapshot`] folds both
//! worlds into one [`TelemetrySnapshot`].
//!
//! Registry lookups take a `Mutex` and are meant for *cold* paths —
//! resolve the `Arc` once at spawn/run start, then update the lock-free
//! cell from the hot path. Registry contents are process-cumulative
//! (Prometheus semantics): counters keep growing across runs, which is
//! exactly what the [`crate::Sampler`] needs to turn them into rates.
//!
//! The registry feeds the *live* side only (trace `sample` records and
//! the `/metrics` endpoint); per-run result snapshots never read from it,
//! so `deterministic_part()` comparisons stay byte-identical whether or
//! not anything is watching.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::TelemetrySnapshot;

/// A subsystem that owns its metric cells and can be polled for a
/// point-in-time snapshot (names fully prefixed by the source).
pub trait MetricSource: Send + Sync {
    /// Reads the source's current metrics.
    fn collect(&self) -> TelemetrySnapshot;
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    sources: BTreeMap<String, Arc<dyn MetricSource>>,
}

/// A named directory of shared metric cells plus pollable sources.
#[derive(Default)]
pub struct MetricRegistry {
    inner: Mutex<Inner>,
}

impl MetricRegistry {
    /// An empty registry (tests and embedders; most callers want
    /// [`MetricRegistry::global`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// The process-wide registry every instrumented layer registers into.
    pub fn global() -> Arc<MetricRegistry> {
        static GLOBAL: OnceLock<Arc<MetricRegistry>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| Arc::new(MetricRegistry::new())))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// The counter named `name`, creating it (at zero) on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        Arc::clone(
            self.lock()
                .counters
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name`, creating it (at zero) on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        Arc::clone(
            self.lock()
                .gauges
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name`, creating it (empty) on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        Arc::clone(
            self.lock()
                .histograms
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new())),
        )
    }

    /// Registers (or replaces — latest wins) a pollable source under
    /// `name`. The name identifies the registration, not the metrics:
    /// collected snapshots keep their own fully-prefixed metric names.
    pub fn register_source(&self, name: &str, source: Arc<dyn MetricSource>) {
        self.lock().sources.insert(name.to_string(), source);
    }

    /// Removes the source registered under `name`, if any.
    pub fn unregister_source(&self, name: &str) {
        self.lock().sources.remove(name);
    }

    /// Reads everything: owned cells in name order, then each source's
    /// snapshot merged in. Sources are collected *outside* the registry
    /// lock so a slow `collect` never blocks metric lookups.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let (counters, gauges, histograms, sources) = {
            let inner = self.lock();
            (
                inner.counters.clone(),
                inner.gauges.clone(),
                inner.histograms.clone(),
                inner.sources.clone(),
            )
        };
        let mut s = TelemetrySnapshot::new();
        for (name, c) in &counters {
            s.push_counter(name.clone(), c.get());
        }
        for (name, g) in &gauges {
            s.push_gauge(name.clone(), g.get());
        }
        for (name, h) in &histograms {
            s.push_histogram(name.clone(), h.snapshot());
        }
        for source in sources.values() {
            s.merge(&source.collect());
        }
        s
    }
}

impl fmt::Debug for MetricRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.lock();
        f.debug_struct("MetricRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .field("sources", &inner.sources.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_resolves_to_the_same_cell() {
        let reg = MetricRegistry::new();
        let a = reg.counter("live.x");
        let b = reg.counter("live.x");
        a.add(3);
        b.add(4);
        assert_eq!(reg.counter("live.x").get(), 7);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn snapshot_reads_cells_in_name_order() {
        let reg = MetricRegistry::new();
        reg.counter("live.b").add(2);
        reg.counter("live.a").inc();
        reg.gauge("live.depth").set(5);
        reg.histogram("live.lat").observe(9);
        let s = reg.snapshot();
        let names: Vec<&str> = s.counters().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["live.a", "live.b"]);
        assert_eq!(s.gauge("live.depth"), Some(5));
        assert_eq!(s.histogram("live.lat").unwrap().count, 1);
    }

    #[test]
    fn sources_merge_and_replace() {
        struct Fixed(u64);
        impl MetricSource for Fixed {
            fn collect(&self) -> TelemetrySnapshot {
                let mut s = TelemetrySnapshot::new();
                s.push_counter("live.src.events", self.0);
                s
            }
        }
        let reg = MetricRegistry::new();
        reg.register_source("src", Arc::new(Fixed(10)));
        assert_eq!(reg.snapshot().counter("live.src.events"), Some(10));
        // Latest registration wins.
        reg.register_source("src", Arc::new(Fixed(3)));
        assert_eq!(reg.snapshot().counter("live.src.events"), Some(3));
        reg.unregister_source("src");
        assert!(reg.snapshot().counter("live.src.events").is_none());
    }

    #[test]
    fn global_is_one_registry() {
        let a = MetricRegistry::global();
        let b = MetricRegistry::global();
        assert!(Arc::ptr_eq(&a, &b));
    }
}
