//! Causal execution tracing: the process-global span sink and the flat
//! `tspan` record vocabulary.
//!
//! Several of the structs a trace would naturally hang off are `Hash +
//! Eq + Serialize` configs (`ExecConfig`, `CampaignConfig`) that cannot
//! carry a recorder, and the `Engine` trait is object-safe with a fixed
//! signature — so, like [`crate::MetricRegistry::global`], the span sink
//! is process-global: `--trace-spans` installs the run's
//! [`JsonlRecorder`](crate::JsonlRecorder) with [`set_trace_sink`],
//! instrumented layers check [`tracing_active`] (one relaxed atomic
//! load) and resolve the `Arc` once per run with [`trace_sink`], then
//! emit `tspan` records through the ordinary [`Recorder`] path.
//!
//! ## Record schema
//!
//! Every record is one flat JSONL object with `ev:"tspan"` plus:
//!
//! * `kind` — `"span"` (an interval), `"instant"` (a point), or
//!   `"flow_start"` / `"flow_end"` (the two ends of a causal arrow,
//!   paired by `flow`);
//! * `dom` — the time domain: `"cyc"` (deterministic simulated cycles)
//!   or `"us"` (wall-clock microseconds). The two are never compared;
//!   `bw timeline --chrome` exports them as separate processes;
//! * `track` — the lane the record belongs to (`t<tid>` for SPMD
//!   threads, `shard<i>` for monitor shards, `w<wid>` for campaign
//!   workers, `main` for pipeline stages);
//! * `cat` — the span category (`barrier_phase`, `lock_wait`,
//!   `lock_hold`, `queue_wait`, `flush_batch`, `stage`, …);
//! * `name`, `ts`, `dur` — label, start timestamp and duration in the
//!   record's own domain — plus any caller extras (per-phase `steps` /
//!   `events` counts, lock ids, batch sizes).
//!
//! Records additionally carry every field of the enclosing
//! [`TraceScope`]s (campaigns push `inj` / `wid` so one trace file keeps
//! per-injection spans separable).
//!
//! ## Determinism contract
//!
//! Tracing is observability-only by construction: the sink is written
//! to, never read; nothing here flows into a [`TelemetrySnapshot`]
//! (crate::TelemetrySnapshot), a verdict or a campaign record, and with
//! the `telemetry` feature off every function in this module is an
//! inert no-op. Sim-engine spans are timestamped in deterministic
//! cycles, so even the trace itself is reproducible for a fixed seed
//! (modulo the recorder's `seq`/`t_us` envelope).

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::Instant;

use crate::json::Value;
use crate::recorder::Recorder;

/// The `ev` name of every trace record.
pub const TRACE_EVENT: &str = "tspan";

/// Fast-path flag mirroring "is a sink installed" (the lock is only for
/// the `Arc` swap itself).
static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Installs (or, with `None`, removes) the process-global span sink.
/// A no-op without the `telemetry` feature.
pub fn set_trace_sink(sink: Option<Arc<dyn Recorder>>) {
    if !crate::ENABLED {
        return;
    }
    // Pin the wall epoch no later than sink installation so every
    // wall-clock lane starts near zero.
    let _ = EPOCH.get_or_init(Instant::now);
    let mut guard = SINK.write().unwrap_or_else(|e| e.into_inner());
    ACTIVE.store(sink.is_some(), Ordering::Release);
    *guard = sink;
}

/// Microseconds since the process-wide trace epoch (pinned at the first
/// [`set_trace_sink`] install). Every wall-clock (`dom:"us"`) lane —
/// real-engine workers, monitor shards, campaign stages — shares this
/// origin so their spans line up on one timeline.
pub fn wall_now_us() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_micros() as u64
}

/// Whether a span sink is currently installed. One atomic load — cheap
/// enough to gate per-run (not per-event) setup.
#[inline]
pub fn tracing_active() -> bool {
    crate::ENABLED && ACTIVE.load(Ordering::Acquire)
}

/// The current span sink, if any. Resolve once per run and emit against
/// the returned `Arc`; re-reading per event would take the lock hot.
pub fn trace_sink() -> Option<Arc<dyn Recorder>> {
    if !tracing_active() {
        return None;
    }
    SINK.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// The timestamp domain of a trace record. Spans from the deterministic
/// simulator carry cycle counts; everything timed against the OS clock
/// carries microseconds. The domains are never mixed on one lane.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimeDomain {
    /// Deterministic simulated machine cycles.
    Cycles,
    /// Wall-clock microseconds.
    WallUs,
}

impl TimeDomain {
    /// The `dom` field tag (`"cyc"` / `"us"`).
    pub fn tag(self) -> &'static str {
        match self {
            TimeDomain::Cycles => "cyc",
            TimeDomain::WallUs => "us",
        }
    }
}

thread_local! {
    static SCOPE: RefCell<Vec<(String, Value)>> = const { RefCell::new(Vec::new()) };
}

/// An RAII bundle of context fields attached to every trace record
/// emitted from this thread while the scope lives — e.g. a campaign
/// worker pushes `inj` / `wid` around each injection so one trace file
/// keeps thousands of injections separable. Scopes nest; fields pop in
/// LIFO order on drop. Inert without the `telemetry` feature.
#[derive(Debug)]
pub struct TraceScope {
    pushed: usize,
}

impl TraceScope {
    /// Pushes `fields` onto this thread's scope stack.
    pub fn enter(fields: &[(&str, Value)]) -> TraceScope {
        if !crate::ENABLED {
            return TraceScope { pushed: 0 };
        }
        SCOPE.with(|s| {
            s.borrow_mut()
                .extend(fields.iter().map(|(k, v)| (k.to_string(), v.clone())))
        });
        TraceScope { pushed: fields.len() }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        if self.pushed > 0 {
            SCOPE.with(|s| {
                let mut stack = s.borrow_mut();
                let keep = stack.len().saturating_sub(self.pushed);
                stack.truncate(keep);
            });
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn record(
    rec: &dyn Recorder,
    kind: &str,
    dom: TimeDomain,
    track: &str,
    cat: &str,
    name: &str,
    ts: u64,
    tail: &[(&str, Value)],
    extra: &[(&str, Value)],
) {
    if !crate::ENABLED {
        return;
    }
    let scope: Vec<(String, Value)> = SCOPE.with(|s| s.borrow().clone());
    let mut fields = Vec::with_capacity(6 + tail.len() + extra.len() + scope.len());
    fields.push(("kind", Value::from(kind)));
    fields.push(("dom", Value::from(dom.tag())));
    fields.push(("track", Value::from(track)));
    fields.push(("cat", Value::from(cat)));
    fields.push(("name", Value::from(name)));
    fields.push(("ts", Value::U64(ts)));
    fields.extend(tail.iter().map(|(k, v)| (*k, v.clone())));
    fields.extend(extra.iter().map(|(k, v)| (*k, v.clone())));
    let scoped: Vec<(&str, Value)> =
        fields.into_iter().chain(scope.iter().map(|(k, v)| (k.as_str(), v.clone()))).collect();
    rec.record(TRACE_EVENT, &scoped);
}

/// Emits one interval (`kind:"span"`) record: `[ts, ts + dur)` on lane
/// `track`, in `dom` units, with any caller `extra` fields appended.
#[allow(clippy::too_many_arguments)]
pub fn record_span(
    rec: &dyn Recorder,
    dom: TimeDomain,
    track: &str,
    cat: &str,
    name: &str,
    ts: u64,
    dur: u64,
    extra: &[(&str, Value)],
) {
    record(rec, "span", dom, track, cat, name, ts, &[("dur", Value::U64(dur))], extra);
}

/// Emits one point-in-time (`kind:"instant"`) record.
pub fn record_instant(
    rec: &dyn Recorder,
    dom: TimeDomain,
    track: &str,
    cat: &str,
    name: &str,
    ts: u64,
    extra: &[(&str, Value)],
) {
    record(rec, "instant", dom, track, cat, name, ts, &[], extra);
}

/// Emits one end of a causal arrow: `start = true` for the source
/// (e.g. the deviant thread's branch event), `false` for the target
/// (the monitor verdict that flagged it). The two ends pair by `flow`.
#[allow(clippy::too_many_arguments)]
pub fn record_flow(
    rec: &dyn Recorder,
    dom: TimeDomain,
    track: &str,
    cat: &str,
    name: &str,
    ts: u64,
    flow: u64,
    start: bool,
    extra: &[(&str, Value)],
) {
    let kind = if start { "flow_start" } else { "flow_end" };
    record(rec, kind, dom, track, cat, name, ts, &[("flow", Value::U64(flow))], extra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::Mutex;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lines(buf: &SharedBuf) -> Vec<Vec<(String, Value)>> {
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| crate::parse_flat_object(l).expect("valid JSONL"))
            .collect()
    }

    fn field<'a>(rec: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
        rec.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    #[test]
    fn sink_toggle_matches_the_feature() {
        // Isolated from other tests: only asserts the invariant that an
        // installed sink reports active exactly when the feature is on.
        let rec = Arc::new(crate::JsonlRecorder::new(Box::new(SharedBuf::default())));
        set_trace_sink(Some(rec));
        assert_eq!(tracing_active(), crate::ENABLED);
        assert_eq!(trace_sink().is_some(), crate::ENABLED);
        set_trace_sink(None);
        assert!(!tracing_active());
        assert!(trace_sink().is_none());
    }

    #[test]
    fn spans_carry_schema_and_scope_fields() {
        let buf = SharedBuf::default();
        let rec = crate::JsonlRecorder::new(Box::new(buf.clone()));
        {
            let _scope = TraceScope::enter(&[("inj", Value::U64(7))]);
            record_span(
                &rec,
                TimeDomain::Cycles,
                "t2",
                "barrier_phase",
                "phase 1",
                100,
                40,
                &[("steps", Value::U64(12))],
            );
            record_instant(&rec, TimeDomain::Cycles, "t2", "violation", "site 3", 140, &[]);
            record_flow(&rec, TimeDomain::Cycles, "t2", "verdict", "site 3", 140, 1, true, &[]);
        }
        record_span(&rec, TimeDomain::WallUs, "shard0", "flush_batch", "flush", 9, 2, &[]);
        rec.flush();
        let recs = lines(&buf);
        if !crate::ENABLED {
            // record() short-circuits; the recorder itself still works,
            // so only assert the trace helpers stayed silent.
            assert!(recs.is_empty() || recs.iter().all(|r| field(r, "ev").is_none()));
            return;
        }
        assert_eq!(recs.len(), 4);
        let span = &recs[0];
        assert_eq!(field(span, "ev"), Some(&Value::from(TRACE_EVENT)));
        assert_eq!(field(span, "kind"), Some(&Value::from("span")));
        assert_eq!(field(span, "dom"), Some(&Value::from("cyc")));
        assert_eq!(field(span, "track"), Some(&Value::from("t2")));
        assert_eq!(field(span, "ts"), Some(&Value::U64(100)));
        assert_eq!(field(span, "dur"), Some(&Value::U64(40)));
        assert_eq!(field(span, "steps"), Some(&Value::U64(12)));
        assert_eq!(field(span, "inj"), Some(&Value::U64(7)), "scope field attached");
        assert_eq!(field(&recs[1], "kind"), Some(&Value::from("instant")));
        assert_eq!(field(&recs[2], "kind"), Some(&Value::from("flow_start")));
        assert_eq!(field(&recs[2], "flow"), Some(&Value::U64(1)));
        // The wall-clock span emitted after the scope dropped: no `inj`.
        assert_eq!(field(&recs[3], "dom"), Some(&Value::from("us")));
        assert_eq!(field(&recs[3], "inj"), None);
    }

    #[test]
    fn scopes_nest_and_pop_in_lifo_order() {
        if !crate::ENABLED {
            return;
        }
        let outer = TraceScope::enter(&[("wid", Value::U64(1))]);
        {
            let _inner = TraceScope::enter(&[("inj", Value::U64(5))]);
            SCOPE.with(|s| assert_eq!(s.borrow().len(), 2));
        }
        SCOPE.with(|s| {
            assert_eq!(s.borrow().len(), 1);
            assert_eq!(s.borrow()[0].0, "wid");
        });
        drop(outer);
        SCOPE.with(|s| assert!(s.borrow().is_empty()));
    }
}
