//! Plain-data snapshots of a run's metrics.
//!
//! A [`TelemetrySnapshot`] is the export format every layer (VM, monitor,
//! campaign engine, pipeline) hands upward: named counters, gauges and
//! histogram snapshots, detached from the atomics they were read from.
//! Snapshots merge (for fan-in across workers or layers) and prefix (so
//! `vm.` / `monitor.` / `campaign.` namespaces stay disjoint).

use crate::json::{write_json_object, Value};
use crate::metrics::HistogramSnapshot;
use crate::recorder::Recorder;

/// Named metric values captured at a point in time.
///
/// Counters and gauges are deterministic for a deterministic run (same
/// seed ⇒ same values); histograms may hold wall-clock timings and are
/// therefore excluded from determinism comparisons.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TelemetrySnapshot {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, u64)>,
    histograms: Vec<(String, HistogramSnapshot)>,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when no metric has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds (or accumulates into) a counter.
    pub fn push_counter(&mut self, name: impl Into<String>, value: u64) {
        let name = name.into();
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += value,
            None => self.counters.push((name, value)),
        }
    }

    /// Adds (or raises) a gauge; merging keeps the maximum, matching the
    /// high-water semantics of [`crate::Gauge::record_max`].
    pub fn push_gauge(&mut self, name: impl Into<String>, value: u64) {
        let name = name.into();
        match self.gauges.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v = (*v).max(value),
            None => self.gauges.push((name, value)),
        }
    }

    /// Adds (or folds into) a histogram snapshot.
    pub fn push_histogram(&mut self, name: impl Into<String>, snap: HistogramSnapshot) {
        let name = name.into();
        match self.histograms.iter_mut().find(|(n, _)| *n == name) {
            Some((_, h)) => merge_histograms(h, &snap),
            None => self.histograms.push((name, snap)),
        }
    }

    /// Counter entries, in insertion order.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// Gauge entries, in insertion order.
    pub fn gauges(&self) -> &[(String, u64)] {
        &self.gauges
    }

    /// Histogram entries, in insertion order.
    pub fn histograms(&self) -> &[(String, HistogramSnapshot)] {
        &self.histograms
    }

    /// Looks up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Looks up a histogram by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Folds `other` into `self`: counters add, gauges keep the max,
    /// histograms merge bucket-wise.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (n, v) in &other.counters {
            self.push_counter(n.clone(), *v);
        }
        for (n, v) in &other.gauges {
            self.push_gauge(n.clone(), *v);
        }
        for (n, h) in &other.histograms {
            self.push_histogram(n.clone(), h.clone());
        }
    }

    /// Returns a copy with `prefix` prepended to every metric name
    /// (`prefix` should include its trailing separator, e.g. `"vm."`).
    pub fn prefixed(&self, prefix: &str) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self
                .counters
                .iter()
                .map(|(n, v)| (format!("{prefix}{n}"), *v))
                .collect(),
            gauges: self
                .gauges
                .iter()
                .map(|(n, v)| (format!("{prefix}{n}"), *v))
                .collect(),
            histograms: self
                .histograms
                .iter()
                .map(|(n, h)| (format!("{prefix}{n}"), h.clone()))
                .collect(),
        }
    }

    /// The deterministic subset (counters and gauges only), for
    /// same-seed reproducibility comparisons.
    pub fn deterministic_part(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: Vec::new(),
        }
    }

    /// Emits every metric to `recorder` as `counter` / `gauge` /
    /// `histogram` records.
    pub fn record_to(&self, recorder: &dyn Recorder) {
        for (n, v) in &self.counters {
            recorder.record(
                "counter",
                &[("name", Value::from(n.as_str())), ("value", Value::U64(*v))],
            );
        }
        for (n, v) in &self.gauges {
            recorder.record(
                "gauge",
                &[("name", Value::from(n.as_str())), ("value", Value::U64(*v))],
            );
        }
        for (n, h) in &self.histograms {
            let buckets = h.encode_buckets();
            recorder.record(
                "histogram",
                &[
                    ("name", Value::from(n.as_str())),
                    ("count", Value::U64(h.count)),
                    ("sum", Value::U64(h.sum)),
                    ("max", Value::U64(h.max)),
                    ("buckets", Value::from(buckets.as_str())),
                ],
            );
        }
    }

    /// Renders the whole snapshot as one flat JSON object; histogram
    /// aggregates appear as `<name>.count` / `.sum` / `.max` keys.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, Value)> = Vec::new();
        for (n, v) in &self.counters {
            fields.push((n.clone(), Value::U64(*v)));
        }
        for (n, v) in &self.gauges {
            fields.push((n.clone(), Value::U64(*v)));
        }
        for (n, h) in &self.histograms {
            fields.push((format!("{n}.count"), Value::U64(h.count)));
            fields.push((format!("{n}.sum"), Value::U64(h.sum)));
            fields.push((format!("{n}.max"), Value::U64(h.max)));
        }
        let borrowed: Vec<(&str, Value)> = fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        let mut out = String::new();
        write_json_object(&mut out, &borrowed);
        out
    }
}

fn merge_histograms(into: &mut HistogramSnapshot, from: &HistogramSnapshot) {
    into.count += from.count;
    into.sum = into.sum.wrapping_add(from.sum);
    into.max = into.max.max(from.max);
    for &(bound, n) in &from.buckets {
        match into.buckets.binary_search_by_key(&bound, |&(b, _)| b) {
            Ok(i) => into.buckets[i].1 += n,
            Err(i) => into.buckets.insert(i, (bound, n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat_object;
    use crate::metrics::Histogram;

    #[test]
    fn counters_accumulate_and_gauges_take_max() {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("events", 3);
        s.push_counter("events", 4);
        s.push_gauge("high_water", 9);
        s.push_gauge("high_water", 5);
        assert_eq!(s.counter("events"), Some(7));
        assert_eq!(s.gauge("high_water"), Some(9));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn merge_and_prefix_compose() {
        let mut a = TelemetrySnapshot::new();
        a.push_counter("sends", 10);
        a.push_gauge("depth", 4);
        let mut b = TelemetrySnapshot::new();
        b.push_counter("sends", 5);
        b.push_gauge("depth", 2);
        a.merge(&b);
        let p = a.prefixed("vm.");
        assert_eq!(p.counter("vm.sends"), Some(15));
        assert_eq!(p.gauge("vm.depth"), Some(4));
        assert!(p.counter("sends").is_none());
    }

    #[test]
    fn histograms_merge_bucketwise() {
        let h = Histogram::new();
        h.observe(1);
        h.observe(6);
        let mut a = TelemetrySnapshot::new();
        a.push_histogram("lat", h.snapshot());
        let h2 = Histogram::new();
        h2.observe(6);
        h2.observe(100);
        a.push_histogram("lat", h2.snapshot());
        let m = a.histogram("lat").unwrap();
        assert_eq!(m.count, 4);
        assert_eq!(m.sum, 113);
        assert_eq!(m.max, 100);
        assert_eq!(m.buckets, vec![(1, 1), (7, 2), (127, 1)]);
    }

    #[test]
    fn deterministic_part_drops_histograms() {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("c", 1);
        let h = Histogram::new();
        h.observe(123);
        s.push_histogram("timing", h.snapshot());
        let d = s.deterministic_part();
        assert_eq!(d.counter("c"), Some(1));
        assert!(d.histograms().is_empty());
    }

    #[test]
    fn to_json_is_parseable() {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("c", 2);
        s.push_gauge("g", 3);
        let h = Histogram::new();
        h.observe(8);
        s.push_histogram("h", h.snapshot());
        let parsed = parse_flat_object(&s.to_json()).unwrap();
        let get = |k: &str| {
            parsed
                .iter()
                .find(|(n, _)| n == k)
                .and_then(|(_, v)| v.as_u64())
        };
        assert_eq!(get("c"), Some(2));
        assert_eq!(get("g"), Some(3));
        assert_eq!(get("h.count"), Some(1));
        assert_eq!(get("h.sum"), Some(8));
    }
}
