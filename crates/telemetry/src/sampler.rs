//! The background sampler: periodic registry deltas as trace records.
//!
//! A [`Sampler`] polls a [`MetricRegistry`] on a fixed interval and emits
//! one flat `sample` record per tick into a [`Recorder`]: counter
//! *deltas* since the previous tick (only the ones that moved), every
//! gauge's current value, plus `tick` / `dt_us` bookkeeping. Histograms
//! are deliberately excluded — their shape travels in the end-of-run
//! `histogram` records, and per-tick bucket dumps would swamp the trace.
//!
//! `sample` records are time series, not forensics: `bw report` ignores
//! them (its parser keeps only `injection` / `violation` events), and
//! nothing the sampler emits flows into a run's result snapshot, so
//! same-seed determinism is untouched by whether a sampler was running.
//!
//! When an interval's `*events_dropped` counters moved, the record gains
//! a `warn` field — the live counterpart of the end-of-run drop warning,
//! so a monitor falling behind is visible mid-campaign in `bw top`.
//!
//! A final tick is always flushed on [`Sampler::stop`] (or drop), so even
//! a run shorter than one interval leaves at least one sample behind.
//! Without the `telemetry` feature the constructor returns an inert
//! handle and no thread is ever spawned.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::json::Value;
use crate::recorder::Recorder;
use crate::registry::MetricRegistry;
use crate::snapshot::TelemetrySnapshot;

/// Granularity of the stop check while waiting out an interval.
const SLEEP_SLICE: Duration = Duration::from_millis(5);

/// Builds one `sample` record's fields from two consecutive registry
/// snapshots: counter deltas (changed counters only, saturating so a
/// replaced source can never underflow), absolute gauge values, and a
/// `warn` marker when events were dropped in the interval.
pub fn sample_fields(
    prev: &TelemetrySnapshot,
    cur: &TelemetrySnapshot,
    tick: u64,
    dt_us: u64,
) -> Vec<(String, Value)> {
    let mut fields = vec![
        ("tick".to_string(), Value::U64(tick)),
        ("dt_us".to_string(), Value::U64(dt_us)),
    ];
    let mut dropped = 0u64;
    for (name, &v) in cur.counters().iter().map(|(n, v)| (n, v)) {
        let delta = v.saturating_sub(prev.counter(name).unwrap_or(0));
        if delta > 0 {
            if name.ends_with("events_dropped") {
                dropped += delta;
            }
            fields.push((name.clone(), Value::U64(delta)));
        }
    }
    for (name, &v) in cur.gauges().iter().map(|(n, v)| (n, v)) {
        fields.push((name.clone(), Value::U64(v)));
    }
    if dropped > 0 {
        fields.push(("warn".to_string(), Value::from("events_dropped")));
    }
    fields
}

/// A background thread emitting periodic `sample` records (see the
/// module docs). Stops — flushing one final tick — on [`Sampler::stop`]
/// or drop.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Sampler {
    /// Starts sampling `registry` into `recorder` every `interval`
    /// (clamped to at least 1ms). Inert without the `telemetry` feature.
    pub fn start(
        registry: Arc<MetricRegistry>,
        recorder: Arc<dyn Recorder>,
        interval: Duration,
    ) -> Sampler {
        let stop = Arc::new(AtomicBool::new(false));
        if !crate::ENABLED {
            return Sampler { stop, handle: None };
        }
        let interval = interval.max(Duration::from_millis(1));
        let thread_stop = Arc::clone(&stop);
        let handle = thread::Builder::new()
            .name("bw-sampler".to_string())
            .spawn(move || {
                let mut prev = registry.snapshot();
                let mut last = Instant::now();
                let mut tick = 0u64;
                loop {
                    while last.elapsed() < interval && !thread_stop.load(Ordering::Acquire) {
                        thread::sleep(SLEEP_SLICE.min(interval));
                    }
                    let stopping = thread_stop.load(Ordering::Acquire);
                    let now = Instant::now();
                    let dt_us = (now - last).as_micros() as u64;
                    last = now;
                    let cur = registry.snapshot();
                    tick += 1;
                    let fields = sample_fields(&prev, &cur, tick, dt_us);
                    let borrowed: Vec<(&str, Value)> =
                        fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
                    recorder.record("sample", &borrowed);
                    prev = cur;
                    if stopping {
                        recorder.flush();
                        break;
                    }
                }
            })
            .expect("spawn bw-sampler thread");
        Sampler {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the sampler, flushing a final partial-interval tick.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(counters: &[(&str, u64)], gauges: &[(&str, u64)]) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        for &(n, v) in counters {
            s.push_counter(n, v);
        }
        for &(n, v) in gauges {
            s.push_gauge(n, v);
        }
        s
    }

    #[test]
    fn deltas_skip_unchanged_counters_and_keep_gauges_absolute() {
        let prev = snap(&[("live.a", 10), ("live.b", 4)], &[("live.depth", 9)]);
        let cur = snap(&[("live.a", 15), ("live.b", 4)], &[("live.depth", 2)]);
        let fields = sample_fields(&prev, &cur, 3, 50_000);
        assert_eq!(fields[0], ("tick".to_string(), Value::U64(3)));
        assert_eq!(fields[1], ("dt_us".to_string(), Value::U64(50_000)));
        assert_eq!(fields[2], ("live.a".to_string(), Value::U64(5)));
        assert_eq!(fields[3], ("live.depth".to_string(), Value::U64(2)));
        assert_eq!(fields.len(), 4);
    }

    #[test]
    fn dropped_events_raise_the_warn_marker() {
        let prev = snap(&[("live.monitor.events_dropped", 0)], &[]);
        let cur = snap(&[("live.monitor.events_dropped", 7)], &[]);
        let fields = sample_fields(&prev, &cur, 1, 1000);
        assert!(fields
            .iter()
            .any(|(k, v)| k == "warn" && *v == Value::from("events_dropped")));
        let clean = sample_fields(&cur, &cur, 2, 1000);
        assert!(!clean.iter().any(|(k, _)| k == "warn"));
    }

    #[test]
    fn counter_resets_saturate_instead_of_underflowing() {
        let prev = snap(&[("live.a", 100)], &[]);
        let cur = snap(&[("live.a", 30)], &[]);
        let fields = sample_fields(&prev, &cur, 1, 1000);
        // 30 < 100: a replaced source restarted its count; no delta.
        assert!(!fields.iter().any(|(k, _)| k == "live.a"));
    }

    #[test]
    fn counter_created_mid_tick_reports_its_full_value() {
        // A source registered between two ticks has no `prev` entry; its
        // whole count is this interval's delta, not silently zero.
        let prev = snap(&[], &[]);
        let cur = snap(&[("live.born", 42)], &[("live.born_gauge", 7)]);
        let fields = sample_fields(&prev, &cur, 1, 1000);
        assert!(fields.contains(&("live.born".to_string(), Value::U64(42))), "{fields:?}");
        assert!(fields.contains(&("live.born_gauge".to_string(), Value::U64(7))));
    }

    /// A writer appending into a shared buffer, so the test can read the
    /// emitted records back without the filesystem.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<std::sync::Mutex<Vec<u8>>>);

    impl std::io::Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn stop_before_first_tick_still_flushes_one_sample() {
        let registry = Arc::new(MetricRegistry::new());
        let buf = SharedBuf::default();
        let rec = Arc::new(crate::recorder::JsonlRecorder::new(Box::new(buf.clone())));
        // Interval far longer than the test: the only record comes from
        // the final flush-on-stop tick.
        let sampler = Sampler::start(
            Arc::clone(&registry),
            rec as Arc<dyn Recorder>,
            Duration::from_secs(3600),
        );
        // Bumped after the sampler's baseline snapshot, so the partial
        // interval has a nonzero delta to report.
        registry.counter("live.sampler_test.early").add(3);
        sampler.stop();
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        if crate::ENABLED {
            let samples: Vec<&str> =
                text.lines().filter(|l| l.contains("\"ev\":\"sample\"")).collect();
            assert_eq!(samples.len(), 1, "exactly the final tick: {text}");
            assert!(samples[0].contains("\"tick\":1"), "{text}");
            assert!(samples[0].contains("\"live.sampler_test.early\":3"), "{text}");
        } else {
            assert!(text.is_empty(), "inert sampler must not record: {text}");
        }
    }
}
