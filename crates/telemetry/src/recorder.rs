//! Structured-event recorders: the [`Recorder`] trait, the no-op sink,
//! the JSON Lines sink, and the RAII [`Span`] timer.
//!
//! A recorder receives flat `(event name, fields)` records. The JSONL
//! sink stamps each record with a monotonically increasing sequence
//! number and a microsecond offset from recorder creation, then writes
//! one JSON object per line — the format `bw stats` reads back.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::json::{write_json_object, Value};

/// A sink for structured telemetry events.
///
/// Implementations must be cheap to call concurrently; the contract is
/// "fire and forget" — errors are swallowed (telemetry must never turn a
/// correct run into a failing one).
pub trait Recorder: Send + Sync {
    /// Records one event with its fields.
    fn record(&self, event: &str, fields: &[(&str, Value)]);

    /// Flushes any buffered output (best effort).
    fn flush(&self) {}
}

/// A recorder that discards everything. Used when no `--telemetry` sink
/// is configured, so instrumented code can always hold a `&dyn Recorder`
/// without an `Option` in the hot path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline]
    fn record(&self, _event: &str, _fields: &[(&str, Value)]) {}
}

/// The shared no-op recorder.
pub static NULL_RECORDER: NullRecorder = NullRecorder;

/// A recorder that writes one JSON object per event to a byte sink
/// (JSON Lines). Every record carries `seq` (global order of emission)
/// and `t_us` (microseconds since the recorder was created) before the
/// caller's fields.
pub struct JsonlRecorder {
    seq: AtomicU64,
    start: Instant,
    out: Mutex<BufWriter<Box<dyn Write + Send>>>,
}

impl JsonlRecorder {
    /// Wraps an arbitrary writer.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlRecorder {
            seq: AtomicU64::new(0),
            start: Instant::now(),
            out: Mutex::new(BufWriter::new(out)),
        }
    }

    /// Creates (truncating) `path` and records into it.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(Self::new(Box::new(file)))
    }

    /// Number of records emitted so far.
    pub fn records_emitted(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }
}

impl Recorder for JsonlRecorder {
    fn record(&self, event: &str, fields: &[(&str, Value)]) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let t_us = self.start.elapsed().as_micros() as u64;
        let mut line = String::with_capacity(64 + fields.len() * 24);
        let mut all = Vec::with_capacity(fields.len() + 3);
        all.push(("seq", Value::U64(seq)));
        all.push(("t_us", Value::U64(t_us)));
        all.push(("ev", Value::from(event)));
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        write_json_object(&mut line, &all);
        line.push('\n');
        if let Ok(mut out) = self.out.lock() {
            // Best effort: a full disk must not fail the run.
            let _ = out.write_all(line.as_bytes());
        }
    }

    fn flush(&self) {
        if let Ok(mut out) = self.out.lock() {
            let _ = out.flush();
        }
    }
}

impl Drop for JsonlRecorder {
    fn drop(&mut self) {
        Recorder::flush(self);
    }
}

/// An RAII timer: created via [`Span::enter`] (or the `tm_span!` macro),
/// it emits a `span` event with the measured `dur_us` when dropped.
pub struct Span<'a> {
    recorder: &'a dyn Recorder,
    name: &'static str,
    start: Instant,
    done: bool,
}

impl<'a> Span<'a> {
    /// Starts a named span against `recorder`.
    pub fn enter(recorder: &'a dyn Recorder, name: &'static str) -> Self {
        Span {
            recorder,
            name,
            start: Instant::now(),
            done: false,
        }
    }

    /// Ends the span early, attaching extra fields to the `span` record.
    pub fn finish(mut self, fields: &[(&str, Value)]) {
        self.done = true;
        let dur = self.start.elapsed().as_micros() as u64;
        let mut all = Vec::with_capacity(fields.len() + 2);
        all.push(("name", Value::from(self.name)));
        all.push(("dur_us", Value::U64(dur)));
        all.extend(fields.iter().map(|(k, v)| (*k, v.clone())));
        self.recorder.record("span", &all);
    }

    /// Microseconds elapsed since the span was entered.
    pub fn elapsed_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if !self.done {
            let dur = self.start.elapsed().as_micros() as u64;
            self.recorder.record(
                "span",
                &[("name", Value::from(self.name)), ("dur_us", Value::U64(dur))],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_flat_object;
    use std::sync::Arc;

    /// A writer that appends into a shared buffer so tests can read back
    /// what the recorder emitted.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn lines_of(buf: &SharedBuf) -> Vec<Vec<(String, Value)>> {
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes)
            .unwrap()
            .lines()
            .map(|l| parse_flat_object(l).expect("valid JSONL line"))
            .collect()
    }

    #[test]
    fn jsonl_records_are_sequenced_and_parseable() {
        let buf = SharedBuf::default();
        let rec = JsonlRecorder::new(Box::new(buf.clone()));
        rec.record("alpha", &[("n", Value::U64(1))]);
        rec.record("beta", &[("s", Value::from("x\"y"))]);
        rec.flush();
        let lines = lines_of(&buf);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0][0], ("seq".to_string(), Value::U64(0)));
        assert_eq!(lines[1][0], ("seq".to_string(), Value::U64(1)));
        assert_eq!(lines[0][2], ("ev".to_string(), Value::from("alpha")));
        assert_eq!(lines[1][3], ("s".to_string(), Value::from("x\"y")));
        assert_eq!(rec.records_emitted(), 2);
    }

    #[test]
    fn span_emits_duration_on_drop() {
        let buf = SharedBuf::default();
        let rec = JsonlRecorder::new(Box::new(buf.clone()));
        {
            let _span = Span::enter(&rec, "stage");
        }
        Span::enter(&rec, "late").finish(&[("items", Value::U64(7))]);
        rec.flush();
        let lines = lines_of(&buf);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0][2], ("ev".to_string(), Value::from("span")));
        assert_eq!(lines[0][3], ("name".to_string(), Value::from("stage")));
        assert_eq!(lines[0][4].0, "dur_us");
        assert_eq!(lines[1][5], ("items".to_string(), Value::U64(7)));
    }

    #[test]
    fn null_recorder_is_inert() {
        NULL_RECORDER.record("anything", &[("k", Value::Null)]);
        NULL_RECORDER.flush();
    }

    #[test]
    fn recorder_is_object_safe_and_shareable() {
        let rec: Arc<dyn Recorder> = Arc::new(NullRecorder);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let rec = Arc::clone(&rec);
                s.spawn(move || rec.record("e", &[]));
            }
        });
    }
}
