//! Minimal JSON support for telemetry traces.
//!
//! The workspace's vendored `serde` is an offline no-op stub, so the
//! telemetry sink writes JSON by hand and `bw stats` reads it back with
//! the flat-object parser below. Trace records are deliberately flat
//! (one object per line, scalar values only), which keeps both halves
//! small and dependency-free.

use std::fmt::Write as _;

/// A scalar JSON value, as written by the recorder and returned by
/// [`parse_flat_object`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (parser only produces this for values < 0).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
}

impl Value {
    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any kind of number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        if v >= 0 {
            Value::U64(v as u64)
        } else {
            Value::I64(v)
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON value.
pub fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(x) => {
            // JSON has no NaN/Inf; fall back to null like most emitters.
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_str(out, s),
    }
}

/// Appends a flat JSON object built from `fields` to `out`.
pub fn write_json_object(out: &mut String, fields: &[(&str, Value)]) {
    out.push('{');
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_json_str(out, k);
        out.push(':');
        write_json_value(out, v);
    }
    out.push('}');
}

/// Error from [`parse_flat_object`]: a message plus the byte offset it
/// was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one flat JSON object — scalar values only, no nesting — into
/// its fields in source order.
///
/// This is exactly the shape the JSONL recorder emits; nested objects or
/// arrays are rejected rather than silently skipped.
pub fn parse_flat_object(input: &str) -> Result<Vec<(String, Value)>, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.pos += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_value()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(p.err("expected ',' or '}'")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after object"));
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, JsonError> {
        match self.peek() {
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b'{') | Some(b'[') => Err(self.err("nested values are not supported")),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| self.err("invalid number"))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Value::U64(v))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Value::I64(v))
        } else {
            Err(self.err("invalid number"))
        }
    }

    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hi = self.parse_hex4()?;
                        let cp = if (0xd800..0xdc00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                return Err(self.err("missing low surrogate"));
                            }
                            let lo = self.parse_hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                        );
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence in place.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("invalid utf-8")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated utf-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, JsonError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.next().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(fields: &[(&str, Value)]) -> Vec<(String, Value)> {
        let mut s = String::new();
        write_json_object(&mut s, fields);
        parse_flat_object(&s).expect("roundtrip parse")
    }

    #[test]
    fn writes_and_parses_scalars() {
        let fields = [
            ("ev", Value::from("injection")),
            ("seq", Value::from(42u64)),
            ("delta", Value::from(-3i64)),
            ("frac", Value::F64(0.5)),
            ("ok", Value::from(true)),
            ("none", Value::Null),
        ];
        let parsed = roundtrip(&fields);
        assert_eq!(parsed.len(), 6);
        assert_eq!(parsed[0].0, "ev");
        assert_eq!(parsed[0].1.as_str(), Some("injection"));
        assert_eq!(parsed[1].1.as_u64(), Some(42));
        assert_eq!(parsed[2].1, Value::I64(-3));
        assert_eq!(parsed[3].1.as_f64(), Some(0.5));
        assert_eq!(parsed[4].1, Value::Bool(true));
        assert_eq!(parsed[5].1, Value::Null);
    }

    #[test]
    fn escapes_are_symmetric() {
        let tricky = "a\"b\\c\nd\te\u{0001}f — π";
        let parsed = roundtrip(&[("s", Value::from(tricky))]);
        assert_eq!(parsed[0].1.as_str(), Some(tricky));
    }

    #[test]
    fn parses_unicode_escapes() {
        let parsed = parse_flat_object(r#"{"s":"é😀"}"#).unwrap();
        assert_eq!(parsed[0].1.as_str(), Some("é😀"));
    }

    #[test]
    fn rejects_nesting_and_garbage() {
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a":[1]}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} extra"#).is_err());
        assert!(parse_flat_object(r#"{"a":}"#).is_err());
        assert!(parse_flat_object("{}").unwrap().is_empty());
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        let mut s = String::new();
        write_json_object(&mut s, &[("x", Value::F64(f64::NAN))]);
        assert_eq!(s, r#"{"x":null}"#);
    }
}
