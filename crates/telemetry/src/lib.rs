//! # bw-telemetry — the BLOCKWATCH observability substrate
//!
//! Every other crate in the workspace records what it does through this
//! one: lock-free metric primitives ([`Counter`], [`Gauge`],
//! [`Histogram`]), a structured-event [`Recorder`] with a JSON Lines
//! sink ([`JsonlRecorder`]) and RAII [`Span`] timers, and the plain-data
//! [`TelemetrySnapshot`] that run results and campaign results carry.
//!
//! ## Cost model
//!
//! Recording is designed to be safe on the hottest paths:
//!
//! * metric updates are single relaxed atomic RMWs — no locks, no
//!   allocation, no fences;
//! * event records go through `&dyn Recorder`; when no sink is
//!   configured that is [`NullRecorder`], whose `record` is an inlined
//!   empty body;
//! * with the `telemetry` cargo feature **disabled**, the `tm_*` macros
//!   expand to literally nothing, so instrumented hot paths carry zero
//!   cost and every metric reads as zero. The metric and snapshot types
//!   themselves always compile, so public APIs do not change shape with
//!   the feature.
//!
//! ## Determinism contract
//!
//! Counters and gauges on a deterministic engine (same program, same
//! seed) must be bit-identical across runs; wall-clock material
//! (histogram timings, span durations, `t_us` stamps) is kept in
//! histograms and trace records only, and
//! [`TelemetrySnapshot::deterministic_part`] strips it for
//! reproducibility checks.
//!
//! ## Live observability
//!
//! On top of the per-run snapshots sits a live layer: the process-wide
//! [`MetricRegistry`] the monitor shards, campaign workers and engines
//! register into, the background [`Sampler`] that turns it into
//! timestamped `sample` trace records, the Prometheus text exposition
//! ([`TelemetrySnapshot::to_prometheus`]) and the stdlib
//! [`MetricsServer`] `/metrics` endpoint. The live layer only *reads*
//! run state and only *writes* to traces and HTTP responses — never into
//! result snapshots — so observing a run cannot change its verdicts.

pub mod json;
pub mod metrics;
pub mod prometheus;
pub mod recorder;
pub mod registry;
pub mod sampler;
pub mod serve;
pub mod snapshot;
pub mod trace;

pub use json::{parse_flat_object, write_json_object, write_json_str, JsonError, Value};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use prometheus::{escape_label_value, sanitize_metric_name};
pub use recorder::{JsonlRecorder, NullRecorder, Recorder, Span, NULL_RECORDER};
pub use registry::{MetricRegistry, MetricSource};
pub use sampler::{sample_fields, Sampler};
pub use serve::MetricsServer;
pub use snapshot::TelemetrySnapshot;
pub use trace::{
    record_flow, record_instant, record_span, set_trace_sink, trace_sink, tracing_active,
    wall_now_us, TimeDomain, TraceScope, TRACE_EVENT,
};

/// Whether this build records telemetry (the `telemetry` cargo feature).
pub const ENABLED: bool = cfg!(feature = "telemetry");

/// The stand-in returned by `tm_span!` when the `telemetry` feature is
/// off: same method surface as [`Span`], no timing, no record.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSpan;

impl NoopSpan {
    /// Does nothing (mirror of [`Span::finish`]).
    pub fn finish(self, _fields: &[(&str, Value)]) {}

    /// Always zero (mirror of [`Span::elapsed_us`]).
    pub fn elapsed_us(&self) -> u64 {
        0
    }
}

/// Adds `$n` (any unsigned integer expression) to a [`Counter`].
/// Expands to nothing without the `telemetry` feature.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! tm_add {
    ($counter:expr, $n:expr) => {
        $counter.add($n as u64)
    };
}

/// Adds `$n` (any unsigned integer expression) to a [`Counter`].
/// Expands to nothing without the `telemetry` feature.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! tm_add {
    ($counter:expr, $n:expr) => {
        ()
    };
}

/// Increments a [`Counter`] by one.
/// Expands to nothing without the `telemetry` feature.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! tm_inc {
    ($counter:expr) => {
        $counter.inc()
    };
}

/// Increments a [`Counter`] by one.
/// Expands to nothing without the `telemetry` feature.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! tm_inc {
    ($counter:expr) => {
        ()
    };
}

/// Raises a [`Gauge`] to `$v` if larger (high-water mark).
/// Expands to nothing without the `telemetry` feature.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! tm_gauge_max {
    ($gauge:expr, $v:expr) => {
        $gauge.record_max($v as u64)
    };
}

/// Raises a [`Gauge`] to `$v` if larger (high-water mark).
/// Expands to nothing without the `telemetry` feature.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! tm_gauge_max {
    ($gauge:expr, $v:expr) => {
        ()
    };
}

/// Records a sample into a [`Histogram`].
/// Expands to nothing without the `telemetry` feature.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! tm_observe {
    ($hist:expr, $v:expr) => {
        $hist.observe($v as u64)
    };
}

/// Records a sample into a [`Histogram`].
/// Expands to nothing without the `telemetry` feature.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! tm_observe {
    ($hist:expr, $v:expr) => {
        ()
    };
}

/// Emits a structured event: `tm_event!(recorder, "name", "key" => value, ...)`.
/// Values go through `Into<Value>`. Expands to nothing without the
/// `telemetry` feature.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! tm_event {
    ($rec:expr, $ev:expr $(, $k:literal => $v:expr)* $(,)?) => {
        $crate::Recorder::record($rec, $ev, &[$(($k, $crate::Value::from($v))),*])
    };
}

/// Emits a structured event: `tm_event!(recorder, "name", "key" => value, ...)`.
/// Values go through `Into<Value>`. Expands to nothing without the
/// `telemetry` feature.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! tm_event {
    ($rec:expr, $ev:expr $(, $k:literal => $v:expr)* $(,)?) => {
        ()
    };
}

/// Enters a timed [`Span`] against a recorder; bind the result and the
/// span records its duration when dropped. Without the `telemetry`
/// feature it yields a [`NoopSpan`] and never touches the clock.
#[cfg(feature = "telemetry")]
#[macro_export]
macro_rules! tm_span {
    ($rec:expr, $name:expr) => {
        $crate::Span::enter($rec, $name)
    };
}

/// Enters a timed [`Span`] against a recorder; bind the result and the
/// span records its duration when dropped. Without the `telemetry`
/// feature it yields a [`NoopSpan`] and never touches the clock.
#[cfg(not(feature = "telemetry"))]
#[macro_export]
macro_rules! tm_span {
    ($rec:expr, $name:expr) => {
        $crate::NoopSpan
    };
}

#[cfg(test)]
mod tests {
    use crate::{Counter, Gauge, Histogram};

    #[test]
    #[cfg(feature = "telemetry")]
    fn macros_record_when_enabled() {
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        tm_add!(c, 2u32);
        tm_inc!(c);
        tm_gauge_max!(g, 7usize);
        tm_observe!(h, 5u64);
        assert_eq!(c.get(), 3);
        assert_eq!(g.get(), 7);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    #[cfg(not(feature = "telemetry"))]
    fn macros_are_noops_when_disabled() {
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        tm_add!(c, 2u32);
        tm_inc!(c);
        tm_gauge_max!(g, 7usize);
        tm_observe!(h, 5u64);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn span_macro_binds_under_either_feature() {
        let rec = crate::NullRecorder;
        crate::Recorder::flush(&rec);
        let span = tm_span!(&rec, "unit");
        let _ = span.elapsed_us();
        span.finish(&[]);
        tm_event!(&rec, "done", "n" => 1u64);
    }
}
