//! Round-trip property tests for the flat-JSON writer/parser pair.
//!
//! The telemetry sink writes JSON by hand and `bw stats` reads it back
//! with `parse_flat_object`; these tests drive both halves with seeded
//! random inputs and assert the parse inverts the write — for whole
//! [`TelemetrySnapshot`]s, for JSONL trace events, and for the edge
//! cases (empty traces, the `u64::MAX` histogram bucket) a hand-rolled
//! serializer is most likely to get wrong.

use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use bw_telemetry::{
    parse_flat_object, Histogram, HistogramSnapshot, JsonlRecorder, Recorder, TelemetrySnapshot,
    Value,
};

/// SplitMix64 — the same tiny deterministic generator the fuzzer uses.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// A metric/field name with characters the string escaper must handle:
/// quotes, backslashes, control characters, and multi-byte UTF-8.
fn tricky_name(rng: &mut Rng, uniq: usize) -> String {
    const PIECES: &[&str] = &["vm.", "lat", "μs", "a\"b", "c\\d", "\n", "\t", "\u{1}", "😀", "é"];
    let mut s = format!("k{uniq}_");
    for _ in 0..rng.below(4) {
        s.push_str(PIECES[rng.below(PIECES.len() as u64) as usize]);
    }
    s
}

fn random_value(rng: &mut Rng, uniq: usize) -> Value {
    match rng.below(6) {
        0 => Value::Null,
        1 => Value::Bool(rng.below(2) == 0),
        2 => Value::U64(rng.next()),
        3 => Value::I64(-((rng.next() >> 1) as i64) - 1),
        // Finite f64s only; the writer turns NaN/Inf into null by design.
        4 => Value::F64(f64::from_bits(rng.next() >> 12) * if rng.below(2) == 0 { -0.5 } else { 3.25 }),
        _ => Value::Str(tricky_name(rng, uniq)),
    }
}

/// Written-then-parsed values must agree. Floats may come back as a
/// different numeric variant (`2.0` prints as `2`), so numbers compare
/// numerically; everything else compares exactly.
fn assert_same(original: &Value, parsed: &Value) {
    match original {
        Value::F64(x) => {
            let back = parsed.as_f64().expect("float field must parse as a number");
            assert_eq!(*x, back, "float round-trip changed the value");
        }
        other => assert_eq!(other, parsed),
    }
}

#[test]
fn random_flat_objects_round_trip() {
    let mut rng = Rng(0x0bad_cafe);
    for _case in 0..300 {
        let nfields = rng.below(8) as usize;
        let fields: Vec<(String, Value)> = (0..nfields)
            .map(|i| (tricky_name(&mut rng, i), random_value(&mut rng, i)))
            .collect();
        let borrowed: Vec<(&str, Value)> =
            fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        let mut text = String::new();
        bw_telemetry::write_json_object(&mut text, &borrowed);
        let parsed = parse_flat_object(&text).unwrap_or_else(|e| {
            panic!("emitted object failed to parse: {e}\n  text: {text}")
        });
        assert_eq!(parsed.len(), fields.len(), "field count changed in {text}");
        for ((wk, wv), (pk, pv)) in fields.iter().zip(&parsed) {
            assert_eq!(wk, pk);
            assert_same(wv, pv);
        }
    }
}

/// Builds a random snapshot alongside a mirror of the exact values the
/// JSON rendering must contain.
fn random_snapshot(rng: &mut Rng) -> TelemetrySnapshot {
    let mut s = TelemetrySnapshot::new();
    for i in 0..rng.below(5) {
        s.push_counter(format!("c{i}.{}", tricky_name(rng, i as usize)), rng.next());
    }
    for i in 0..rng.below(5) {
        s.push_gauge(format!("g{i}"), rng.next());
    }
    for i in 0..rng.below(3) {
        let h = Histogram::new();
        for _ in 0..rng.below(20) {
            // Bias toward the extremes: zero, small, huge, and u64::MAX
            // (the last bucket, whose bound must not overflow).
            let v = match rng.below(4) {
                0 => 0,
                1 => rng.below(100),
                2 => u64::MAX,
                _ => rng.next(),
            };
            h.observe(v);
        }
        s.push_histogram(format!("h{i}"), h.snapshot());
    }
    s
}

#[test]
fn random_snapshots_round_trip_through_json() {
    let mut rng = Rng(0x5eed_0001);
    for _case in 0..200 {
        let snap = random_snapshot(&mut rng);
        let text = snap.to_json();
        let parsed = parse_flat_object(&text)
            .unwrap_or_else(|e| panic!("snapshot JSON failed to parse: {e}\n  text: {text}"));
        let get = |key: &str| -> Option<u64> {
            parsed.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_u64())
        };
        for (name, v) in snap.counters() {
            assert_eq!(get(name), Some(*v), "counter {name:?} lost in {text}");
        }
        for (name, v) in snap.gauges() {
            assert_eq!(get(name), Some(*v), "gauge {name:?} lost in {text}");
        }
        for (name, h) in snap.histograms() {
            assert_eq!(get(&format!("{name}.count")), Some(h.count));
            assert_eq!(get(&format!("{name}.sum")), Some(h.sum));
            assert_eq!(get(&format!("{name}.max")), Some(h.max));
        }
        let expect_fields = snap.counters().len()
            + snap.gauges().len()
            + 3 * snap.histograms().len();
        assert_eq!(parsed.len(), expect_fields);
    }
}

#[test]
fn empty_snapshot_round_trips() {
    let snap = TelemetrySnapshot::new();
    assert!(snap.is_empty());
    let text = snap.to_json();
    assert_eq!(text, "{}");
    assert!(parse_flat_object(&text).unwrap().is_empty());
}

#[test]
fn max_bucket_histogram_survives_snapshot_and_json() {
    let h = Histogram::new();
    h.observe(u64::MAX);
    h.observe(u64::MAX);
    h.observe(0);
    let hs = h.snapshot();
    assert_eq!(hs.max, u64::MAX);
    assert_eq!(hs.buckets, vec![(0, 1), (u64::MAX, 2)]);
    // sum wraps by contract: MAX + MAX + 0 == MAX - 1 (mod 2^64).
    assert_eq!(hs.sum, u64::MAX.wrapping_add(u64::MAX));

    // Merging two max-bucket snapshots must stay in one bucket.
    let mut snap = TelemetrySnapshot::new();
    snap.push_histogram("big", hs.clone());
    snap.push_histogram("big", hs);
    let merged = snap.histogram("big").unwrap();
    assert_eq!(merged.count, 6);
    assert_eq!(merged.buckets, vec![(0, 2), (u64::MAX, 4)]);

    let parsed = parse_flat_object(&snap.to_json()).unwrap();
    let get = |key: &str| parsed.iter().find(|(k, _)| k == key).and_then(|(_, v)| v.as_u64());
    assert_eq!(get("big.count"), Some(6));
    assert_eq!(get("big.max"), Some(u64::MAX));
}

#[test]
fn mergeable_snapshot_survives_round_trip_fields() {
    // A merged snapshot (fan-in across workers) must serialize each name
    // exactly once, with the merged value.
    let mut a = TelemetrySnapshot::new();
    a.push_counter("runs", 2);
    a.push_gauge("depth", 7);
    let mut b = TelemetrySnapshot::new();
    b.push_counter("runs", 3);
    b.push_gauge("depth", 4);
    a.merge(&b);
    let parsed = parse_flat_object(&a.to_json()).unwrap();
    assert_eq!(parsed.len(), 2);
    assert_eq!(parsed[0], ("runs".to_string(), Value::U64(5)));
    assert_eq!(parsed[1], ("depth".to_string(), Value::U64(7)));
}

/// A writer that appends into a shared buffer so the test can read back
/// what the JSONL recorder emitted.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).expect("recorder output is UTF-8")
    }
}

#[test]
fn random_trace_events_round_trip_through_jsonl() {
    let mut rng = Rng(0x7ace_5eed);
    let buf = SharedBuf::default();
    let rec = JsonlRecorder::new(Box::new(buf.clone()));
    let mut emitted: Vec<(String, Vec<(String, Value)>)> = Vec::new();
    for case in 0..120 {
        let event = tricky_name(&mut rng, case);
        let fields: Vec<(String, Value)> = (0..rng.below(5) as usize)
            .map(|i| (tricky_name(&mut rng, i), random_value(&mut rng, i)))
            .collect();
        let borrowed: Vec<(&str, Value)> =
            fields.iter().map(|(k, v)| (k.as_str(), v.clone())).collect();
        rec.record(&event, &borrowed);
        emitted.push((event, fields));
    }
    rec.flush();
    assert_eq!(rec.records_emitted(), emitted.len() as u64);

    let text = buf.text();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), emitted.len());
    for (i, (line, (event, fields))) in lines.iter().zip(&emitted).enumerate() {
        let parsed = parse_flat_object(line)
            .unwrap_or_else(|e| panic!("line {i} failed to parse: {e}\n  line: {line}"));
        // Every record leads with seq / t_us / ev, then the caller's fields.
        assert_eq!(parsed[0], ("seq".to_string(), Value::U64(i as u64)));
        assert_eq!(parsed[1].0, "t_us");
        assert!(parsed[1].1.as_u64().is_some());
        assert_eq!(parsed[2].0, "ev");
        assert_eq!(parsed[2].1.as_str(), Some(event.as_str()));
        assert_eq!(parsed.len(), 3 + fields.len());
        for ((wk, wv), (pk, pv)) in fields.iter().zip(&parsed[3..]) {
            assert_eq!(wk, pk);
            assert_same(wv, pv);
        }
    }
}

#[test]
fn empty_trace_produces_no_lines() {
    let buf = SharedBuf::default();
    let rec = JsonlRecorder::new(Box::new(buf.clone()));
    rec.flush();
    assert_eq!(rec.records_emitted(), 0);
    assert!(buf.text().is_empty());
    // An event with zero fields still makes a full, parseable record.
    rec.record("tick", &[]);
    rec.flush();
    let text = buf.text();
    let parsed = parse_flat_object(text.trim_end()).unwrap();
    assert_eq!(parsed.len(), 3);
    assert_eq!(parsed[2], ("ev".to_string(), Value::Str("tick".to_string())));
}

#[test]
fn histogram_records_round_trip_their_buckets() {
    let buf = SharedBuf::default();
    let rec = JsonlRecorder::new(Box::new(buf.clone()));
    let h = Histogram::new();
    for v in [0, 1, 1, 900, u64::MAX] {
        h.observe(v);
    }
    let snapshot_buckets = h.snapshot().buckets.clone();
    let mut snap = TelemetrySnapshot::new();
    snap.push_histogram("lat", h.snapshot());
    snap.record_to(&rec);
    rec.flush();
    let parsed = parse_flat_object(buf.text().trim_end()).unwrap();
    let encoded = parsed
        .iter()
        .find(|(k, _)| k == "buckets")
        .and_then(|(_, v)| v.as_str())
        .expect("histogram record carries a buckets field");
    assert_eq!(HistogramSnapshot::decode_buckets(encoded), snapshot_buckets);
    // Quantiles reconstructed from the decoded buckets match the source.
    let decoded = HistogramSnapshot {
        count: 5,
        sum: 0, // irrelevant for quantiles
        max: u64::MAX,
        buckets: HistogramSnapshot::decode_buckets(encoded),
    };
    assert_eq!(decoded.p50(), h.snapshot().p50());
    assert_eq!(decoded.p99(), h.snapshot().p99());
}

#[test]
fn sampler_emits_parseable_sample_records() {
    use bw_telemetry::{MetricRegistry, Sampler};
    use std::time::Duration;

    let registry = Arc::new(MetricRegistry::new());
    let counter = registry.counter("live.test.events_processed");
    let gauge = registry.gauge("live.test.depth");
    let dropped = registry.counter("live.test.events_dropped");

    let buf = SharedBuf::default();
    let rec: Arc<dyn Recorder> = Arc::new(JsonlRecorder::new(Box::new(buf.clone())));
    let sampler = Sampler::start(Arc::clone(&registry), rec, Duration::from_millis(5));
    // Let the sampler take its baseline snapshot before any activity, so
    // everything below must appear as deltas in some tick.
    std::thread::sleep(Duration::from_millis(50));
    counter.add(40);
    gauge.set(7);
    dropped.add(2);
    std::thread::sleep(Duration::from_millis(50));
    sampler.stop();

    let text = buf.text();
    if !bw_telemetry::ENABLED {
        assert!(text.is_empty(), "sampler must be inert without the feature");
        return;
    }
    let lines: Vec<Vec<(String, Value)>> =
        text.lines().map(|l| parse_flat_object(l).expect("sample record parses")).collect();
    assert!(!lines.is_empty(), "at least the final flush tick must land");
    let get = |l: &[(String, Value)], k: &str| {
        l.iter().find(|(n, _)| n == k).map(|(_, v)| v.clone())
    };
    // Every record is a flat `sample` with tick/dt_us; ticks increase.
    let mut last_tick = 0;
    for line in &lines {
        assert_eq!(get(line, "ev").and_then(|v| v.as_str().map(String::from)), Some("sample".into()));
        let tick = get(line, "tick").and_then(|v| v.as_u64()).expect("tick field");
        assert!(tick > last_tick, "ticks must increase");
        last_tick = tick;
        assert!(get(line, "dt_us").and_then(|v| v.as_u64()).is_some());
    }
    // Counter activity appears as deltas summing to the total; the tick
    // that saw the drops carries the warn marker; gauges are absolute in
    // every tick once set.
    let total: u64 = lines
        .iter()
        .filter_map(|l| get(l, "live.test.events_processed").and_then(|v| v.as_u64()))
        .sum();
    assert_eq!(total, 40, "deltas must sum to the activity\n{text}");
    assert!(
        lines.iter().any(|l| {
            get(l, "warn").and_then(|v| v.as_str().map(String::from))
                == Some("events_dropped".into())
        }),
        "the drop must warn some tick\n{text}"
    );
    let last = lines.last().unwrap();
    assert_eq!(get(last, "live.test.depth").and_then(|v| v.as_u64()), Some(7));
    assert!(get(last, "warn").is_none(), "warn must clear once drops stop\n{text}");
}

#[test]
fn prometheus_exposition_has_types_labels_and_escapes() {
    use bw_telemetry::{escape_label_value, sanitize_metric_name};

    let mut snap = TelemetrySnapshot::new();
    snap.push_counter("live.monitor.shard.0.events_processed", 12);
    snap.push_counter("live.monitor.shard.1.events_processed", 30);
    snap.push_gauge("live.monitor.shard.0.queue_depth", 4);
    let h = Histogram::new();
    h.observe(1);
    h.observe(1000);
    snap.push_histogram("campaign.injection_us", h.snapshot());
    let text = snap.to_prometheus();

    // One family, two labelled series, one TYPE line.
    assert_eq!(text.matches("# TYPE bw_live_monitor_shard_events_processed counter").count(), 1);
    assert!(text.contains("bw_live_monitor_shard_events_processed{shard=\"0\"} 12"), "{text}");
    assert!(text.contains("bw_live_monitor_shard_events_processed{shard=\"1\"} 30"), "{text}");
    assert!(text.contains("# TYPE bw_live_monitor_shard_queue_depth gauge"), "{text}");
    // Histograms expose cumulative le buckets ending at +Inf, plus
    // _sum/_count.
    assert!(text.contains("# TYPE bw_campaign_injection_us histogram"), "{text}");
    assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
    assert!(text.contains("bw_campaign_injection_us_sum 1001"), "{text}");
    assert!(text.contains("bw_campaign_injection_us_count 2"), "{text}");
    // Name sanitization and label escaping helpers hold their contracts.
    assert_eq!(sanitize_metric_name("9lives μ"), "_9lives__");
    assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    // Every non-comment line is `name[{labels}] value`.
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
        assert!(!name.is_empty());
        assert!(value.parse::<f64>().is_ok() || value.parse::<u64>().is_ok(), "{line}");
    }
}

#[test]
fn snapshot_record_to_emits_parseable_metric_records() {
    let buf = SharedBuf::default();
    let rec = JsonlRecorder::new(Box::new(buf.clone()));
    let mut snap = TelemetrySnapshot::new();
    snap.push_counter("events", 11);
    snap.push_gauge("peak", 5);
    snap.push_histogram(
        "lat",
        HistogramSnapshot { count: 2, sum: 9, max: 8, buckets: vec![(1, 1), (15, 1)] },
    );
    snap.record_to(&rec);
    rec.flush();
    let text = buf.text();
    let lines: Vec<Vec<(String, Value)>> =
        text.lines().map(|l| parse_flat_object(l).expect("metric record parses")).collect();
    assert_eq!(lines.len(), 3);
    let ev = |l: &Vec<(String, Value)>| l[2].1.as_str().unwrap().to_string();
    assert_eq!(ev(&lines[0]), "counter");
    assert_eq!(ev(&lines[1]), "gauge");
    assert_eq!(ev(&lines[2]), "histogram");
    assert_eq!(lines[2][4], ("count".to_string(), Value::U64(2)));
    assert_eq!(lines[2][5], ("sum".to_string(), Value::U64(9)));
    assert_eq!(lines[2][6], ("max".to_string(), Value::U64(8)));
}
