//! # bw-bench — benchmark harness for the BLOCKWATCH reproduction
//!
//! One binary per table/figure of the paper (run with
//! `cargo run --release -p bw-bench --bin <name>`):
//!
//! | Binary | Exhibit |
//! |--------|---------|
//! | `table4` | Table IV — benchmark characteristics |
//! | `table5` | Table V — similarity category statistics |
//! | `figure6` | Figure 6 — normalized execution time at 4 and 32 threads |
//! | `figure7` | Figure 7 — geomean overhead vs. thread count |
//! | `figure8` | Figure 8 — SDC coverage under branch-flip faults |
//! | `figure9` | Figure 9 — SDC coverage under branch-condition faults |
//! | `false_positives` | §IV — 100 fault-free runs per program |
//! | `duplication` | §VI — BLOCKWATCH vs. software duplication |
//!
//! Criterion micro-benchmarks for the infrastructure itself live in
//! `benches/`.

#![warn(missing_docs)]

use std::fmt::Write as _;

/// Renders a simple aligned text table.
pub fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        let _ = write!(line, "{:width$}  ", h, width = widths[i]);
    }
    out.push_str(line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(line, "{:width$}  ", cell, width = widths[i]);
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Formats a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Parses the leading positional injection count (e.g. `figure8 300`),
/// falling back to `default` when absent or non-numeric.
pub fn parse_injections(args: &[String], default: usize) -> usize {
    let mut i = 0;
    while i < args.len() {
        // `--workers` consumes the next argument as its value.
        if args[i] == "--workers" {
            i += 2;
            continue;
        }
        if args[i].starts_with("--") {
            i += 1;
            continue;
        }
        return args[i].parse().unwrap_or(default);
    }
    default
}

/// Parses a `--workers N` flag (campaign worker threads); `0` — the
/// default — means available parallelism.
pub fn parse_workers(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--workers")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render_table(
            &["name", "value"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "22".into()]],
        );
        assert!(t.contains("name"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.975), "97.5%");
    }

    #[test]
    fn parses_campaign_args() {
        let args: Vec<String> =
            ["--workers", "3", "250"].iter().map(|s| s.to_string()).collect();
        assert_eq!(parse_workers(&args), 3);
        assert_eq!(parse_injections(&args, 100), 250);
        assert_eq!(parse_injections(&[], 100), 100);
        assert_eq!(parse_workers(&[]), 0);
    }
}
