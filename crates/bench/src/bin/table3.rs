//! Regenerates Table III: the per-iteration convergence trace of the
//! similarity fixpoint on the paper's Figure 2 example.

use blockwatch::analysis::ModuleAnalysis;
use bw_bench::render_table;

const FIGURE2: &str = r#"
    module figure2;
    shared bool test = true;
    func foo(arg: int) {
        for (var i: int = 0; i < 5; i = i + 1) {   // Branch 2
            if (i < arg) { output(i); }            // Branch 1
        }
    }
    @spmd func slave() {
        foo(1);
        if (test) {
            foo(2);
        }
    }
"#;

fn main() {
    let module = bw_ir::frontend::compile(FIGURE2).expect("figure 2 compiles");
    let analysis = ModuleAnalysis::run(&module);
    let foo_id = module.func_by_name("foo").expect("foo exists");

    println!("Table III: category propagation on the paper's Figure 2 example");
    println!("(branch categories after each whole-module fixpoint pass)");
    println!();

    let labels: Vec<String> = analysis
        .branches
        .iter()
        .map(|b| {
            let f = &module.func(b.func).name;
            format!("{} in {}", b.id, f)
        })
        .collect();

    let mut header: Vec<String> = vec!["branch".into()];
    for i in 0..analysis.trace.len() {
        header.push(format!("pass {}", i + 1));
    }
    header.push("final".into());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let rows: Vec<Vec<String>> = analysis
        .branches
        .iter()
        .enumerate()
        .map(|(bi, b)| {
            let mut row = vec![labels[bi].clone()];
            for pass in &analysis.trace {
                row.push(pass[bi].to_string());
            }
            row.push(b.category.to_string());
            row
        })
        .collect();

    println!("{}", render_table(&header_refs, &rows));
    println!("fixpoint converged in {} passes (paper: 3 passes, <10 in general)", analysis.iterations);
    println!();
    println!("paper's account: `foo`'s branches start NA (the induction variable's phi");
    println!("has not resolved), then become shared; both call sites pass shared");
    println!("arguments, so Branch 1 stays shared and is tracked per call site.");
    let _ = foo_id;
}
