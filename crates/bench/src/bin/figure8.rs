//! Regenerates Figure 8: SDC coverage with and without BLOCKWATCH under
//! branch-flip faults, at 4 and 32 threads.
//!
//! Usage: `figure8 [injections] [--workers N]` — `N` campaign worker
//! threads (default: available parallelism); results are bitwise identical
//! for any worker count.

use blockwatch::reports::coverage_row_on;
use blockwatch::{Benchmark, Blockwatch, FaultModel, Size};
use bw_bench::{parse_injections, parse_workers, pct, render_table};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let injections = parse_injections(&args, 1000);
    let workers = parse_workers(&args);
    let size = Size::Small;
    println!("Figure 8: coverage under branch-flip faults ({injections} injections per cell)");
    println!("(coverage = 1 - SDC fraction of activated faults; higher is better)");
    println!();
    // One prepared image per benchmark, shared by the 4- and 32-thread
    // campaigns; golden runs are cached per configuration on each program.
    let programs: Vec<(&str, Blockwatch)> = Benchmark::ALL
        .iter()
        .map(|&bench| {
            let bw = Blockwatch::from_module(bench.module(size).expect("port compiles"))
                .expect("port verifies");
            (bench.name(), bw)
        })
        .collect();
    for nthreads in [4u32, 32] {
        let mut rows = Vec::new();
        let mut orig_cov = Vec::new();
        let mut prot_cov = Vec::new();
        for (name, bw) in &programs {
            let row = coverage_row_on(
                bw,
                name,
                FaultModel::BranchFlip,
                nthreads,
                injections,
                0xf168,
                workers,
            )
            .expect("campaign runs");
            orig_cov.push(row.coverage_original());
            prot_cov.push(row.coverage_protected());
            rows.push(vec![
                row.name.clone(),
                pct(row.coverage_original()),
                pct(row.coverage_protected()),
                row.protected.detected.to_string(),
                row.protected.crashed.to_string(),
                row.protected.hung.to_string(),
                row.protected.masked.to_string(),
                row.protected.sdc.to_string(),
            ]);
        }
        println!("{nthreads} threads:");
        println!(
            "{}",
            render_table(
                &["benchmark", "original", "blockwatch", "det", "crash", "hang", "mask", "sdc"],
                &rows
            )
        );
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "average: original {} -> blockwatch {}   (paper: 83% -> 97-98%)",
            pct(avg(&orig_cov)),
            pct(avg(&prot_cov))
        );
        println!();
    }
}
