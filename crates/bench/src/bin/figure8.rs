//! Regenerates Figure 8: SDC coverage with and without BLOCKWATCH under
//! branch-flip faults, at 4 and 32 threads.

use blockwatch::reports::coverage_row;
use blockwatch::{Benchmark, FaultModel, Size};
use bw_bench::{pct, render_table};

fn main() {
    let injections: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let size = Size::Small;
    println!("Figure 8: coverage under branch-flip faults ({injections} injections per cell)");
    println!("(coverage = 1 - SDC fraction of activated faults; higher is better)");
    println!();
    for nthreads in [4u32, 32] {
        let mut rows = Vec::new();
        let mut orig_cov = Vec::new();
        let mut prot_cov = Vec::new();
        for bench in Benchmark::ALL {
            let row =
                coverage_row(bench, size, FaultModel::BranchFlip, nthreads, injections, 0xf168);
            orig_cov.push(row.coverage_original());
            prot_cov.push(row.coverage_protected());
            rows.push(vec![
                row.name.clone(),
                pct(row.coverage_original()),
                pct(row.coverage_protected()),
                row.protected.detected.to_string(),
                row.protected.crashed.to_string(),
                row.protected.hung.to_string(),
                row.protected.masked.to_string(),
                row.protected.sdc.to_string(),
            ]);
        }
        println!("{nthreads} threads:");
        println!(
            "{}",
            render_table(
                &["benchmark", "original", "blockwatch", "det", "crash", "hang", "mask", "sdc"],
                &rows
            )
        );
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "average: original {} -> blockwatch {}   (paper: 83% -> 97-98%)",
            pct(avg(&orig_cov)),
            pct(avg(&prot_cov))
        );
        println!();
    }
}
