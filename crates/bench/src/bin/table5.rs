//! Regenerates Table V: similarity category statistics of the branches.

use blockwatch::reports::table5;
use blockwatch::Size;
use bw_bench::{pct, render_table};

fn main() {
    let size = Size::Reference;
    let paper: [(usize, usize, usize, usize, usize); 7] = [
        // total, shared, threadID, partial, none (paper Table V)
        (785, 30, 12, 723, 20),
        (44, 14, 11, 18, 1),
        (321, 51, 8, 98, 164),
        (478, 22, 116, 329, 11),
        (35, 11, 9, 7, 8),
        (268, 12, 4, 117, 135),
        (103, 34, 12, 26, 31),
    ];
    let rows: Vec<Vec<String>> = table5(size)
        .into_iter()
        .zip(paper)
        .map(|(r, p)| {
            let f = |n: usize| format!("{} ({})", n, pct(n as f64 / r.total.max(1) as f64));
            let pf = |n: usize| pct(n as f64 / p.0 as f64);
            vec![
                r.name.clone(),
                r.total.to_string(),
                format!("{} [paper {}]", f(r.shared), pf(p.1)),
                format!("{} [paper {}]", f(r.thread_id), pf(p.2)),
                format!("{} [paper {}]", f(r.partial), pf(p.3)),
                format!("{} [paper {}]", f(r.none), pf(p.4)),
                pct(r.similar_fraction()),
            ]
        })
        .collect();
    println!("Table V: similarity category statistics (size: {size:?})");
    println!();
    println!(
        "{}",
        render_table(
            &["benchmark", "total", "shared", "threadID", "partial", "none", "similar"],
            &rows
        )
    );
}
