//! Regenerates Figure 9: SDC coverage with and without BLOCKWATCH under
//! branch-condition (bit-flip) faults, at 4 and 32 threads.

use blockwatch::reports::coverage_row;
use blockwatch::{Benchmark, FaultModel, Size};
use bw_bench::{pct, render_table};

fn main() {
    let injections: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
    let size = Size::Small;
    println!(
        "Figure 9: coverage under branch-condition faults ({injections} injections per cell)"
    );
    println!();
    for nthreads in [4u32, 32] {
        let mut rows = Vec::new();
        let mut orig_cov = Vec::new();
        let mut prot_cov = Vec::new();
        for bench in Benchmark::ALL {
            let row = coverage_row(
                bench,
                size,
                FaultModel::ConditionBitFlip,
                nthreads,
                injections,
                0xf169,
            );
            orig_cov.push(row.coverage_original());
            prot_cov.push(row.coverage_protected());
            rows.push(vec![
                row.name.clone(),
                pct(row.coverage_original()),
                pct(row.coverage_protected()),
                row.protected.detected.to_string(),
                row.protected.crashed.to_string(),
                row.protected.hung.to_string(),
                row.protected.masked.to_string(),
                row.protected.sdc.to_string(),
            ]);
        }
        println!("{nthreads} threads:");
        println!(
            "{}",
            render_table(
                &["benchmark", "original", "blockwatch", "det", "crash", "hang", "mask", "sdc"],
                &rows
            )
        );
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "average: original {} -> blockwatch {}   (paper: 90% -> 97%)",
            pct(avg(&orig_cov)),
            pct(avg(&prot_cov))
        );
        println!();
    }
}
