//! Regenerates Figure 6: normalized execution time with BLOCKWATCH at 4
//! and 32 threads (baseline = the program without BLOCKWATCH).

use blockwatch::reports::{geomean_at, overhead_series};
use blockwatch::Size;
use bw_bench::render_table;

fn main() {
    let size = Size::Reference;
    let threads = [4u32, 32];
    let series = overhead_series(size, &threads);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.name.clone()];
            for p in &s.points {
                row.push(format!("{:.2}x", p.ratio()));
            }
            row
        })
        .collect();
    println!("Figure 6: normalized execution time with BLOCKWATCH (size: {size:?})");
    println!("(simulated 4-socket 32-core machine; lower is better; baseline = 1.0)");
    println!();
    println!("{}", render_table(&["benchmark", "4 threads", "32 threads"], &rows));
    println!(
        "geomean: {:.2}x at 4 threads (paper: 2.15x), {:.2}x at 32 threads (paper: 1.16x)",
        geomean_at(&series, 4),
        geomean_at(&series, 32)
    );
}
