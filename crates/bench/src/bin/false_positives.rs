//! The Section IV false-positive experiment: 100 fault-free runs of every
//! instrumented benchmark; BLOCKWATCH must report zero violations.

use blockwatch::reports::false_positive_sweep;
use blockwatch::Size;
use bw_bench::render_table;

fn main() {
    let runs: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    println!("False-positive experiment: {runs} fault-free runs per program, 4 threads");
    println!();
    let mut rows = Vec::new();
    let mut total = 0;
    for (name, fps) in false_positive_sweep(Size::Small, 4, runs) {
        total += fps;
        rows.push(vec![name, fps.to_string()]);
    }
    println!("{}", render_table(&["benchmark", "false positives"], &rows));
    println!("total false positives: {total} (paper and construction: 0)");
    assert_eq!(total, 0, "BLOCKWATCH must have zero false positives");
}
