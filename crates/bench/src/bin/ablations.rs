//! Ablations over BLOCKWATCH's design knobs (Section III-A optimizations
//! and the Section VI proposals):
//!
//! * promotion of `none` branches to `partial` grouping (coverage ↑, events ↑)
//! * the critical-section optimization (events ↓, no coverage change)
//! * the loop-nesting cutoff (raytrace's coverage loss)
//! * check deduplication (events ↓, flip coverage ↓ — §VI proposal)
//!
//! Run with: `cargo run --release -p bw-bench --bin ablations [injections]`

use blockwatch::analysis::AnalysisConfig;
use blockwatch::fault::{run_campaign, CampaignConfig};
use blockwatch::reports::overhead_point;
use blockwatch::vm::ProgramImage;
use blockwatch::{Benchmark, FaultModel, Size};
use bw_bench::{pct, render_table};

struct Variant {
    name: &'static str,
    config: AnalysisConfig,
}

fn variants() -> Vec<Variant> {
    let base = AnalysisConfig::default();
    vec![
        Variant { name: "paper default", config: base },
        Variant { name: "no promotion", config: AnalysisConfig { promote_none: false, ..base } },
        Variant {
            name: "no critical-section opt",
            config: AnalysisConfig { critical_section_opt: false, ..base },
        },
        Variant { name: "loop cutoff 2", config: AnalysisConfig { max_loop_depth: 2, ..base } },
        Variant { name: "loop cutoff 4", config: AnalysisConfig { max_loop_depth: 4, ..base } },
        Variant { name: "loop cutoff 8", config: AnalysisConfig { max_loop_depth: 8, ..base } },
        Variant { name: "dedup checks (§VI)", config: AnalysisConfig { dedup_checks: true, ..base } },
    ]
}

fn main() {
    let injections: usize =
        std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let nthreads = 4;

    for bench in [Benchmark::Raytrace, Benchmark::OceanContig, Benchmark::Fmm] {
        println!(
            "== {} (branch-flip, {injections} injections, {nthreads} threads) ==",
            bench.name()
        );
        let mut rows = Vec::new();
        for v in variants() {
            let image = ProgramImage::prepare(
                bench.module(Size::Small).expect("port compiles"),
                v.config,
            );
            let cfg =
                CampaignConfig::new(injections, FaultModel::BranchFlip, nthreads).seed(0xab1a);
            let campaign = run_campaign(&image, &cfg).expect("golden run completes");
            let overhead = overhead_point(&image, nthreads);
            rows.push(vec![
                v.name.to_string(),
                image.plan.num_instrumented().to_string(),
                pct(campaign.coverage()),
                pct(campaign.counts.detection_rate()),
                format!("{:.2}x", overhead.ratio()),
            ]);
        }
        println!(
            "{}",
            render_table(
                &["variant", "instrumented", "coverage", "detection rate", "overhead"],
                &rows
            )
        );
        println!();
    }
}
