//! Regenerates Figure 7: geometric-mean BLOCKWATCH overhead vs. thread
//! count (1–32), showing the 1→2 NUMA bump and the amortization slope.

use blockwatch::reports::{geomean_at, overhead_series};
use blockwatch::Size;
use bw_bench::render_table;

fn main() {
    let size = Size::Reference;
    let threads = [1u32, 2, 4, 8, 16, 32];
    let series = overhead_series(size, &threads);
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|s| {
            let mut row = vec![s.name.clone()];
            for p in &s.points {
                row.push(format!("{:.2}", p.ratio()));
            }
            row
        })
        .collect();
    println!("Figure 7: BLOCKWATCH overhead vs. number of threads (size: {size:?})");
    println!();
    println!(
        "{}",
        render_table(&["benchmark", "1t", "2t", "4t", "8t", "16t", "32t"], &rows)
    );
    let geo: Vec<String> =
        threads.iter().map(|&n| format!("{:.2}", geomean_at(&series, n))).collect();
    println!("geomean: {}", geo.join("  "));
    println!("paper shape: rises from 1 to 2 threads, then falls monotonically to ~1.16 at 32");
}
