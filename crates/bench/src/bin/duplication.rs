//! The Section VI comparison: BLOCKWATCH vs. software duplication (DMR)
//! overhead as the thread count grows.

use blockwatch::reports::duplication_comparison;
use blockwatch::{Benchmark, Size};
use bw_bench::render_table;

fn main() {
    let threads = [4u32, 8, 16, 32];
    println!("Section VI: BLOCKWATCH vs. software duplication overhead");
    println!("(duplication re-executes every instruction and enforces deterministic");
    println!(" memory order, whose cost grows with the thread count)");
    println!();
    for bench in [Benchmark::OceanContig, Benchmark::Fft, Benchmark::WaterNsquared] {
        let points = duplication_comparison(bench, Size::Reference, &threads);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{} threads", p.nthreads),
                    format!("{:.2}x", p.blockwatch),
                    format!("{:.2}x", p.duplication),
                ]
            })
            .collect();
        println!("{}:", bench.name());
        println!("{}", render_table(&["config", "blockwatch", "duplication"], &rows));
        println!();
    }
    println!("paper: duplication costs 2-3x and does not amortize; BLOCKWATCH's");
    println!("overhead falls toward 1.16x as threads increase");
}
