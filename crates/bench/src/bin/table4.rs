//! Regenerates Table IV: characteristics of the benchmark programs.

use blockwatch::reports::table4;
use blockwatch::Size;
use bw_bench::render_table;

fn main() {
    let size = Size::Reference;
    let rows: Vec<Vec<String>> = table4(size)
        .into_iter()
        .map(|r| {
            vec![
                r.name,
                r.source_lines.to_string(),
                r.instructions.to_string(),
                r.parallel_instructions.to_string(),
                r.branches.to_string(),
                r.parallel_branches.to_string(),
            ]
        })
        .collect();
    println!("Table IV: characteristics of benchmark programs (size: {size:?})");
    println!("(the paper reports C source lines; this reproduction reports mini-language");
    println!(" lines and IR instructions of the structural ports)");
    println!();
    println!(
        "{}",
        render_table(
            &["benchmark", "src lines", "IR insts", "parallel insts", "branches", "parallel br"],
            &rows
        )
    );
}
