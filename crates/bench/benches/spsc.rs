//! Microbenchmark: the lock-free Lamport SPSC queue on the reporting hot
//! path (one push + matching pop).

use bw_monitor::{spsc_queue, BranchEvent};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_spsc(c: &mut Criterion) {
    let mut group = c.benchmark_group("spsc");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("push_pop", |b| {
        let (p, consumer) = spsc_queue::<BranchEvent>(1 << 12);
        let event = BranchEvent { branch: 1, thread: 0, site: 42, iter: 7, witness: 99, taken: true };
        b.iter(|| {
            p.push(black_box(event)).unwrap();
            black_box(consumer.pop())
        });
    });

    group.bench_function("burst_64", |b| {
        let (p, consumer) = spsc_queue::<BranchEvent>(1 << 12);
        let event = BranchEvent { branch: 1, thread: 0, site: 42, iter: 7, witness: 99, taken: true };
        b.iter(|| {
            for i in 0..64u64 {
                let mut e = event;
                e.iter = i;
                p.push(e).unwrap();
            }
            while let Some(e) = consumer.pop() {
                black_box(e);
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_spsc);
criterion_main!(benches);
