//! Microbenchmark: monitor-side event processing (two-level table insert
//! plus the eager check at the full reporter count).

use bw_analysis::CheckKind;
use bw_monitor::{BranchEvent, CheckTable, Monitor};
use bw_analysis::{AnalysisConfig, CheckPlan, ModuleAnalysis};
use bw_splash::{Benchmark, Size};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_monitor(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));

    // A realistic check table from the FFT port.
    let module = Benchmark::Fft.module(Size::Test).expect("compiles");
    let analysis = ModuleAnalysis::run(&module);
    let plan = CheckPlan::build(&module, &analysis, AnalysisConfig::default());
    let table = CheckTable::from_plan(&plan);
    let branch = (0..table.len() as u32)
        .find(|&b| matches!(table.kind(b), Some(CheckKind::SharedUniform)))
        .unwrap_or(0);

    const NTHREADS: usize = 8;
    group.throughput(Throughput::Elements(NTHREADS as u64));
    group.bench_function("full_instance_8_threads", |b| {
        let mut monitor = Monitor::new(table.clone(), NTHREADS);
        let mut iter_key = 0u64;
        b.iter(|| {
            iter_key += 1;
            for t in 0..NTHREADS as u32 {
                monitor.process(BranchEvent {
                    branch,
                    thread: t,
                    site: 1,
                    iter: iter_key,
                    witness: 5,
                    taken: true,
                });
            }
            black_box(monitor.detected())
        });
    });
    group.finish();
}

criterion_group!(benches, bench_monitor);
criterion_main!(benches);
