//! Microbenchmark: simulated-engine throughput (interpreted instructions
//! per second) with instrumentation on and off.

use bw_splash::{Benchmark, Size};
use bw_vm::{run_sim, MonitorMode, ProgramImage, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_interpreter(c: &mut Criterion) {
    let mut group = c.benchmark_group("interpreter");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(3));

    let image = ProgramImage::prepare_default(Benchmark::Fft.module(Size::Test).expect("compiles"));
    let steps = run_sim(&image, &SimConfig::new(4)).total_steps;
    group.throughput(Throughput::Elements(steps));

    group.bench_function("fft_4t_monitored", |b| {
        b.iter(|| black_box(run_sim(&image, &SimConfig::new(4))));
    });
    group.bench_function("fft_4t_baseline", |b| {
        let mut cfg = SimConfig::new(4);
        cfg.monitor = MonitorMode::Off;
        b.iter(|| black_box(run_sim(&image, &cfg)));
    });
    group.finish();
}

criterion_group!(benches, bench_interpreter);
criterion_main!(benches);
