//! Microbenchmark: the similarity fixpoint on every SPLASH-2 port (the
//! paper reports its static analysis takes under a second per benchmark).

use bw_analysis::{AnalysisConfig, CheckPlan, ModuleAnalysis};
use bw_splash::{Benchmark, Size};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_analysis");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    for bench in Benchmark::ALL {
        let module = bench.module(Size::Reference).expect("compiles");
        group.bench_function(bench.name().replace(' ', "_"), |b| {
            b.iter(|| black_box(ModuleAnalysis::run(&module)));
        });
    }
    let module = Benchmark::OceanContig.module(Size::Reference).expect("compiles");
    let analysis = ModuleAnalysis::run(&module);
    group.bench_function("check_plan", |b| {
        b.iter(|| black_box(CheckPlan::build(&module, &analysis, AnalysisConfig::default())));
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
