//! Microbenchmark: the similarity fixpoint on every SPLASH-2 port (the
//! paper reports its static analysis takes under a second per benchmark),
//! plus a worker-scaling sweep of the SCC-parallel analysis on generated
//! large modules. Throughput is reported in values analyzed per second;
//! compare across the `workers/*` IDs for the speedup curve (on a
//! single-core host all points collapse to sequential speed — the sweep
//! then measures scheduling overhead, not speedup).

use bw_analysis::{AnalysisConfig, CheckPlan, ModuleAnalysis};
use bw_gen::GenConfig;
use bw_ir::Module;
use bw_splash::{Benchmark, Size};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("similarity_analysis");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    for bench in Benchmark::ALL {
        let module = bench.module(Size::Reference).expect("compiles");
        group.bench_function(bench.name().replace(' ', "_"), |b| {
            b.iter(|| black_box(ModuleAnalysis::run(&module)));
        });
    }
    let module = Benchmark::OceanContig.module(Size::Reference).expect("compiles");
    let analysis = ModuleAnalysis::run(&module);
    group.bench_function("check_plan", |b| {
        b.iter(|| black_box(CheckPlan::build(&module, &analysis, AnalysisConfig::default())));
    });
    group.finish();
}

/// A seeded corpus of generated modules with deep bodies, so the
/// condensations have enough independent components to schedule. One
/// generated module is small; a corpus gives the sweep a stable rate.
fn corpus(base_seed: u64, count: u64) -> Vec<Module> {
    let cfg = GenConfig { max_stmts: 120, max_depth: 4, ..GenConfig::default() };
    (0..count).map(|i| bw_gen::generate_module(base_seed + i, &cfg)).collect()
}

fn bench_parallel_analysis(c: &mut Criterion) {
    let modules = corpus(7, 24);
    let nvalues: u64 =
        modules.iter().flat_map(|m| m.funcs.iter()).map(|f| f.num_values() as u64).sum();
    let mut group = c.benchmark_group("analysis_workers");
    group.sample_size(20).measurement_time(std::time::Duration::from_secs(2));
    group.throughput(Throughput::Elements(nvalues));
    group.bench_function("sequential", |b| {
        b.iter(|| {
            for m in &modules {
                black_box(ModuleAnalysis::run(m));
            }
        });
    });
    for workers in [1usize, 2, 4, 8] {
        group.bench_function(format!("workers/{workers}"), |b| {
            b.iter(|| {
                for m in &modules {
                    black_box(ModuleAnalysis::run_parallel(m, workers));
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_analysis, bench_parallel_analysis);
criterion_main!(benches);
