//! End-to-end monitor ingest throughput: events/sec through the full
//! producer → SPSC queue → monitor-worker path, swept over shard count at
//! fixed thread count (and over thread count at fixed sharding).
//!
//! The flat topology funnels every producer into one draining thread; the
//! sharded topology gives each `(site, branch)` slice its own worker, so
//! on a multi-core host events/sec grows near-linearly with the shard
//! count until the producers become the bottleneck. On a single core the
//! sweep still runs (the verdict-equality invariants hold regardless) but
//! the workers time-slice, so expect flat numbers there.
//!
//! For a CI-friendly one-shot variant of the same workload (no criterion,
//! machine-readable output, baseline regression gating) use
//! `bw bench-suite --json results/BENCH.json --baseline BASE.json` — it
//! runs this sweep sized down alongside campaign and pipeline-stage
//! timings and emits a flat `bw-bench-suite/v1` JSON object.

use bw_analysis::CheckKind;
use bw_monitor::{BranchEvent, CheckTable, MonitorBuilder, MonitorTopology};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Distinct call sites in the stream — enough to spread across 8 shards.
const SITES: u64 = 64;
/// Loop iterations per site per producer thread.
const ITERS: u64 = 100;

/// Pushes a clean uniform stream (every thread reports the same witness,
/// so every instance completes and is checked eagerly) through the given
/// topology and joins the monitor. Returns the processed-event count.
fn run_once(checks: &CheckTable, nthreads: usize, topology: MonitorTopology) -> u64 {
    let (senders, handle) =
        MonitorBuilder::new(checks.clone(), nthreads).topology(topology).spawn();
    std::thread::scope(|scope| {
        for (t, mut sender) in senders.into_iter().enumerate() {
            scope.spawn(move || {
                for iter in 0..ITERS {
                    for site in 0..SITES {
                        sender.send(BranchEvent {
                            branch: 0,
                            thread: t as u32,
                            site,
                            iter,
                            witness: 7,
                            taken: true,
                        });
                    }
                }
            });
        }
    });
    let verdict = handle.join();
    assert!(verdict.violations.is_empty(), "clean stream must stay clean");
    verdict.events_processed
}

fn bench_monitor_ingest(c: &mut Criterion) {
    let checks = CheckTable::from_kinds(vec![Some(CheckKind::SharedUniform)]);

    // Shard sweep at a fixed thread count: the tentpole scaling curve.
    let nthreads = 4usize;
    let events = (nthreads as u64) * SITES * ITERS;
    let mut group = c.benchmark_group("monitor_ingest/shards");
    group
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .throughput(Throughput::Elements(events));
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("t{nthreads}_s{shards}"), |b| {
            b.iter(|| {
                black_box(run_once(&checks, nthreads, MonitorTopology::Sharded { shards }))
            });
        });
    }
    group.finish();

    // Thread sweep at fixed sharding: producer-side scaling next to the
    // shard curve above.
    let mut group = c.benchmark_group("monitor_ingest/threads");
    group.sample_size(10).measurement_time(std::time::Duration::from_secs(2));
    for nthreads in [2usize, 4, 8] {
        let events = (nthreads as u64) * SITES * ITERS;
        group.throughput(Throughput::Elements(events));
        group.bench_function(format!("t{nthreads}_s4"), |b| {
            b.iter(|| {
                black_box(run_once(&checks, nthreads, MonitorTopology::Sharded { shards: 4 }))
            });
        });
        group.bench_function(format!("t{nthreads}_flat"), |b| {
            b.iter(|| black_box(run_once(&checks, nthreads, MonitorTopology::Flat)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_monitor_ingest);
criterion_main!(benches);
