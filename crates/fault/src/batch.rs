//! Cross-image campaign batching: many prepared images, one worker pool.
//!
//! The per-image campaign engine of [`crate::campaign`] pays its pool
//! startup/teardown and its tail latency (workers idling while the last
//! injection of an image finishes) once per image. A nightly fuzz sweep
//! runs a small campaign against *every* passing seed — hundreds of images
//! with a handful of injections each — where that overhead dominates.
//! [`CampaignBatch`] plans injections across all images up front and feeds
//! one shared worker pool, the batching structure compositional injection
//! studies like FastFlip use to get their throughput.
//!
//! Determinism is preserved **per image**: each image keeps its own claim
//! counter and stop flag with the same contiguous-prefix invariant as the
//! single-image engine (a worker checks the image's stop flag before
//! claiming from it), and each image's records pass through the same
//! index-order reduce. The per-image deterministic payload — records,
//! counts, abort cut, golden statistics and `campaign.*` outcome counters —
//! is therefore bitwise-identical to running [`run_campaign`] on that image
//! alone, at any pool width. Only the wall-clock artifacts (worker stats,
//! the `campaign.workers` gauge, the `campaign.injection_us` histogram)
//! depend on the pool.
//!
//! [`run_campaign`]: crate::campaign::run_campaign

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bw_telemetry::{tm_event, tm_observe, tm_span, Histogram, Recorder, Value, NULL_RECORDER};
use bw_vm::{engine, ExecConfig, ProgramImage, RunResult};

use crate::campaign::{
    abort_reached, campaign_telemetry, effective_pool, execute_one, reduce_campaign,
    validate_and_plan, CampaignConfig, CampaignError, CampaignResult, InjectionRecord,
    OutcomeCounts, WorkerStats,
};
use crate::injector::InjectionPlan;

/// One image's share of the batch, after the golden/plan stage.
struct PreparedItem<'a> {
    /// Index into the batch's item (and result) list.
    item: usize,
    image: &'a ProgramImage,
    config: &'a CampaignConfig,
    faulty: ExecConfig,
    golden: RunResult,
    plans: Vec<InjectionPlan>,
    /// Next unclaimed injection index of this image.
    next: AtomicUsize,
    /// Raised when this image's abort condition is met; checked before
    /// every claim, so claimed indices form a contiguous prefix.
    stop: AtomicBool,
    /// Completion-order counts driving the stop flag; authoritative counts
    /// are recomputed in index order by the reducer.
    live_counts: Mutex<OutcomeCounts>,
    collected: Mutex<Vec<(usize, InjectionRecord)>>,
    hist: Histogram,
}

/// Result of one [`CampaignBatch`] run.
#[derive(Debug)]
#[non_exhaustive]
pub struct BatchResult {
    /// Per-image campaign results, in the order the images were pushed.
    /// Each `Ok` carries the image's full [`CampaignResult`] with the
    /// deterministic payload identical to a standalone [`run_campaign`]
    /// (see the module docs for the exact surface); its
    /// [`CampaignResult::worker_stats`] is empty because workers belong to
    /// the pool, not to any one image.
    ///
    /// [`run_campaign`]: crate::campaign::run_campaign
    pub results: Vec<Result<CampaignResult, CampaignError>>,
    /// The shared pool's execution statistics, one entry per pool worker.
    pub worker_stats: Vec<WorkerStats>,
}

/// A set of per-image campaigns executed by one shared worker pool.
///
/// ```
/// use std::sync::Arc;
/// use bw_fault::{CampaignBatch, CampaignConfig, FaultModel};
/// use bw_vm::ProgramImage;
///
/// let image = Arc::new(ProgramImage::prepare_default(
///     bw_ir::frontend::compile(
///         "shared int n = 8;
///          @spmd func f() {
///              for (var i: int = 0; i < n; i = i + 1) {
///                  if (i == threadid()) { output(i); }
///              }
///          }",
///     )
///     .unwrap(),
/// ));
/// let mut batch = CampaignBatch::new().workers(2);
/// for seed in 0..4u64 {
///     batch.push(
///         Arc::clone(&image),
///         CampaignConfig::new(5, FaultModel::BranchFlip, 2).seed(seed),
///     );
/// }
/// let outcome = batch.run();
/// assert_eq!(outcome.results.len(), 4);
/// for result in &outcome.results {
///     assert_eq!(result.as_ref().unwrap().records.len(), 5);
/// }
/// ```
#[derive(Default)]
pub struct CampaignBatch {
    items: Vec<(Arc<ProgramImage>, CampaignConfig)>,
    workers: usize,
}

impl CampaignBatch {
    /// An empty batch.
    pub fn new() -> Self {
        CampaignBatch { items: Vec::new(), workers: 0 }
    }

    /// Sets the shared pool's worker count (`0` = available parallelism).
    /// The per-image `workers` settings of pushed configs are ignored —
    /// the pool is the batch's.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Adds one image's campaign to the batch. Results come back in push
    /// order.
    pub fn push(&mut self, image: Arc<ProgramImage>, config: CampaignConfig) {
        self.items.push((image, config));
    }

    /// Number of campaigns in the batch.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the batch has no campaigns.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Runs every campaign through one shared worker pool.
    pub fn run(&self) -> BatchResult {
        self.run_recorded(&NULL_RECORDER)
    }

    /// [`CampaignBatch::run`] with a structured-event [`Recorder`]: stage
    /// spans (`batch.prepare`, `batch.execute`, `batch.reduce`) plus one
    /// `injection` event per experiment (tagged with its image index) and
    /// one `worker` event per pool worker.
    pub fn run_recorded(&self, recorder: &dyn Recorder) -> BatchResult {
        // Stage 1 (per image): golden run, validation, plan derivation.
        // Goldens run sequentially — they are few and the deterministic
        // engine is single-threaded anyway.
        let span = tm_span!(recorder, "batch.prepare");
        let mut slots: Vec<Option<CampaignError>> = Vec::with_capacity(self.items.len());
        let mut prepared: Vec<PreparedItem<'_>> = Vec::new();
        for (item, (image, config)) in self.items.iter().enumerate() {
            if config.sim.nthreads == 0 {
                slots.push(Some(CampaignError::NoThreads));
                continue;
            }
            let golden = engine(config.engine).run(image, &config.sim);
            match validate_and_plan(config, &golden) {
                Ok((faulty, plans)) => {
                    let capacity = plans.len();
                    prepared.push(PreparedItem {
                        item,
                        image,
                        config,
                        faulty,
                        golden,
                        plans,
                        next: AtomicUsize::new(0),
                        stop: AtomicBool::new(false),
                        live_counts: Mutex::new(OutcomeCounts::default()),
                        collected: Mutex::new(Vec::with_capacity(capacity)),
                        hist: Histogram::new(),
                    });
                    slots.push(None);
                }
                Err(error) => slots.push(Some(error)),
            }
        }
        let total_jobs: usize = prepared.iter().map(|p| p.plans.len()).sum();
        span.finish(&[
            ("images", Value::from(prepared.len())),
            ("injections", Value::from(total_jobs)),
        ]);

        // Stage 2: one pool over all images. The cursor names the first
        // image that may still have unclaimed work; workers advance it
        // (compare-exchange, so exactly one advance per exhausted image)
        // and claim from the image's own counter, preserving the per-image
        // contiguous-prefix invariant.
        let span = tm_span!(recorder, "batch.execute");
        let cursor = AtomicUsize::new(0);
        let worker = |wid: usize| -> WorkerStats {
            let started = Instant::now();
            let mut stats = WorkerStats { worker: wid, ..WorkerStats::default() };
            loop {
                let current = cursor.load(Ordering::Relaxed);
                if current >= prepared.len() {
                    break;
                }
                let p = &prepared[current];
                if p.stop.load(Ordering::Relaxed) {
                    let _ = cursor.compare_exchange(
                        current,
                        current + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                    continue;
                }
                let index = p.next.fetch_add(1, Ordering::Relaxed);
                if index >= p.plans.len() {
                    let _ = cursor.compare_exchange(
                        current,
                        current + 1,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    );
                    continue;
                }
                let plan = p.plans[index];
                let run_started = Instant::now();
                let record =
                    execute_one(engine(p.config.engine), p.image, &p.faulty, &p.golden, plan);
                let run_us = run_started.elapsed().as_micros() as u64;
                stats.injections += 1;
                stats.busy_us += run_us;
                tm_observe!(p.hist, run_us);
                let _category = crate::campaign::injection_category(p.image, record.branch);
                tm_event!(recorder, "injection",
                    "image" => p.item,
                    "index" => index,
                    "worker" => wid,
                    "outcome" => record.outcome.name(),
                    "branch" => record.branch.map_or_else(|| "-".to_string(), |b| b.to_string()),
                    "category" => _category,
                    "dur_us" => run_us);
                if let Some(_report) = record.report.as_deref() {
                    tm_event!(recorder, "violation",
                        "image" => p.item,
                        "index" => index,
                        "branch" => _report.violation.branch,
                        "site" => _report.violation.site,
                        "iter" => _report.violation.iter,
                        "kind" => bw_monitor::kind_name(_report.violation.kind),
                        "category" => _report.category(),
                        "predicted" => _report.predicted(),
                        "reporters" => _report.violation.reporters,
                        "detected_seq" => _report.detected_seq,
                        "latency" => _report
                            .detection_latency
                            .map_or_else(|| "?".to_string(), |l| l.to_string()),
                        "observed" => _report.observed_field(),
                        "deviants" => _report.deviants_field(),
                        "majority" => _report.majority_field(),
                        "window" => _report.window_field());
                }
                {
                    let mut counts = p.live_counts.lock().unwrap();
                    counts.add(record.outcome);
                    if abort_reached(p.config, &counts) {
                        p.stop.store(true, Ordering::Relaxed);
                    }
                }
                p.collected.lock().unwrap().push((index, record));
            }
            stats.wall_us = started.elapsed().as_micros() as u64;
            stats
        };

        let nworkers = effective_pool(self.workers, total_jobs);
        let mut worker_stats = Vec::with_capacity(nworkers);
        if nworkers <= 1 {
            worker_stats.push(worker(0));
        } else {
            std::thread::scope(|scope| {
                // The closure captures only shared references, so it is
                // `Copy`: every spawn gets its own copy of the same borrows.
                let handles: Vec<_> =
                    (0..nworkers).map(|wid| scope.spawn(move || worker(wid))).collect();
                for handle in handles {
                    worker_stats.push(handle.join().expect("batch worker panicked"));
                }
            });
        }
        worker_stats.sort_unstable_by_key(|s| s.worker);
        span.finish(&[("workers", Value::from(worker_stats.len()))]);

        // Stage 3 (per image): the same index-order reduce as the
        // single-image engine, then result assembly.
        let span = tm_span!(recorder, "batch.reduce");
        let mut results: Vec<Result<CampaignResult, CampaignError>> = slots
            .into_iter()
            .map(|slot| {
                Err(slot.unwrap_or(CampaignError::NoThreads)) // placeholder; Ok slots overwritten below
            })
            .collect();
        for p in prepared {
            let pairs = p.collected.into_inner().unwrap();
            let (records, counts, aborted) = reduce_campaign(pairs, p.config);
            let telemetry = campaign_telemetry(
                &records,
                &counts,
                &p.golden,
                worker_stats.len(),
                &p.hist,
            );
            results[p.item] = Ok(CampaignResult {
                records,
                counts,
                golden_outputs_len: p.golden.outputs.len(),
                branches_per_thread: p.golden.branches_per_thread.clone(),
                aborted,
                worker_stats: Vec::new(),
                telemetry,
            });
        }
        span.finish(&[("images", Value::from(results.len()))]);
        for _stats in &worker_stats {
            tm_event!(recorder, "worker",
                "worker" => _stats.worker,
                "injections" => _stats.injections,
                "wall_us" => _stats.wall_us,
                "busy_us" => _stats.busy_us);
        }
        recorder.flush();

        BatchResult { results, worker_stats }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::injector::FaultModel;

    fn image(src: &str) -> Arc<ProgramImage> {
        Arc::new(ProgramImage::prepare_default(bw_ir::frontend::compile(src).expect("compile")))
    }

    const SRC: &str = r#"
        shared int n = 12;
        @spmd func f() {
            var t: int = threadid();
            for (var i: int = 0; i < n; i = i + 1) {
                if (i == t) { output(i * 2); }
            }
        }
    "#;

    #[test]
    fn empty_batch_runs() {
        let outcome = CampaignBatch::new().run();
        assert!(outcome.results.is_empty());
    }

    #[test]
    fn batch_matches_sequential_campaigns() {
        let img = image(SRC);
        let configs: Vec<CampaignConfig> = (0..4)
            .map(|i| CampaignConfig::new(8, FaultModel::BranchFlip, 2).seed(0x1000 + i))
            .collect();
        let mut batch = CampaignBatch::new().workers(3);
        for config in &configs {
            batch.push(Arc::clone(&img), config.clone());
        }
        let outcome = batch.run();
        for (config, result) in configs.iter().zip(&outcome.results) {
            let batched = result.as_ref().expect("batch campaign failed");
            let alone = run_campaign(&img, &config.clone().workers(1)).expect("campaign");
            assert_eq!(batched.records, alone.records);
            assert_eq!(batched.counts, alone.counts);
            assert_eq!(batched.aborted, alone.aborted);
            assert_eq!(batched.branches_per_thread, alone.branches_per_thread);
            assert_eq!(batched.golden_outputs_len, alone.golden_outputs_len);
        }
    }

    #[test]
    fn per_image_errors_do_not_poison_the_batch() {
        let img = image(SRC);
        let mut batch = CampaignBatch::new().workers(2);
        batch.push(Arc::clone(&img), CampaignConfig::new(4, FaultModel::BranchFlip, 0));
        batch.push(Arc::clone(&img), CampaignConfig::new(4, FaultModel::BranchFlip, 2));
        let outcome = batch.run();
        assert_eq!(outcome.results.len(), 2);
        assert!(matches!(outcome.results[0], Err(CampaignError::NoThreads)));
        assert_eq!(outcome.results[1].as_ref().unwrap().records.len(), 4);
    }

    #[test]
    fn abort_conditions_are_honoured_per_image() {
        let img = image(SRC);
        let mut batch = CampaignBatch::new().workers(2);
        let aborting =
            CampaignConfig::new(64, FaultModel::BranchFlip, 2).abort_on_detection(true);
        let full = CampaignConfig::new(16, FaultModel::BranchFlip, 2);
        batch.push(Arc::clone(&img), aborting.clone());
        batch.push(Arc::clone(&img), full.clone());
        let outcome = batch.run();
        let alone = run_campaign(&img, &aborting.clone().workers(1)).expect("campaign");
        let batched = outcome.results[0].as_ref().unwrap();
        assert_eq!(batched.records, alone.records);
        assert_eq!(batched.aborted, alone.aborted);
        assert_eq!(outcome.results[1].as_ref().unwrap().records.len(), 16);
    }
}
