//! Fault models and the injection hook.
//!
//! The PIN-based injector of the paper picks one dynamic branch of one
//! thread and flips a single bit in either the flag register (the branch
//! goes the wrong, but legal, way) or the branch's condition variable (the
//! corruption persists in the register and may or may not flip the branch).
//! [`InjectionHook`] does exactly this at interpreter level, via the VM's
//! [`BranchHook`] integration point.

use std::sync::atomic::{AtomicU64, Ordering};

use bw_ir::BranchId;
use bw_vm::{BranchHook, FaultAction, SharedBranchHook};
use serde::{Deserialize, Serialize};

/// The two fault models of the paper's Section IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultModel {
    /// Single bit flip in the flag register: the chosen dynamic branch's
    /// outcome is inverted, program data is untouched.
    BranchFlip,
    /// Single bit flip in the branch's condition data: persists in the
    /// register, may or may not flip the branch, and is visible to the
    /// instrumentation's witness.
    ConditionBitFlip,
}

/// The exact injection point and parameters of one experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionPlan {
    /// Thread to inject into.
    pub tid: u32,
    /// 1-based dynamic branch index within that thread.
    pub dyn_index: u64,
    /// Fault model.
    pub model: FaultModel,
    /// For [`FaultModel::ConditionBitFlip`]: which condition-data value to
    /// corrupt (taken modulo the number of candidates).
    pub value_choice: u32,
    /// For [`FaultModel::ConditionBitFlip`]: which bit to flip.
    pub bit: u8,
}

/// Sentinel for "not yet activated" in [`InjectionHook`]'s atomic slot
/// (branch ids are `u32`, so this value is unreachable).
const NOT_ACTIVATED: u64 = u64::MAX;

/// A branch hook that fires once at the planned injection point.
///
/// Usable from both engines: as a [`BranchHook`] on the single-OS-thread
/// simulator and as a [`SharedBranchHook`] across the real engine's worker
/// threads — a compare-and-swap on the activation slot guarantees the fault
/// fires exactly once even when several threads race past the target
/// dynamic index.
#[derive(Debug)]
pub struct InjectionHook {
    plan: InjectionPlan,
    /// `NOT_ACTIVATED`, or the static branch id the fault landed on.
    injected: AtomicU64,
}

impl InjectionHook {
    /// Creates the hook for one injection experiment.
    pub fn new(plan: InjectionPlan) -> Self {
        InjectionHook { plan, injected: AtomicU64::new(NOT_ACTIVATED) }
    }

    /// Whether the fault was actually injected (the target dynamic branch
    /// was reached).
    pub fn activated(&self) -> bool {
        self.injected_branch().is_some()
    }

    /// The static branch the fault landed on, once activated.
    pub fn injected_branch(&self) -> Option<BranchId> {
        match self.injected.load(Ordering::Acquire) {
            NOT_ACTIVATED => None,
            id => Some(BranchId(id as u32)),
        }
    }
}

impl SharedBranchHook for InjectionHook {
    fn on_shared_branch(&self, tid: u32, dyn_index: u64, branch: BranchId) -> Option<FaultAction> {
        if tid != self.plan.tid || dyn_index != self.plan.dyn_index {
            return None;
        }
        // Fire-once: only the thread that wins the CAS applies the fault.
        // (One dynamic index occurs at most once per thread per phase, but
        // init/fini re-run as thread 0 with a fresh index stream, so the
        // same (tid, dyn_index) can legitimately be seen more than once.)
        if self
            .injected
            .compare_exchange(
                NOT_ACTIVATED,
                u64::from(branch.0),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .is_err()
        {
            return None;
        }
        Some(match self.plan.model {
            FaultModel::BranchFlip => FaultAction::FlipOutcome,
            FaultModel::ConditionBitFlip => FaultAction::CorruptData {
                value_choice: self.plan.value_choice,
                bit: self.plan.bit,
            },
        })
    }
}

impl BranchHook for InjectionHook {
    fn on_branch(&mut self, tid: u32, dyn_index: u64, branch: BranchId) -> Option<FaultAction> {
        self.on_shared_branch(tid, dyn_index, branch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_exactly_once_at_the_target() {
        let mut hook = InjectionHook::new(InjectionPlan {
            tid: 1,
            dyn_index: 3,
            model: FaultModel::BranchFlip,
            value_choice: 0,
            bit: 0,
        });
        assert_eq!(hook.on_branch(0, 3, BranchId(0)), None); // wrong thread
        assert_eq!(hook.on_branch(1, 2, BranchId(0)), None); // wrong index
        assert!(!hook.activated());
        assert_eq!(hook.on_branch(1, 3, BranchId(7)), Some(FaultAction::FlipOutcome));
        assert!(hook.activated());
        assert_eq!(hook.injected_branch(), Some(BranchId(7)));
        // Never fires again.
        assert_eq!(hook.on_branch(1, 3, BranchId(7)), None);
    }

    #[test]
    fn condition_model_requests_corruption() {
        let mut hook = InjectionHook::new(InjectionPlan {
            tid: 0,
            dyn_index: 1,
            model: FaultModel::ConditionBitFlip,
            value_choice: 2,
            bit: 17,
        });
        assert_eq!(
            hook.on_branch(0, 1, BranchId(0)),
            Some(FaultAction::CorruptData { value_choice: 2, bit: 17 })
        );
    }
}
