//! Fault-injection campaigns: golden run, N randomized injections,
//! outcome classification and coverage statistics — the experimental
//! procedure of the paper's Section IV.
//!
//! A campaign runs in three explicit stages:
//!
//! 1. **Plan** ([`plan_campaign`]): every [`InjectionPlan`] is derived up
//!    front from a per-injection PRNG stream keyed on
//!    `(campaign_seed, injection_index)`, so the set of planned faults is
//!    a pure function of the configuration — independent of how the
//!    experiments are later scheduled.
//! 2. **Execute**: a `std::thread` worker pool shares the immutable
//!    [`ProgramImage`] and claims injection indices from an atomic
//!    counter. Claimed indices always form a contiguous prefix of the
//!    plan list, which is what makes early abort deterministic.
//! 3. **Reduce**: records are merged in injection-index order and the
//!    abort cut (stop after N SDCs, stop on first detection) is
//!    recomputed over that deterministic order. The result is therefore
//!    **bitwise identical for any worker count**.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use bw_telemetry::{
    tm_event, tm_observe, tm_span, Histogram, Recorder, TelemetrySnapshot, TimeDomain, TraceScope,
    Value, NULL_RECORDER,
};
use bw_monitor::ViolationReport;
use bw_vm::{
    engine, Engine, EngineKind, ExecConfig, ProgramImage, RunOutcome, RunResult, SimConfig,
    SplitMix64,
};
use serde::{Deserialize, Serialize};

use crate::injector::{FaultModel, InjectionHook, InjectionPlan};

// The campaign engine shares `&ProgramImage` (and the golden `RunResult`)
// across worker threads; fail the build loudly if either ever grows
// interior mutability that would make that unsound.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<ProgramImage>();
    assert_sync::<RunResult>();
    assert_sync::<SimConfig>();
};

/// Classification of one injection experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The fault did not reach its target branch (e.g. the thread executed
    /// fewer branches than profiled — cannot happen in the deterministic
    /// engine, kept for API completeness) or the thread had no branches.
    NotActivated,
    /// The monitor flagged a violation.
    Detected,
    /// The program crashed (trap).
    Crashed,
    /// The program hung (deadlock or step-budget exhaustion).
    Hung,
    /// The program completed with the golden output.
    Masked,
    /// Silent data corruption: completed with wrong output.
    Sdc,
}

impl FaultOutcome {
    /// Stable lowercase name, used in telemetry records and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::NotActivated => "not_activated",
            FaultOutcome::Detected => "detected",
            FaultOutcome::Crashed => "crashed",
            FaultOutcome::Hung => "hung",
            FaultOutcome::Masked => "masked",
            FaultOutcome::Sdc => "sdc",
        }
    }
}

/// Aggregate counts of a campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Injections that did not activate.
    pub not_activated: usize,
    /// Monitor detections.
    pub detected: usize,
    /// Crashes.
    pub crashed: usize,
    /// Hangs.
    pub hung: usize,
    /// Benign (masked) faults.
    pub masked: usize,
    /// Silent data corruptions.
    pub sdc: usize,
}

impl OutcomeCounts {
    /// Number of activated injections.
    pub fn activated(&self) -> usize {
        self.detected + self.crashed + self.hung + self.masked + self.sdc
    }

    /// The paper's coverage metric: the probability that an activated fault
    /// does **not** lead to an SDC (`1 − SDC_f`). Crashes, hangs, masked
    /// faults and detections all count as covered.
    pub fn coverage(&self) -> f64 {
        let activated = self.activated();
        if activated == 0 {
            return 1.0;
        }
        1.0 - self.sdc as f64 / activated as f64
    }

    /// Fraction of activated faults the monitor itself detected.
    pub fn detection_rate(&self) -> f64 {
        let activated = self.activated();
        if activated == 0 {
            return 0.0;
        }
        self.detected as f64 / activated as f64
    }

    pub(crate) fn add(&mut self, outcome: FaultOutcome) {
        match outcome {
            FaultOutcome::NotActivated => self.not_activated += 1,
            FaultOutcome::Detected => self.detected += 1,
            FaultOutcome::Crashed => self.crashed += 1,
            FaultOutcome::Hung => self.hung += 1,
            FaultOutcome::Masked => self.masked += 1,
            FaultOutcome::Sdc => self.sdc += 1,
        }
    }
}

/// One injection's record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// What was injected where.
    pub plan: InjectionPlan,
    /// The static branch hit, if activated.
    pub branch: Option<u32>,
    /// The classification.
    pub outcome: FaultOutcome,
    /// The first [`ViolationReport`] of the faulty run, when the monitor
    /// detected it and the `provenance` feature is on: the causal evidence
    /// tying this injection to its detection (deviant threads, flight-
    /// recorder window, latency). Boxed to keep the record small for the
    /// common undetected case.
    pub report: Option<Box<ViolationReport>>,
    /// Monitor messages between the corruption entering the event stream
    /// and the check firing (see [`ViolationReport::detection_latency`]);
    /// `None` when undetected or when the deviant aged out of the ring.
    pub detection_latency: Option<u64>,
}

/// Why a campaign could not run.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CampaignError {
    /// The golden (fault-free) run did not complete: the program must be
    /// correct before faults are injected into it.
    GoldenRunFailed {
        /// How the golden run actually ended.
        outcome: RunOutcome,
    },
    /// The campaign was configured with zero threads — there is nothing to
    /// inject into.
    NoThreads,
    /// A cached golden run was provided (see `run_campaign_with_golden`)
    /// but does not match the campaign's thread count.
    GoldenMismatch {
        /// Threads the campaign configuration asks for.
        expected: usize,
        /// Threads the supplied golden run actually profiled.
        actual: usize,
    },
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::GoldenRunFailed { outcome } => {
                write!(f, "golden run did not complete (ended {outcome:?}); refusing to inject faults into an already-failing program")
            }
            CampaignError::NoThreads => {
                write!(f, "campaign configured with zero threads; nothing to inject into")
            }
            CampaignError::GoldenMismatch { expected, actual } => {
                write!(
                    f,
                    "cached golden run profiled {actual} thread(s) but the campaign is configured for {expected}"
                )
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A streaming progress report, delivered once per finished injection.
///
/// With more than one worker, reports arrive in completion order (which is
/// nondeterministic); `completed`/`total` are still monotonic and exact.
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct CampaignProgress {
    /// Index of the injection that just finished.
    pub index: usize,
    /// Its classification.
    pub outcome: FaultOutcome,
    /// Number of injections finished so far (including this one).
    pub completed: usize,
    /// Number of injections planned.
    pub total: usize,
    /// Microseconds since the campaign's execute stage started. Wall
    /// clock: display material only — it never flows into results, so
    /// same-seed determinism is unaffected.
    pub elapsed_us: u64,
}

impl CampaignProgress {
    /// Completed injections per second so far (`0.0` before the clock
    /// has measurably advanced).
    pub fn rate(&self) -> f64 {
        if self.elapsed_us == 0 {
            0.0
        } else {
            self.completed as f64 * 1e6 / self.elapsed_us as f64
        }
    }

    /// Estimated microseconds until the remaining injections finish at
    /// the current rate; `None` until there is a rate to extrapolate.
    pub fn eta_us(&self) -> Option<u64> {
        if self.completed == 0 || self.elapsed_us == 0 {
            return None;
        }
        let remaining = self.total.saturating_sub(self.completed) as f64;
        Some((remaining * self.elapsed_us as f64 / self.completed as f64) as u64)
    }
}

/// The progress-callback type accepted by the `*_with` campaign entry
/// points. Called from worker threads, hence `Sync`.
pub type ProgressFn<'a> = dyn Fn(CampaignProgress) + Sync + 'a;

/// Campaign configuration.
///
/// Construct with [`CampaignConfig::new`] and refine with the builder-style
/// setters; the struct is `#[non_exhaustive]`, so literal construction is
/// reserved for this crate.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CampaignConfig {
    /// Number of injection experiments.
    pub injections: usize,
    /// Fault model for every experiment.
    pub model: FaultModel,
    /// RNG seed for target selection. Each injection derives its own PRNG
    /// stream from `(seed, injection_index)`, so results do not depend on
    /// worker scheduling.
    pub seed: u64,
    /// The execution configuration (thread count, monitor mode, …). The
    /// golden run uses the same configuration with no fault.
    pub sim: ExecConfig,
    /// Which execution engine runs the golden and faulty experiments.
    /// Defaults to [`EngineKind::Sim`], the deterministic scheduler the
    /// paper's tables are built on. [`EngineKind::Real`] runs every
    /// experiment on real OS threads — classifications then inherit the
    /// host's scheduling nondeterminism (an SDC verdict compares against a
    /// golden run whose output order must be schedule-independent), so use
    /// it for exercising the concurrent machinery, not for reproducing the
    /// paper's numbers. Consider lowering [`ExecConfig::watchdog_ms`]: a
    /// deadlocked real-engine experiment costs that long in wall time.
    pub engine: EngineKind,
    /// Worker threads for the execution stage; `0` means
    /// `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Stop early once this many SDCs have been observed. The surviving
    /// record prefix is identical at any worker count.
    pub abort_after_sdc: Option<usize>,
    /// Stop early at the first monitor detection.
    pub abort_on_detection: bool,
}

impl CampaignConfig {
    /// A campaign of `injections` faults of `model` on `nthreads` threads.
    pub fn new(injections: usize, model: FaultModel, nthreads: u32) -> Self {
        CampaignConfig {
            injections,
            model,
            seed: 0xfa_017,
            sim: SimConfig::new(nthreads),
            engine: EngineKind::Sim,
            workers: 0,
            abort_after_sdc: None,
            abort_on_detection: false,
        }
    }

    /// Sets the target-selection seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the execution engine (see [`CampaignConfig::engine`]).
    pub fn engine(mut self, engine: EngineKind) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the worker-thread count (`0` = available parallelism).
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Replaces the simulation configuration wholesale.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Stops the campaign once `n` SDCs have been observed.
    pub fn abort_after_sdc(mut self, n: usize) -> Self {
        self.abort_after_sdc = Some(n);
        self
    }

    /// Stops the campaign at the first monitor detection.
    pub fn abort_on_detection(mut self, yes: bool) -> Self {
        self.abort_on_detection = yes;
        self
    }
}

/// Execution statistics of one campaign worker thread.
///
/// Which injections land on which worker depends on OS scheduling, so
/// these statistics (unlike the records and counts) are **not**
/// deterministic across runs with more than one worker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker index, `0..nworkers`.
    pub worker: usize,
    /// Injections this worker executed.
    pub injections: u64,
    /// Wall-clock microseconds from worker start to exit.
    pub wall_us: u64,
    /// Microseconds spent inside injection runs (excludes claiming and
    /// bookkeeping); `wall_us - busy_us` is coordination overhead.
    pub busy_us: u64,
}

impl WorkerStats {
    /// Injections per second over the worker's wall time.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            return 0.0;
        }
        self.injections as f64 * 1e6 / self.wall_us as f64
    }
}

/// Results of a campaign.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct CampaignResult {
    /// Per-injection records, in injection-index order. When the campaign
    /// aborted early this is the exact prefix up to (and including) the
    /// injection that tripped the abort condition.
    pub records: Vec<InjectionRecord>,
    /// Aggregate counts over `records`.
    pub counts: OutcomeCounts,
    /// The golden (fault-free) run the experiments were compared against.
    pub golden_outputs_len: usize,
    /// Dynamic branches per thread in the golden run.
    pub branches_per_thread: Vec<u64>,
    /// Whether an early-abort condition was reached.
    pub aborted: bool,
    /// Per-worker execution statistics, sorted by worker index. Wall-clock
    /// based, hence nondeterministic (see [`WorkerStats`]).
    pub worker_stats: Vec<WorkerStats>,
    /// Telemetry: deterministic `campaign.*` outcome counters, the golden
    /// run's instruments under a `golden.` prefix, and (with the
    /// `telemetry` feature) wall-time histograms.
    pub telemetry: TelemetrySnapshot,
}

impl CampaignResult {
    /// The paper's coverage metric (see [`OutcomeCounts::coverage`]).
    pub fn coverage(&self) -> f64 {
        self.counts.coverage()
    }
}

/// Classifies one faulty run against the golden run. Detection has
/// priority (the paper checks "whether it is detected by the monitor"
/// first), then crash/hang, then output comparison.
pub fn classify(result: &RunResult, golden: &RunResult, activated: bool) -> FaultOutcome {
    if !activated {
        return FaultOutcome::NotActivated;
    }
    if result.detected() {
        return FaultOutcome::Detected;
    }
    match result.outcome {
        RunOutcome::Crashed(_) => FaultOutcome::Crashed,
        RunOutcome::Hung => FaultOutcome::Hung,
        RunOutcome::Completed => {
            if result.outputs == golden.outputs {
                FaultOutcome::Masked
            } else {
                FaultOutcome::Sdc
            }
        }
    }
}

/// SplitMix64's output finalizer, used to key per-injection streams.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The independent PRNG stream of injection `index` under `seed`.
fn injection_rng(seed: u64, index: usize) -> SplitMix64 {
    let lane = (index as u64).wrapping_add(1).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    SplitMix64::new(mix64(seed ^ lane))
}

/// Stage 1: derives the full list of injection plans from the golden run's
/// per-thread dynamic branch counts (the paper's PIN profiling output).
///
/// Plan `i` is drawn from a PRNG stream keyed on `(config.seed, i)`, so
/// the list is a pure function of `(branches_per_thread, config)` — no
/// state is threaded between injections and no scheduling decision can
/// perturb it.
pub fn plan_campaign(branches_per_thread: &[u64], config: &CampaignConfig) -> Vec<InjectionPlan> {
    let nthreads = branches_per_thread.len().min(config.sim.nthreads as usize);
    (0..config.injections)
        .map(|index| {
            let mut rng = injection_rng(config.seed, index);
            // Pick a random thread, then a random dynamic branch of it.
            let tid = rng.below(nthreads as i64) as u32;
            let nbranches = branches_per_thread[tid as usize];
            InjectionPlan {
                tid,
                dyn_index: if nbranches == 0 { 1 } else { 1 + rng.below(nbranches as i64) as u64 },
                model: config.model,
                value_choice: rng.below(1 << 16) as u32,
                bit: rng.below(64) as u8,
            }
        })
        .collect()
}

/// Whether `counts` satisfies one of the configured early-abort
/// conditions. Both conditions are monotone in the counts, which is what
/// lets the reducer recompute the abort cut deterministically.
pub(crate) fn abort_reached(config: &CampaignConfig, counts: &OutcomeCounts) -> bool {
    config.abort_after_sdc.is_some_and(|n| counts.sdc >= n)
        || (config.abort_on_detection && counts.detected > 0)
}

fn effective_workers(config: &CampaignConfig, njobs: usize) -> usize {
    effective_pool(config.workers, njobs)
}

/// The similarity-category name of the branch an injection landed on, or
/// `"-"` when it missed or hit an uninstrumented branch. Tagged onto
/// `injection` trace events so reports can build per-category
/// coverage/detection matrices over *all* activated injections, not just
/// detected ones.
pub(crate) fn injection_category(image: &ProgramImage, branch: Option<u32>) -> &'static str {
    branch
        .and_then(|b| image.plan.decisions.get(b as usize))
        .and_then(|d| d.as_ref().ok())
        .map_or("-", |c| bw_monitor::category_name(c.kind))
}

/// Worker-pool sizing shared with [`crate::batch`]: `0` = available
/// parallelism, clamped to the job count.
pub(crate) fn effective_pool(workers: usize, njobs: usize) -> usize {
    let requested = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    requested.clamp(1, njobs.max(1))
}

/// Runs exactly one injection experiment on `eng` and classifies it. The
/// unit of work shared by [`execute_campaign`] and the cross-image
/// [`crate::batch::CampaignBatch`] pool.
pub(crate) fn execute_one(
    eng: &dyn Engine,
    image: &ProgramImage,
    faulty: &ExecConfig,
    golden: &RunResult,
    plan: InjectionPlan,
) -> InjectionRecord {
    let hook = InjectionHook::new(plan);
    let result = eng.run_hooked(image, faulty, &hook);
    let outcome = classify(&result, golden, hook.activated());
    // Attribute the outcome causally: the first violation report (reports
    // are sorted by (site, branch, iter), so "first" is deterministic) is
    // the earliest-keyed evidence the monitor produced for this run.
    let report = if outcome == FaultOutcome::Detected {
        result.violation_reports.first().cloned().map(Box::new)
    } else {
        None
    };
    let detection_latency = report.as_ref().and_then(|r| r.detection_latency);
    InjectionRecord {
        plan,
        branch: hook.injected_branch().map(|b| b.0),
        outcome,
        report,
        detection_latency,
    }
}

/// Validates a golden run against the campaign configuration and derives
/// the faulty-run config plus the full plan list. Shared by the
/// single-image entry points and [`crate::batch::CampaignBatch`].
pub(crate) fn validate_and_plan(
    config: &CampaignConfig,
    golden: &RunResult,
) -> Result<(ExecConfig, Vec<InjectionPlan>), CampaignError> {
    if config.sim.nthreads == 0 {
        return Err(CampaignError::NoThreads);
    }
    if golden.outcome != RunOutcome::Completed {
        return Err(CampaignError::GoldenRunFailed { outcome: golden.outcome });
    }
    if golden.branches_per_thread.len() != config.sim.nthreads as usize {
        return Err(CampaignError::GoldenMismatch {
            expected: config.sim.nthreads as usize,
            actual: golden.branches_per_thread.len(),
        });
    }
    // Faulty runs get a step budget derived from the golden run: a fault
    // that corrupts a loop bound can otherwise spin for billions of steps
    // before the generic cutoff declares a hang (the paper's injector uses
    // a timeout for the same reason).
    let faulty = config
        .sim
        .clone()
        .max_steps(golden.total_steps.saturating_mul(8).saturating_add(100_000));
    let plans = plan_campaign(&golden.branches_per_thread, config);
    Ok((faulty, plans))
}

/// Assembles the deterministic result-payload telemetry of one campaign:
/// outcome counters, the worker gauge, the injection-wall-time histogram
/// and the golden run's own instruments under a `golden.` prefix. Shared
/// by the single-image entry points and [`crate::batch::CampaignBatch`].
pub(crate) fn campaign_telemetry(
    records: &[InjectionRecord],
    counts: &OutcomeCounts,
    golden: &RunResult,
    nworkers: usize,
    inj_hist: &Histogram,
) -> TelemetrySnapshot {
    let mut telemetry = TelemetrySnapshot::new();
    telemetry.push_counter("campaign.injections", records.len() as u64);
    telemetry.push_counter("campaign.outcome.not_activated", counts.not_activated as u64);
    telemetry.push_counter("campaign.outcome.detected", counts.detected as u64);
    telemetry.push_counter("campaign.outcome.crashed", counts.crashed as u64);
    telemetry.push_counter("campaign.outcome.hung", counts.hung as u64);
    telemetry.push_counter("campaign.outcome.masked", counts.masked as u64);
    telemetry.push_counter("campaign.outcome.sdc", counts.sdc as u64);
    telemetry.push_gauge("campaign.workers", nworkers as u64);
    telemetry.push_histogram("campaign.injection_us", inj_hist.snapshot());
    // Detection-latency distribution per similarity category: monitor
    // messages between the corruption and the check firing, from each
    // detected record's provenance. Deterministic (derived from the
    // reduced records, not wall time); absent without detections or
    // without the `provenance` feature.
    let mut latency: std::collections::BTreeMap<&'static str, Histogram> =
        std::collections::BTreeMap::new();
    for record in records {
        if let (Some(report), Some(events)) = (&record.report, record.detection_latency) {
            latency.entry(report.category()).or_default().observe(events);
        }
    }
    for (category, hist) in latency {
        telemetry.push_histogram(format!("campaign.detect_latency.{category}"), hist.snapshot());
    }
    // The golden run's own instruments, prefixed so queue pressure during
    // the fault-free run can be told apart from campaign costs.
    telemetry.merge(&golden.telemetry.prefixed("golden."));
    telemetry
}

/// Stage 2: runs every plan, claiming injection indices monotonically from
/// a shared counter. Because a worker checks the stop flag only *before*
/// claiming, the set of executed indices is always a contiguous prefix of
/// the plan list — with or without early abort, at any worker count.
/// Wall-time instruments threaded through the execution stage. Consumed
/// only by feature-gated macros; the underscore-prefixed bindings keep the
/// code warning-free when the `telemetry` feature is off.
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
struct ExecInstruments<'a> {
    inj_hist: &'a Histogram,
    recorder: &'a dyn Recorder,
}

/// Live-registry handles campaign workers bump once per injection. These
/// are process-cumulative (`live.campaign.*` keeps growing across the
/// protected and baseline campaigns of one `bw campaign` invocation, and
/// across fuzz batches), which is what turns them into rates under the
/// sampler. They feed the trace/`/metrics` side only — never the
/// campaign's own result snapshot.
struct CampaignLive {
    planned: std::sync::Arc<bw_telemetry::Counter>,
    completed: std::sync::Arc<bw_telemetry::Counter>,
    detected: std::sync::Arc<bw_telemetry::Counter>,
    injection_us: std::sync::Arc<Histogram>,
}

impl CampaignLive {
    /// Resolves the handles (cold: once per campaign) and accounts the
    /// new plan into `live.campaign.planned`. `None` when telemetry is
    /// compiled out.
    fn resolve(planned: usize) -> Option<CampaignLive> {
        if !bw_telemetry::ENABLED {
            return None;
        }
        let registry = bw_telemetry::MetricRegistry::global();
        let live = CampaignLive {
            planned: registry.counter("live.campaign.planned"),
            completed: registry.counter("live.campaign.completed"),
            detected: registry.counter("live.campaign.detected"),
            injection_us: registry.histogram("live.campaign.injection_us"),
        };
        live.planned.add(planned as u64);
        Some(live)
    }
}

/// Mirrors a completed campaign stage onto the trace timeline (the
/// `main` lane, wall-clock) when span tracing is active. Called after
/// the stage so a stage that returns early (error) leaves no span.
fn trace_stage(name: &str, start_us: u64, extra: &[(&str, Value)]) {
    if let Some(sink) = bw_telemetry::trace_sink() {
        bw_telemetry::record_span(
            sink.as_ref(),
            TimeDomain::WallUs,
            "main",
            "stage",
            name,
            start_us,
            bw_telemetry::wall_now_us().saturating_sub(start_us),
            extra,
        );
    }
}

#[allow(clippy::too_many_arguments)]
fn execute_campaign(
    image: &ProgramImage,
    faulty_sim: &ExecConfig,
    golden: &RunResult,
    plans: &[InjectionPlan],
    config: &CampaignConfig,
    progress: Option<&ProgressFn<'_>>,
    _instruments: &ExecInstruments<'_>,
) -> (Vec<(usize, InjectionRecord)>, Vec<WorkerStats>) {
    let eng = engine(config.engine);
    let campaign_started = Instant::now();
    let live = CampaignLive::resolve(plans.len());
    let live = live.as_ref();
    let next = AtomicUsize::new(0);
    let completed = AtomicUsize::new(0);
    let stop = AtomicBool::new(false);
    // Completion-order counts, used only to decide *when* to raise the stop
    // flag; the authoritative counts are recomputed in index order by the
    // reducer.
    let live_counts = Mutex::new(OutcomeCounts::default());
    let collected: Mutex<Vec<(usize, InjectionRecord)>> =
        Mutex::new(Vec::with_capacity(plans.len()));

    let worker = |wid: usize| -> WorkerStats {
        let started = Instant::now();
        let mut stats = WorkerStats { worker: wid, ..WorkerStats::default() };
        // Span tracing (`--trace-spans`): every record an injection's run
        // emits (sim-engine spans run inline on this thread) is scoped
        // with `inj`/`wid`, and the worker lane `w<wid>` gets one span
        // per injection. Resolved once per worker; `None` costs nothing.
        let trace = bw_telemetry::trace_sink();
        while !stop.load(Ordering::Relaxed) {
            let index = next.fetch_add(1, Ordering::Relaxed);
            if index >= plans.len() {
                break;
            }
            let plan = plans[index];
            let _scope = trace.as_ref().map(|_| {
                TraceScope::enter(&[
                    ("inj", Value::U64(index as u64)),
                    ("wid", Value::U64(wid as u64)),
                ])
            });
            let trace_start = trace.as_ref().map(|_| bw_telemetry::wall_now_us());
            let run_started = Instant::now();
            let record = execute_one(eng, image, faulty_sim, golden, plan);
            let outcome = record.outcome;
            let run_us = run_started.elapsed().as_micros() as u64;
            if let (Some(sink), Some(start)) = (trace.as_ref(), trace_start) {
                bw_telemetry::record_span(
                    sink.as_ref(),
                    TimeDomain::WallUs,
                    &format!("w{wid}"),
                    "injection",
                    &format!("inj {index}"),
                    start,
                    bw_telemetry::wall_now_us().saturating_sub(start),
                    &[("outcome", Value::from(outcome.name()))],
                );
            }
            stats.injections += 1;
            stats.busy_us += run_us;
            tm_observe!(_instruments.inj_hist, run_us);
            if let Some(live) = live {
                live.completed.inc();
                if outcome == FaultOutcome::Detected {
                    live.detected.inc();
                }
                live.injection_us.observe(run_us);
            }
            let _category = injection_category(image, record.branch);
            tm_event!(_instruments.recorder, "injection",
                "index" => index,
                "worker" => wid,
                "outcome" => outcome.name(),
                "branch" => record.branch.map_or_else(|| "-".to_string(), |b| b.to_string()),
                "category" => _category,
                "dur_us" => run_us);
            if let Some(_report) = record.report.as_deref() {
                tm_event!(_instruments.recorder, "violation",
                    "index" => index,
                    "branch" => _report.violation.branch,
                    "site" => _report.violation.site,
                    "iter" => _report.violation.iter,
                    "kind" => bw_monitor::kind_name(_report.violation.kind),
                    "category" => _report.category(),
                    "predicted" => _report.predicted(),
                    "reporters" => _report.violation.reporters,
                    "detected_seq" => _report.detected_seq,
                    "latency" => _report
                        .detection_latency
                        .map_or_else(|| "?".to_string(), |l| l.to_string()),
                    "observed" => _report.observed_field(),
                    "deviants" => _report.deviants_field(),
                    "majority" => _report.majority_field(),
                    "window" => _report.window_field());
            }
            {
                let mut counts = live_counts.lock().unwrap();
                counts.add(outcome);
                if abort_reached(config, &counts) {
                    stop.store(true, Ordering::Relaxed);
                }
            }
            collected.lock().unwrap().push((index, record));
            let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
            if let Some(callback) = progress {
                callback(CampaignProgress {
                    index,
                    outcome,
                    completed: done,
                    total: plans.len(),
                    elapsed_us: campaign_started.elapsed().as_micros() as u64,
                });
            }
        }
        stats.wall_us = started.elapsed().as_micros() as u64;
        stats
    };

    let nworkers = effective_workers(config, plans.len());
    let mut worker_stats = Vec::with_capacity(nworkers);
    if nworkers <= 1 {
        worker_stats.push(worker(0));
    } else {
        std::thread::scope(|scope| {
            // The closure captures only shared references, so it is `Copy`:
            // every spawn gets its own copy of the same borrows.
            let handles: Vec<_> =
                (0..nworkers).map(|wid| scope.spawn(move || worker(wid))).collect();
            for handle in handles {
                worker_stats.push(handle.join().expect("campaign worker panicked"));
            }
        });
    }
    worker_stats.sort_unstable_by_key(|s| s.worker);

    (collected.into_inner().unwrap(), worker_stats)
}

/// Stage 3: merges execution results in injection-index order and applies
/// the deterministic abort cut: records are kept up to (and including) the
/// first index at which an abort condition holds over the *prefix* counts.
/// Executed indices form a contiguous prefix at least as long as that cut,
/// so the surviving records — and every derived statistic — are identical
/// at any worker count.
pub(crate) fn reduce_campaign(
    mut pairs: Vec<(usize, InjectionRecord)>,
    config: &CampaignConfig,
) -> (Vec<InjectionRecord>, OutcomeCounts, bool) {
    pairs.sort_unstable_by_key(|&(index, _)| index);
    let mut counts = OutcomeCounts::default();
    let mut records = Vec::with_capacity(pairs.len());
    for (index, record) in pairs {
        debug_assert_eq!(index, records.len(), "executed indices must form a prefix");
        counts.add(record.outcome);
        records.push(record);
        if abort_reached(config, &counts) {
            return (records, counts, true);
        }
    }
    (records, counts, false)
}

/// Runs a full campaign: one golden run, then `config.injections`
/// experiments with uniformly random (thread, dynamic-branch) targets,
/// exactly as the paper's three-step procedure prescribes.
///
/// Experiments run on `config.workers` threads (`0` = available
/// parallelism); the result is bitwise identical for any worker count.
pub fn run_campaign(
    image: &ProgramImage,
    config: &CampaignConfig,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_with(image, config, None)
}

/// [`run_campaign`] with a streaming progress callback.
pub fn run_campaign_with(
    image: &ProgramImage,
    config: &CampaignConfig,
    progress: Option<&ProgressFn<'_>>,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_recorded(image, config, progress, &NULL_RECORDER)
}

/// [`run_campaign_with`] plus a structured-event [`Recorder`]: stage spans
/// (`campaign.golden`, `campaign.plan`, `campaign.execute`,
/// `campaign.reduce`), one `injection` event per experiment and one
/// `worker` event per worker are traced to it. Pass
/// [`bw_telemetry::JsonlRecorder`] to capture a JSONL trace, or
/// [`NULL_RECORDER`] for none. Without the `telemetry` feature no events
/// are emitted at all.
pub fn run_campaign_recorded(
    image: &ProgramImage,
    config: &CampaignConfig,
    progress: Option<&ProgressFn<'_>>,
    recorder: &dyn Recorder,
) -> Result<CampaignResult, CampaignError> {
    if config.sim.nthreads == 0 {
        return Err(CampaignError::NoThreads);
    }
    // Step 1: profile — the golden run records per-thread dynamic branch
    // counts (the paper's PIN profiling run), on the same engine the
    // faulty runs will use.
    let span = tm_span!(recorder, "campaign.golden");
    let stage_start = bw_telemetry::wall_now_us();
    let golden = engine(config.engine).run(image, &config.sim);
    trace_stage(
        "campaign.golden",
        stage_start,
        &[("total_steps", Value::from(golden.total_steps))],
    );
    span.finish(&[("total_steps", Value::from(golden.total_steps))]);
    run_campaign_with_golden_recorded(image, config, &golden, progress, recorder)
}

/// Runs a campaign against an already-computed golden run (which must come
/// from `run_sim(image, &config.sim)`). Lets callers amortize one golden
/// run across several campaigns on the same image and configuration.
pub fn run_campaign_with_golden(
    image: &ProgramImage,
    config: &CampaignConfig,
    golden: &RunResult,
    progress: Option<&ProgressFn<'_>>,
) -> Result<CampaignResult, CampaignError> {
    run_campaign_with_golden_recorded(image, config, golden, progress, &NULL_RECORDER)
}

/// [`run_campaign_with_golden`] with a structured-event [`Recorder`] (see
/// [`run_campaign_recorded`]).
pub fn run_campaign_with_golden_recorded(
    image: &ProgramImage,
    config: &CampaignConfig,
    golden: &RunResult,
    progress: Option<&ProgressFn<'_>>,
    recorder: &dyn Recorder,
) -> Result<CampaignResult, CampaignError> {
    let span = tm_span!(recorder, "campaign.plan");
    let stage_start = bw_telemetry::wall_now_us();
    let (faulty_sim, plans) = validate_and_plan(config, golden)?;
    trace_stage("campaign.plan", stage_start, &[("injections", Value::from(plans.len()))]);
    span.finish(&[("injections", Value::from(plans.len()))]);

    let inj_hist = Histogram::new();
    let span = tm_span!(recorder, "campaign.execute");
    let stage_start = bw_telemetry::wall_now_us();
    let instruments = ExecInstruments { inj_hist: &inj_hist, recorder };
    let (pairs, worker_stats) =
        execute_campaign(image, &faulty_sim, golden, &plans, config, progress, &instruments);
    trace_stage(
        "campaign.execute",
        stage_start,
        &[("workers", Value::from(worker_stats.len()))],
    );
    span.finish(&[("workers", Value::from(worker_stats.len()))]);

    let span = tm_span!(recorder, "campaign.reduce");
    let stage_start = bw_telemetry::wall_now_us();
    let (records, counts, aborted) = reduce_campaign(pairs, config);
    trace_stage("campaign.reduce", stage_start, &[("records", Value::from(records.len()))]);
    span.finish(&[("records", Value::from(records.len()))]);

    let telemetry =
        campaign_telemetry(&records, &counts, golden, worker_stats.len(), &inj_hist);
    for _stats in &worker_stats {
        tm_event!(recorder, "worker",
            "worker" => _stats.worker,
            "injections" => _stats.injections,
            "wall_us" => _stats.wall_us,
            "busy_us" => _stats.busy_us);
    }
    recorder.flush();

    Ok(CampaignResult {
        records,
        counts,
        golden_outputs_len: golden.outputs.len(),
        branches_per_thread: golden.branches_per_thread.clone(),
        aborted,
        worker_stats,
        telemetry,
    })
}

/// Runs `runs` fault-free executions and returns the number that reported
/// a violation — the paper's false-positive experiment (the result must be
/// zero, by construction of the static analysis). Runs on the
/// deterministic engine; see [`false_positive_runs_on`] for the real-thread
/// variant.
pub fn false_positive_runs(image: &ProgramImage, config: &SimConfig, runs: usize) -> usize {
    false_positive_runs_on(EngineKind::Sim, image, config, runs)
}

/// [`false_positive_runs`] on an explicit engine. On [`EngineKind::Real`]
/// every run exercises true cross-thread queueing, so this doubles as a
/// stress test of the zero-false-positive guarantee under real schedules.
pub fn false_positive_runs_on(
    kind: EngineKind,
    image: &ProgramImage,
    config: &ExecConfig,
    runs: usize,
) -> usize {
    let eng = engine(kind);
    let mut fps = 0;
    for i in 0..runs {
        let cfg = config
            .clone()
            .seed(config.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1));
        let result = eng.run(image, &cfg);
        if result.detected() {
            fps += 1;
        }
    }
    fps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counts_arithmetic() {
        let counts = OutcomeCounts {
            not_activated: 10,
            detected: 40,
            crashed: 20,
            hung: 5,
            masked: 15,
            sdc: 10,
        };
        assert_eq!(counts.activated(), 90);
        assert!((counts.coverage() - (1.0 - 10.0 / 90.0)).abs() < 1e-12);
        assert!((counts.detection_rate() - 40.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_have_full_coverage() {
        let counts = OutcomeCounts::default();
        assert_eq!(counts.coverage(), 1.0);
        assert_eq!(counts.detection_rate(), 0.0);
    }

    #[test]
    fn injection_streams_are_decorrelated() {
        // Adjacent indices under one seed, and one index under adjacent
        // seeds, must produce unrelated first draws.
        let a: Vec<u64> = (0..32).map(|i| injection_rng(0xfa_017, i).next_u64()).collect();
        let mut sorted = a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), a.len(), "collisions across injection indices");
        assert_ne!(injection_rng(1, 0).next_u64(), injection_rng(2, 0).next_u64());
    }

    #[test]
    fn plans_are_a_pure_function_of_inputs() {
        let config = CampaignConfig::new(50, FaultModel::BranchFlip, 4).seed(7);
        let branches = [10, 0, 1_000_000, 3];
        let a = plan_campaign(&branches, &config);
        let b = plan_campaign(&branches, &config);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        for plan in &a {
            assert!(plan.tid < 4);
            assert!(plan.dyn_index >= 1);
            let n = branches[plan.tid as usize];
            if n > 0 {
                assert!(plan.dyn_index <= n);
            }
            assert!(plan.bit < 64);
        }
    }

    #[test]
    fn abort_cut_is_prefix_deterministic() {
        let config = CampaignConfig::new(6, FaultModel::BranchFlip, 1).abort_after_sdc(2);
        let record = |outcome| InjectionRecord {
            plan: InjectionPlan {
                tid: 0,
                dyn_index: 1,
                model: FaultModel::BranchFlip,
                value_choice: 0,
                bit: 0,
            },
            branch: None,
            outcome,
            report: None,
            detection_latency: None,
        };
        // Completion order scrambled; indices 1 and 3 are SDCs, so the cut
        // must land after index 3 regardless of arrival order.
        let pairs = vec![
            (4, record(FaultOutcome::Masked)),
            (1, record(FaultOutcome::Sdc)),
            (0, record(FaultOutcome::Masked)),
            (3, record(FaultOutcome::Sdc)),
            (2, record(FaultOutcome::Detected)),
        ];
        let (records, counts, aborted) = reduce_campaign(pairs, &config);
        assert!(aborted);
        assert_eq!(records.len(), 4);
        assert_eq!(counts.sdc, 2);
        assert_eq!(records.last().unwrap().outcome, FaultOutcome::Sdc);
    }

    #[test]
    fn progress_rate_and_eta_extrapolate() {
        let progress = CampaignProgress {
            index: 49,
            outcome: FaultOutcome::Masked,
            completed: 50,
            total: 200,
            elapsed_us: 2_000_000,
        };
        assert!((progress.rate() - 25.0).abs() < 1e-9);
        // 150 remaining at 25/s = 6 more seconds.
        assert_eq!(progress.eta_us(), Some(6_000_000));
        let cold = CampaignProgress { completed: 0, elapsed_us: 0, ..progress };
        assert_eq!(cold.rate(), 0.0);
        assert_eq!(cold.eta_us(), None);
    }
}
