//! Fault-injection campaigns: golden run, N randomized injections,
//! outcome classification and coverage statistics — the experimental
//! procedure of the paper's Section IV.

use bw_vm::{
    run_sim, run_sim_with_hook, ProgramImage, RunOutcome, RunResult, SimConfig, SplitMix64,
};
use serde::{Deserialize, Serialize};

use crate::injector::{FaultModel, InjectionHook, InjectionPlan};

/// Classification of one injection experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The fault did not reach its target branch (e.g. the thread executed
    /// fewer branches than profiled — cannot happen in the deterministic
    /// engine, kept for API completeness) or the thread had no branches.
    NotActivated,
    /// The monitor flagged a violation.
    Detected,
    /// The program crashed (trap).
    Crashed,
    /// The program hung (deadlock or step-budget exhaustion).
    Hung,
    /// The program completed with the golden output.
    Masked,
    /// Silent data corruption: completed with wrong output.
    Sdc,
}

/// Aggregate counts of a campaign.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Injections that did not activate.
    pub not_activated: usize,
    /// Monitor detections.
    pub detected: usize,
    /// Crashes.
    pub crashed: usize,
    /// Hangs.
    pub hung: usize,
    /// Benign (masked) faults.
    pub masked: usize,
    /// Silent data corruptions.
    pub sdc: usize,
}

impl OutcomeCounts {
    /// Number of activated injections.
    pub fn activated(&self) -> usize {
        self.detected + self.crashed + self.hung + self.masked + self.sdc
    }

    /// The paper's coverage metric: the probability that an activated fault
    /// does **not** lead to an SDC (`1 − SDC_f`). Crashes, hangs, masked
    /// faults and detections all count as covered.
    pub fn coverage(&self) -> f64 {
        let activated = self.activated();
        if activated == 0 {
            return 1.0;
        }
        1.0 - self.sdc as f64 / activated as f64
    }

    /// Fraction of activated faults the monitor itself detected.
    pub fn detection_rate(&self) -> f64 {
        let activated = self.activated();
        if activated == 0 {
            return 0.0;
        }
        self.detected as f64 / activated as f64
    }

    fn add(&mut self, outcome: FaultOutcome) {
        match outcome {
            FaultOutcome::NotActivated => self.not_activated += 1,
            FaultOutcome::Detected => self.detected += 1,
            FaultOutcome::Crashed => self.crashed += 1,
            FaultOutcome::Hung => self.hung += 1,
            FaultOutcome::Masked => self.masked += 1,
            FaultOutcome::Sdc => self.sdc += 1,
        }
    }
}

/// One injection's record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectionRecord {
    /// What was injected where.
    pub plan: InjectionPlan,
    /// The static branch hit, if activated.
    pub branch: Option<u32>,
    /// The classification.
    pub outcome: FaultOutcome,
}

/// Campaign configuration.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Number of injection experiments.
    pub injections: usize,
    /// Fault model for every experiment.
    pub model: FaultModel,
    /// RNG seed for target selection.
    pub seed: u64,
    /// The simulation configuration (thread count, monitor mode, …). The
    /// golden run uses the same configuration with no fault.
    pub sim: SimConfig,
}

impl CampaignConfig {
    /// A campaign of `injections` faults of `model` on `nthreads` threads.
    pub fn new(injections: usize, model: FaultModel, nthreads: u32) -> Self {
        CampaignConfig {
            injections,
            model,
            seed: 0xfa_017,
            sim: SimConfig::new(nthreads),
        }
    }
}

/// Results of a campaign.
#[derive(Clone, Debug)]
pub struct CampaignResult {
    /// Per-injection records.
    pub records: Vec<InjectionRecord>,
    /// Aggregate counts.
    pub counts: OutcomeCounts,
    /// The golden (fault-free) run the experiments were compared against.
    pub golden_outputs_len: usize,
    /// Dynamic branches per thread in the golden run.
    pub branches_per_thread: Vec<u64>,
}

impl CampaignResult {
    /// The paper's coverage metric (see [`OutcomeCounts::coverage`]).
    pub fn coverage(&self) -> f64 {
        self.counts.coverage()
    }
}

/// Classifies one faulty run against the golden run. Detection has
/// priority (the paper checks "whether it is detected by the monitor"
/// first), then crash/hang, then output comparison.
pub fn classify(result: &RunResult, golden: &RunResult, activated: bool) -> FaultOutcome {
    if !activated {
        return FaultOutcome::NotActivated;
    }
    if result.detected() {
        return FaultOutcome::Detected;
    }
    match result.outcome {
        RunOutcome::Crashed(_) => FaultOutcome::Crashed,
        RunOutcome::Hung => FaultOutcome::Hung,
        RunOutcome::Completed => {
            if result.outputs == golden.outputs {
                FaultOutcome::Masked
            } else {
                FaultOutcome::Sdc
            }
        }
    }
}

/// Runs a full campaign: one golden run, then `config.injections`
/// experiments with uniformly random (thread, dynamic-branch) targets,
/// exactly as the paper's three-step procedure prescribes.
///
/// # Panics
///
/// Panics if the golden run does not complete (the program itself must be
/// correct before injecting faults into it).
pub fn run_campaign(image: &ProgramImage, config: &CampaignConfig) -> CampaignResult {
    // Step 1: profile — the golden run records per-thread dynamic branch
    // counts (the paper's PIN profiling run).
    let golden = run_sim(image, &config.sim);
    assert_eq!(
        golden.outcome,
        RunOutcome::Completed,
        "golden run must complete before injecting faults"
    );

    // Faulty runs get a step budget derived from the golden run: a fault
    // that corrupts a loop bound can otherwise spin for billions of steps
    // before the generic cutoff declares a hang (the paper's injector uses
    // a timeout for the same reason).
    let mut faulty_sim = config.sim.clone();
    faulty_sim.max_steps = golden.total_steps.saturating_mul(8).saturating_add(100_000);

    let mut rng = SplitMix64::new(config.seed);
    let n = config.sim.nthreads;
    let mut records = Vec::with_capacity(config.injections);
    let mut counts = OutcomeCounts::default();

    for _ in 0..config.injections {
        // Step 2: pick a random thread, then a random dynamic branch of it.
        let tid = rng.below(i64::from(n)) as u32;
        let nbranches = golden.branches_per_thread[tid as usize];
        let plan = InjectionPlan {
            tid,
            dyn_index: if nbranches == 0 { 1 } else { 1 + rng.below(nbranches as i64) as u64 },
            model: config.model,
            value_choice: rng.below(1 << 16) as u32,
            bit: rng.below(64) as u8,
        };

        // Step 3: inject and classify.
        let mut hook = InjectionHook::new(plan);
        let result = run_sim_with_hook(image, &faulty_sim, &mut hook);
        let outcome = classify(&result, &golden, hook.activated());
        counts.add(outcome);
        records.push(InjectionRecord {
            plan,
            branch: hook.injected_branch.map(|b| b.0),
            outcome,
        });
    }

    CampaignResult {
        records,
        counts,
        golden_outputs_len: golden.outputs.len(),
        branches_per_thread: golden.branches_per_thread,
    }
}

/// Runs `runs` fault-free executions and returns the number that reported
/// a violation — the paper's false-positive experiment (the result must be
/// zero, by construction of the static analysis).
pub fn false_positive_runs(image: &ProgramImage, config: &SimConfig, runs: usize) -> usize {
    let mut fps = 0;
    for i in 0..runs {
        let mut cfg = config.clone();
        cfg.seed = config.seed.wrapping_add(i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15 | 1);
        let result = run_sim(image, &cfg);
        if result.detected() {
            fps += 1;
        }
    }
    fps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_counts_arithmetic() {
        let counts = OutcomeCounts {
            not_activated: 10,
            detected: 40,
            crashed: 20,
            hung: 5,
            masked: 15,
            sdc: 10,
        };
        assert_eq!(counts.activated(), 90);
        assert!((counts.coverage() - (1.0 - 10.0 / 90.0)).abs() < 1e-12);
        assert!((counts.detection_rate() - 40.0 / 90.0).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_have_full_coverage() {
        let counts = OutcomeCounts::default();
        assert_eq!(counts.coverage(), 1.0);
        assert_eq!(counts.detection_rate(), 0.0);
    }
}
