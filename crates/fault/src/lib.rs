//! # bw-fault — fault-injection campaigns for BLOCKWATCH
//!
//! Reproduces the paper's PIN-based fault-injection methodology at
//! interpreter level (Section IV):
//!
//! 1. **Profile**: a golden run records each thread's dynamic branch count.
//! 2. **Target**: pick a uniformly random thread `j` and a uniformly random
//!    dynamic branch `k` of that thread.
//! 3. **Inject**: flip one bit — either the flag register
//!    ([`FaultModel::BranchFlip`], the branch goes the wrong way) or the
//!    branch's condition data ([`FaultModel::ConditionBitFlip`], persists
//!    in the register and may or may not flip the branch).
//!
//! Each run is then classified ([`FaultOutcome`]) as Detected / Crashed /
//! Hung / Masked / SDC against the golden output, and
//! [`OutcomeCounts::coverage`] computes the paper's metric
//! `coverage = 1 − SDC_fraction` over activated faults.
//!
//! # Examples
//!
//! ```
//! use bw_fault::{run_campaign, CampaignConfig, FaultModel};
//! use bw_vm::ProgramImage;
//!
//! let module = bw_ir::frontend::compile(r#"
//!     shared int n = 16;
//!     @spmd func slave() {
//!         for (var i: int = 0; i < n; i = i + 1) { output(i); }
//!     }
//! "#).unwrap();
//! let image = ProgramImage::prepare_default(module);
//! let campaign = run_campaign(&image, &CampaignConfig::new(20, FaultModel::BranchFlip, 4));
//! assert_eq!(campaign.records.len(), 20);
//! assert!(campaign.coverage() >= 0.0 && campaign.coverage() <= 1.0);
//! ```

#![warn(missing_docs)]

mod campaign;
mod injector;

pub use campaign::{
    classify, false_positive_runs, run_campaign, CampaignConfig, CampaignResult, FaultOutcome,
    InjectionRecord, OutcomeCounts,
};
pub use injector::{FaultModel, InjectionHook, InjectionPlan};
