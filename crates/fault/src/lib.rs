//! # bw-fault — fault-injection campaigns for BLOCKWATCH
//!
//! Reproduces the paper's PIN-based fault-injection methodology at
//! interpreter level (Section IV):
//!
//! 1. **Profile**: a golden run records each thread's dynamic branch count.
//! 2. **Target**: pick a uniformly random thread `j` and a uniformly random
//!    dynamic branch `k` of that thread.
//! 3. **Inject**: flip one bit — either the flag register
//!    ([`FaultModel::BranchFlip`], the branch goes the wrong way) or the
//!    branch's condition data ([`FaultModel::ConditionBitFlip`], persists
//!    in the register and may or may not flip the branch).
//!
//! Each run is then classified ([`FaultOutcome`]) as Detected / Crashed /
//! Hung / Masked / SDC against the golden output, and
//! [`OutcomeCounts::coverage`] computes the paper's metric
//! `coverage = 1 − SDC_fraction` over activated faults.
//!
//! Campaigns run in three stages — plan, parallel execute, deterministic
//! reduce (see [`run_campaign`]'s module) — so the result is bitwise
//! identical for any [`CampaignConfig::workers`] setting, and the whole
//! path is panic-free: misconfigurations surface as [`CampaignError`].
//!
//! # Examples
//!
//! ```
//! use bw_fault::{run_campaign, CampaignConfig, FaultModel};
//! use bw_vm::ProgramImage;
//!
//! let module = bw_ir::frontend::compile(r#"
//!     shared int n = 16;
//!     @spmd func slave() {
//!         for (var i: int = 0; i < n; i = i + 1) { output(i); }
//!     }
//! "#).unwrap();
//! let image = ProgramImage::prepare_default(module);
//! let config = CampaignConfig::new(20, FaultModel::BranchFlip, 4)
//!     .seed(0xfa_017)
//!     .workers(2);
//! let campaign = run_campaign(&image, &config).expect("golden run completes");
//! assert_eq!(campaign.records.len(), 20);
//! assert!(campaign.coverage() >= 0.0 && campaign.coverage() <= 1.0);
//! ```

#![warn(missing_docs)]

mod batch;
mod campaign;
mod injector;

pub use batch::{BatchResult, CampaignBatch};
pub use campaign::{
    classify, false_positive_runs, false_positive_runs_on, plan_campaign, run_campaign, run_campaign_recorded,
    run_campaign_with, run_campaign_with_golden, run_campaign_with_golden_recorded,
    CampaignConfig, CampaignError, CampaignProgress, CampaignResult, FaultOutcome,
    InjectionRecord, OutcomeCounts, ProgressFn, WorkerStats,
};
pub use injector::{FaultModel, InjectionHook, InjectionPlan};
