//! Error-path coverage for [`CampaignError`]: every variant must be
//! reachable through the public API (no internal constructors, no panics)
//! and must render a useful, non-empty `Display` message.

use bw_fault::{
    run_campaign, run_campaign_with_golden, CampaignConfig, CampaignError, FaultModel,
};
use bw_splash::{Benchmark, Size};
use bw_vm::{run_sim, ProgramImage, RunOutcome, SimConfig};

fn image() -> ProgramImage {
    ProgramImage::prepare_default(Benchmark::Fft.module(Size::Test).expect("port compiles"))
}

#[test]
fn golden_mismatch_when_cached_golden_has_wrong_thread_count() {
    let image = image();
    // Golden run profiled at 2 threads, campaign configured for 4.
    let golden = run_sim(&image, &SimConfig::new(2));
    assert_eq!(golden.outcome, RunOutcome::Completed);
    let config = CampaignConfig::new(4, FaultModel::BranchFlip, 4);
    let err = run_campaign_with_golden(&image, &config, &golden, None).unwrap_err();
    assert_eq!(err, CampaignError::GoldenMismatch { expected: 4, actual: 2 });
}

#[test]
fn cached_golden_path_rejects_failed_golden_runs() {
    let image = image();
    // A step budget no run can satisfy: the cached result ends Hung, and
    // the campaign must refuse it rather than inject into a broken run.
    let golden = run_sim(&image, &SimConfig::new(4).max_steps(10));
    assert_eq!(golden.outcome, RunOutcome::Hung);
    let config = CampaignConfig::new(4, FaultModel::BranchFlip, 4);
    let err = run_campaign_with_golden(&image, &config, &golden, None).unwrap_err();
    assert_eq!(err, CampaignError::GoldenRunFailed { outcome: RunOutcome::Hung });
}

#[test]
fn cached_golden_path_rejects_zero_threads_first() {
    let image = image();
    let golden = run_sim(&image, &SimConfig::new(4));
    let config = CampaignConfig::new(4, FaultModel::BranchFlip, 0);
    let err = run_campaign_with_golden(&image, &config, &golden, None).unwrap_err();
    assert_eq!(err, CampaignError::NoThreads);
}

#[test]
fn every_variant_reachable_via_run_campaign_displays_distinctly() {
    let image = image();

    let no_threads = run_campaign(&image, &CampaignConfig::new(1, FaultModel::BranchFlip, 0))
        .unwrap_err();
    let mut starved = CampaignConfig::new(1, FaultModel::BranchFlip, 4);
    starved.sim.max_steps = 10;
    let golden_failed = run_campaign(&image, &starved).unwrap_err();
    let mismatch = run_campaign_with_golden(
        &image,
        &CampaignConfig::new(1, FaultModel::BranchFlip, 4),
        &run_sim(&image, &SimConfig::new(2)),
        None,
    )
    .unwrap_err();

    let messages: Vec<String> = [no_threads, golden_failed, mismatch]
        .iter()
        .map(|e| e.to_string())
        .collect();
    for (i, m) in messages.iter().enumerate() {
        assert!(!m.is_empty(), "variant {i} has an empty Display");
        for (j, other) in messages.iter().enumerate() {
            assert!(i == j || m != other, "variants {i} and {j} render identically: {m}");
        }
    }
    assert!(messages[0].contains("zero threads"));
    assert!(messages[1].contains("golden run"));
    assert!(messages[2].contains("thread"));
}

#[test]
fn campaign_error_implements_std_error() {
    // `CampaignError` participates in `?`-chains as a boxed error.
    let err: Box<dyn std::error::Error> = Box::new(CampaignError::NoThreads);
    assert!(!err.to_string().is_empty());
}
