//! Unit tests of the outcome-classification priority logic (paper §IV):
//! Detected > Crashed > Hung > output comparison.

use bw_fault::{classify, FaultOutcome};
use bw_monitor::{Violation, ViolationKind};
use bw_vm::{RunOutcome, RunResult};
use bw_ir::Val;

fn result(outcome: RunOutcome, outputs: Vec<Val>, detected: bool) -> RunResult {
    RunResult {
        outcome,
        outputs,
        parallel_cycles: 0,
        violations: if detected {
            vec![Violation {
                branch: 0,
                site: 0,
                iter: 0,
                kind: ViolationKind::DirectionMismatch,
                reporters: 2,
            }]
        } else {
            Vec::new()
        },
        violation_reports: Vec::new(),
        total_steps: 0,
        events_sent: 0,
        events_processed: 0,
        events_dropped: 0,
        branches_per_thread: vec![0],
        steps_per_thread: vec![0],
        telemetry: bw_telemetry::TelemetrySnapshot::new(),
        branch_events: Vec::new(),
    }
}

fn golden() -> RunResult {
    result(RunOutcome::Completed, vec![Val::I64(42)], false)
}

#[test]
fn not_activated_takes_precedence() {
    let r = result(RunOutcome::Completed, vec![Val::I64(0)], true);
    assert_eq!(classify(&r, &golden(), false), FaultOutcome::NotActivated);
}

#[test]
fn detection_beats_everything_observable() {
    let detected_sdc = result(RunOutcome::Completed, vec![Val::I64(0)], true);
    assert_eq!(classify(&detected_sdc, &golden(), true), FaultOutcome::Detected);
    let detected_crash =
        result(RunOutcome::Crashed(bw_vm::TrapKind::OutOfBounds), vec![], true);
    assert_eq!(classify(&detected_crash, &golden(), true), FaultOutcome::Detected);
}

#[test]
fn crash_beats_output_comparison() {
    let r = result(RunOutcome::Crashed(bw_vm::TrapKind::DivideByZero), vec![], false);
    assert_eq!(classify(&r, &golden(), true), FaultOutcome::Crashed);
}

#[test]
fn hang_is_not_an_sdc() {
    let r = result(RunOutcome::Hung, vec![], false);
    assert_eq!(classify(&r, &golden(), true), FaultOutcome::Hung);
}

#[test]
fn matching_output_is_masked() {
    let r = result(RunOutcome::Completed, vec![Val::I64(42)], false);
    assert_eq!(classify(&r, &golden(), true), FaultOutcome::Masked);
}

#[test]
fn differing_output_is_sdc() {
    let r = result(RunOutcome::Completed, vec![Val::I64(41)], false);
    assert_eq!(classify(&r, &golden(), true), FaultOutcome::Sdc);
    // Missing outputs are SDCs too.
    let r = result(RunOutcome::Completed, vec![], false);
    assert_eq!(classify(&r, &golden(), true), FaultOutcome::Sdc);
}
