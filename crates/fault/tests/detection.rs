//! End-to-end detection tests: inject faults into branches of each
//! similarity category and verify the monitor catches what the paper says
//! it catches.

use bw_fault::{
    classify, run_campaign, CampaignConfig, FaultModel, FaultOutcome, InjectionHook,
    InjectionPlan,
};
use bw_vm::{run_sim, run_sim_with_hook, ProgramImage, RunOutcome, SimConfig};

fn image(src: &str) -> ProgramImage {
    ProgramImage::prepare_default(bw_ir::frontend::compile(src).expect("compile"))
}

/// A program whose only branch is `shared`, executed many times.
fn shared_branch_program() -> ProgramImage {
    image(
        r#"
        shared int n = 64;
        @spmd func slave() {
            var acc: int = 0;
            for (var i: int = 0; i < n; i = i + 1) {
                acc = acc + i;
            }
            output(acc);
        }
        "#,
    )
}

#[test]
fn branch_flip_on_shared_branch_is_detected() {
    let image = shared_branch_program();
    let config = SimConfig::new(4);
    let golden = run_sim(&image, &config);
    assert_eq!(golden.outcome, RunOutcome::Completed);

    // Flip thread 2's 10th dynamic branch (a loop-exit decision).
    let mut hook = InjectionHook::new(InjectionPlan {
        tid: 2,
        dyn_index: 10,
        model: FaultModel::BranchFlip,
        value_choice: 0,
        bit: 0,
    });
    let result = run_sim_with_hook(&image, &config, &mut hook);
    assert!(hook.activated());
    assert_eq!(classify(&result, &golden, true), FaultOutcome::Detected);
}

#[test]
fn condition_bit_flip_on_shared_branch_is_detected_even_without_flip() {
    let image = shared_branch_program();
    let config = SimConfig::new(4);
    let _golden = run_sim(&image, &config);

    // Flip a *high* bit of the loop counter of thread 1: i changes sign /
    // magnitude massively, the comparison outcome may or may not change,
    // but the witness diverges from the other threads either way.
    let mut hook = InjectionHook::new(InjectionPlan {
        tid: 1,
        dyn_index: 5,
        model: FaultModel::ConditionBitFlip,
        value_choice: 0,
        bit: 62,
    });
    let result = run_sim_with_hook(&image, &config, &mut hook);
    assert!(hook.activated());
    assert!(result.detected(), "witness mismatch must be flagged");
}

#[test]
fn threadid_branch_flip_is_detected() {
    // Paper Section II-D: corrupt procid so a second thread takes the
    // leader branch — "no more than one thread takes the branch".
    let image = image(
        r#"
        @spmd func slave() {
            var procid: int = threadid();
            if (procid == 0) {
                output(procid);
            }
            output(1);
        }
        "#,
    );
    let config = SimConfig::new(4);
    let golden = run_sim(&image, &config);

    let mut hook = InjectionHook::new(InjectionPlan {
        tid: 2,
        dyn_index: 1,
        model: FaultModel::BranchFlip,
        value_choice: 0,
        bit: 0,
    });
    let result = run_sim_with_hook(&image, &config, &mut hook);
    assert!(hook.activated());
    assert_eq!(classify(&result, &golden, true), FaultOutcome::Detected);
}

#[test]
fn partial_branch_flip_is_detected_when_groups_split() {
    // `private` is 1 or -1 depending on shared data: all threads read the
    // same element, so they form one witness group; a flipped branch splits
    // the group.
    let image = image(
        r#"
        shared int data[8];
        shared int lim = 3;
        @init func setup() {
            for (var i: int = 0; i < 8; i = i + 1) { data[i] = i; }
        }
        @spmd func slave() {
            var private: int = 0;
            for (var i: int = 0; i < 8; i = i + 1) {
                if (data[i] > lim) { private = 1; } else { private = 0 - 1; }
                if (private > 0) { output(i); }
            }
        }
        "#,
    );
    let config = SimConfig::new(4);
    let golden = run_sim(&image, &config);
    assert_eq!(golden.outcome, RunOutcome::Completed);

    // Find and flip a partial branch instance in thread 3. Dynamic branches
    // per thread: loop branch + 2 ifs per iteration; pick an inner `if`.
    let mut detected = false;
    for dyn_index in 2..6 {
        let mut hook = InjectionHook::new(InjectionPlan {
            tid: 3,
            dyn_index,
            model: FaultModel::BranchFlip,
            value_choice: 0,
            bit: 0,
        });
        let result = run_sim_with_hook(&image, &config, &mut hook);
        if result.detected() {
            detected = true;
            break;
        }
    }
    assert!(detected, "at least one flipped partial branch must be caught");
}

#[test]
fn fault_in_none_branch_with_promotion_can_be_detected() {
    // A `none` branch on thread-indexed data: promotion groups threads by
    // value. With identical per-thread data the groups align, so a flip is
    // caught.
    let image = image(
        r#"
        int data[32];
        @init func setup() {
            for (var i: int = 0; i < 32; i = i + 1) { data[i] = 7; }
        }
        @spmd func slave() {
            var t: int = threadid();
            if (data[t] > 3) { output(t); }
        }
        "#,
    );
    let config = SimConfig::new(4);
    let golden = run_sim(&image, &config);

    let mut hook = InjectionHook::new(InjectionPlan {
        tid: 1,
        dyn_index: 1,
        model: FaultModel::BranchFlip,
        value_choice: 0,
        bit: 0,
    });
    let result = run_sim_with_hook(&image, &config, &mut hook);
    assert!(hook.activated());
    assert_eq!(classify(&result, &golden, true), FaultOutcome::Detected);
}

#[test]
fn unprotected_program_lets_sdc_through() {
    // Same shared-branch program, monitor off: the flipped loop exit cuts
    // one thread's sum short -> SDC (or crash), never Detected.
    let image = shared_branch_program();
    let mut config = SimConfig::new(4);
    config.monitor = bw_vm::MonitorMode::Off;
    let golden = run_sim(&image, &config);

    let mut hook = InjectionHook::new(InjectionPlan {
        tid: 2,
        dyn_index: 10,
        model: FaultModel::BranchFlip,
        value_choice: 0,
        bit: 0,
    });
    let result = run_sim_with_hook(&image, &config, &mut hook);
    let outcome = classify(&result, &golden, hook.activated());
    assert_ne!(outcome, FaultOutcome::Detected);
    assert_eq!(outcome, FaultOutcome::Sdc, "early loop exit changes the sum");
}

#[test]
fn campaign_improves_coverage_over_baseline() {
    let image = shared_branch_program();

    let protected = CampaignConfig::new(60, FaultModel::BranchFlip, 4).seed(7);
    let with = run_campaign(&image, &protected).expect("golden run completes");

    let mut baseline = CampaignConfig::new(60, FaultModel::BranchFlip, 4).seed(7);
    baseline.sim.monitor = bw_vm::MonitorMode::Off;
    let without = run_campaign(&image, &baseline).expect("golden run completes");

    assert!(with.counts.detected > 0, "{:?}", with.counts);
    assert_eq!(without.counts.detected, 0);
    assert!(
        with.coverage() >= without.coverage(),
        "protected {:?} vs baseline {:?}",
        with.counts,
        without.counts
    );
    // Same seed, same profile: identical injection targets.
    assert_eq!(with.branches_per_thread, without.branches_per_thread);
}

#[test]
fn campaign_is_reproducible() {
    let image = shared_branch_program();
    let config = CampaignConfig::new(30, FaultModel::ConditionBitFlip, 4);
    let a = run_campaign(&image, &config).expect("golden run completes");
    let b = run_campaign(&image, &config).expect("golden run completes");
    assert_eq!(a.counts, b.counts);
    assert_eq!(a.records, b.records);
}

#[test]
fn false_positive_sweep_is_clean() {
    let image = shared_branch_program();
    let fps = bw_fault::false_positive_runs(&image, &SimConfig::new(4), 20);
    assert_eq!(fps, 0);
}
