//! Determinism and error-path tests for the sharded campaign engine: the
//! same configuration must produce bitwise-identical results at any worker
//! count, and misconfigurations must surface as errors, not panics.

use bw_fault::{run_campaign, CampaignConfig, CampaignError, FaultModel, FaultOutcome};
use bw_splash::{Benchmark, Size};
use bw_vm::{MonitorMode, ProgramImage, RunOutcome};

fn image(bench: Benchmark) -> ProgramImage {
    ProgramImage::prepare_default(bench.module(Size::Test).expect("port compiles"))
}

#[test]
fn results_identical_at_any_worker_count() {
    for bench in [Benchmark::Fft, Benchmark::Radix] {
        let image = image(bench);
        for model in [FaultModel::BranchFlip, FaultModel::ConditionBitFlip] {
            let base = CampaignConfig::new(32, model, 4).seed(0xd00d);
            let reference = run_campaign(&image, &base.clone().workers(1))
                .expect("golden run completes");
            // `0` exercises the available-parallelism default.
            for workers in [0usize, 2, 8] {
                let result = run_campaign(&image, &base.clone().workers(workers))
                    .expect("golden run completes");
                assert_eq!(
                    reference.records, result.records,
                    "{} {model:?}: records diverge at {workers} workers",
                    bench.name()
                );
                assert_eq!(reference.counts, result.counts);
                assert_eq!(reference.branches_per_thread, result.branches_per_thread);
                assert_eq!(reference.aborted, result.aborted);
            }
        }
    }
}

#[test]
fn early_abort_cut_is_identical_at_any_worker_count() {
    let image = image(Benchmark::Fft);
    // Detections are frequent with the monitor on, so the abort trips well
    // inside the campaign; the surviving prefix must not depend on which
    // worker saw the detection first.
    let base = CampaignConfig::new(64, FaultModel::BranchFlip, 4)
        .seed(0xab0)
        .abort_on_detection(true);
    let reference =
        run_campaign(&image, &base.clone().workers(1)).expect("golden run completes");
    assert!(reference.aborted, "expected at least one detection in 64 injections");
    assert!(reference.records.len() < 64);
    assert_eq!(reference.records.last().unwrap().outcome, FaultOutcome::Detected);
    for workers in [2usize, 8] {
        let result =
            run_campaign(&image, &base.clone().workers(workers)).expect("golden run completes");
        assert_eq!(reference.records, result.records, "{workers} workers");
        assert_eq!(reference.counts, result.counts);
        assert!(result.aborted);
    }
}

#[test]
fn abort_after_sdc_stops_on_the_exact_injection() {
    let image = image(Benchmark::Radix);
    // The unprotected program accumulates SDCs; stop at the second one.
    let base = CampaignConfig::new(200, FaultModel::BranchFlip, 4)
        .seed(0x5dc)
        .abort_after_sdc(2);
    let mut config = base.clone();
    config.sim.monitor = MonitorMode::Off;
    let reference =
        run_campaign(&image, &config.clone().workers(1)).expect("golden run completes");
    if reference.aborted {
        assert_eq!(reference.counts.sdc, 2);
        assert_eq!(reference.records.last().unwrap().outcome, FaultOutcome::Sdc);
    }
    for workers in [2usize, 8] {
        let result =
            run_campaign(&image, &config.clone().workers(workers)).expect("golden run completes");
        assert_eq!(reference.records, result.records, "{workers} workers");
        assert_eq!(reference.aborted, result.aborted);
    }
}

#[test]
fn non_completing_golden_run_is_an_error_not_a_panic() {
    let image = image(Benchmark::Fft);
    let mut config = CampaignConfig::new(10, FaultModel::BranchFlip, 4);
    // A step budget no golden run can satisfy.
    config.sim.max_steps = 10;
    match run_campaign(&image, &config) {
        Err(CampaignError::GoldenRunFailed { outcome }) => {
            assert_eq!(outcome, RunOutcome::Hung);
        }
        other => panic!("expected GoldenRunFailed, got {other:?}"),
    }
}

#[test]
fn zero_threads_is_an_error_not_a_panic() {
    let image = image(Benchmark::Fft);
    let config = CampaignConfig::new(10, FaultModel::BranchFlip, 0);
    assert_eq!(run_campaign(&image, &config).unwrap_err(), CampaignError::NoThreads);
}
