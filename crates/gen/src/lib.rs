//! # bw-gen — generative testing for the BLOCKWATCH pipeline
//!
//! A seeded random generator of well-formed SPMD [`bw_ir`] modules plus a
//! differential test oracle that drives the whole pipeline — parse →
//! verify → analyze → instrument → link → simulate — and asserts the
//! properties the paper's design promises:
//!
//! 1. **Zero false positives**: a fault-free run never produces a monitor
//!    violation, at any thread count.
//! 2. **Category soundness**: every instrumented branch's event stream
//!    exhibits exactly the cross-thread pattern its static similarity
//!    category predicts (checked by an independent re-implementation of
//!    the expected patterns, not by the monitor itself).
//! 3. **Differential transparency**: instrumented and uninstrumented runs
//!    produce identical program-visible results.
//!
//! The [`fuzz`](run_fuzz) driver sweeps seeds, [`shrink`]s any failure to a
//! minimal reproducer, and reports deterministically; `bw fuzz` exposes it
//! on the command line. [`sabotaged_image`] plants a category-propagation
//! regression to prove the oracle actually catches bugs.

#![warn(missing_docs)]

mod fuzz;
mod generate;
mod oracle;
mod shrink;

pub use fuzz::{
    check_module, check_module_cross, run_fuzz, run_fuzz_recorded, CheckFailure, FuzzConfig,
    FuzzFailure, FuzzReport,
};
pub use generate::{generate_module, GenConfig};
pub use oracle::{
    check_image, check_image_cross, sabotaged_image, transparent_counters, CoverageCounts,
    OracleFailure, OracleStats, DEFAULT_THREADS, ORACLE_MAX_STEPS,
};
pub use shrink::shrink;
