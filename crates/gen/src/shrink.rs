//! Greedy, verifier-gated test-case minimization.
//!
//! Given a module and a predicate that holds on it ("still fails"), the
//! shrinker repeatedly tries structural reductions — dropping instructions,
//! resolving conditional branches to one arm, deleting unreferenced
//! functions and the init/fini roles, and simplifying result-producing
//! instructions to plain constants — keeping any candidate that still
//! verifies *and* still satisfies the predicate. Candidates are produced by
//! rebuilding the function with dense value/block renumbering, so every
//! intermediate module remains printable and re-parsable (the textual
//! format requires dense `vN`/`bbN` numbering).

use bw_ir::{
    verify_module, Block, BlockId, FuncId, Function, Inst, Module, Op, PhiIncoming, Type, Val,
    ValueDef, ValueId,
};

/// Minimizes `module` while `failing` keeps returning `true`.
///
/// `failing` must hold on the input module; if it does not, the input is
/// returned unchanged. Every module handed to `failing` passes
/// [`verify_module`]. The result is a fixed point: no single reduction the
/// shrinker knows about can be applied to it without losing the failure.
pub fn shrink<F: FnMut(&Module) -> bool>(module: &Module, mut failing: F) -> Module {
    let mut cur = module.clone();
    if !failing(&cur) {
        return cur;
    }
    loop {
        match step(&cur, &mut failing) {
            Some(smaller) => cur = smaller,
            None => return cur,
        }
    }
}

/// Tries every known reduction on `cur`, returning the first accepted one.
fn step<F: FnMut(&Module) -> bool>(cur: &Module, failing: &mut F) -> Option<Module> {
    let accept = |cand: Module, failing: &mut F| -> Option<Module> {
        (verify_module(&cand).is_ok()
            && cand.funcs.iter().all(all_blocks_reach_exit)
            && failing(&cand))
        .then_some(cand)
    };

    // Drop the init / fini roles (their functions then become removable).
    for role in [RoleSlot::Init, RoleSlot::Fini] {
        let mut cand = cur.clone();
        let slot = match role {
            RoleSlot::Init => &mut cand.init,
            RoleSlot::Fini => &mut cand.fini,
        };
        if slot.take().is_some() {
            if let Some(m) = accept(cand, failing) {
                return Some(m);
            }
        }
    }

    // Remove whole unreferenced functions.
    for fi in (0..cur.funcs.len()).rev() {
        if let Some(cand) = remove_function(cur, fi) {
            if let Some(m) = accept(cand, failing) {
                return Some(m);
            }
        }
    }

    // Resolve a conditional branch to one of its arms (unreachable blocks
    // and severed phi edges are cleaned up in the rebuild).
    for (fi, f) in cur.funcs.iter().enumerate() {
        for (bi, block) in f.blocks.iter().enumerate() {
            let Some(&Inst { op: Op::Br { then_bb, else_bb, .. }, .. }) = block.insts.last()
            else {
                continue;
            };
            for target in [then_bb, else_bb] {
                if let Some(nf) = resolve_branch(f, bi, target) {
                    let mut cand = cur.clone();
                    cand.funcs[fi] = nf;
                    if let Some(m) = accept(cand, failing) {
                        return Some(m);
                    }
                }
            }
        }
    }

    // Merge straight-line block chains: a block whose unconditional jump is
    // the only way into its target absorbs the target wholesale. Without
    // this pass every surviving block pins a jump terminator, so chain-heavy
    // repros bottom out at 2–3 instructions *per block* no matter how much
    // the other passes remove.
    for (fi, f) in cur.funcs.iter().enumerate() {
        for bi in 0..f.blocks.len() {
            if let Some(nf) = merge_chain(f, bi) {
                let mut cand = cur.clone();
                cand.funcs[fi] = nf;
                if let Some(m) = accept(cand, failing) {
                    return Some(m);
                }
            }
        }
    }

    // Remove a single non-terminator instruction. Rebuilding fails (and the
    // candidate is skipped) when the removed value is still used.
    for (fi, f) in cur.funcs.iter().enumerate() {
        for bi in 0..f.blocks.len() {
            for ii in (0..f.blocks[bi].insts.len()).rev() {
                if f.blocks[bi].insts[ii].op.is_terminator() {
                    continue;
                }
                let keep = vec![true; f.blocks.len()];
                if let Some(nf) = rebuild(f, &keep, Some((bi, ii))) {
                    let mut cand = cur.clone();
                    cand.funcs[fi] = nf;
                    if let Some(m) = accept(cand, failing) {
                        return Some(m);
                    }
                }
            }
        }
    }

    // Simplify a result-producing instruction to a constant of its type.
    // This does not shrink the instruction count by itself, but it severs
    // the instruction's operand uses, letting the removal passes above
    // delete whole now-dead computation chains on later iterations —
    // repros whose failure only needs *a* value, not the computed one,
    // drop below the floor that operand chains would otherwise pin.
    // Each acceptance turns one non-const instruction into a const, so
    // the pass contributes only finitely many steps to the fixed point.
    for (fi, f) in cur.funcs.iter().enumerate() {
        for (bi, block) in f.blocks.iter().enumerate() {
            for (ii, inst) in block.insts.iter().enumerate() {
                if inst.result.is_none() || matches!(inst.op, Op::Const(_)) {
                    continue;
                }
                for val in candidate_consts(inst.ty) {
                    let mut cand = cur.clone();
                    cand.funcs[fi].blocks[bi].insts[ii].op = Op::Const(val);
                    if let Some(m) = accept(cand, failing) {
                        return Some(m);
                    }
                }
            }
        }
    }

    None
}

/// The constants the operand-to-constant pass tries, smallest first, for a
/// result of type `ty`. Pointers are never constant-folded: a forged
/// address cannot round-trip through the textual format.
fn candidate_consts(ty: Option<Type>) -> Vec<Val> {
    match ty {
        Some(Type::I64) => vec![Val::I64(0), Val::I64(1), Val::I64(2)],
        Some(Type::F64) => vec![Val::F64(0.0), Val::F64(1.0)],
        Some(Type::Bool) => vec![Val::Bool(false), Val::Bool(true)],
        _ => Vec::new(),
    }
}

enum RoleSlot {
    Init,
    Fini,
}

/// Whether every reachable block can still reach a `ret`/`trap`. Resolving
/// a loop-header branch to its back-edge arm produces a structurally valid
/// but obviously non-terminating function; rejecting those statically saves
/// the predicate a full hung simulation per candidate.
fn all_blocks_reach_exit(f: &Function) -> bool {
    let n = f.blocks.len();
    // Blocks from which an exit terminator is reachable (reverse walk).
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut exits = Vec::new();
    for (bi, block) in f.blocks.iter().enumerate() {
        match block.terminator() {
            Some(t) if t.op.successors().is_empty() => exits.push(bi),
            Some(t) => {
                for succ in t.op.successors() {
                    preds[succ.index()].push(bi);
                }
            }
            None => return false,
        }
    }
    let mut reaches_exit = vec![false; n];
    while let Some(b) = exits.pop() {
        if std::mem::replace(&mut reaches_exit[b], true) {
            continue;
        }
        exits.extend(&preds[b]);
    }
    // Forward reachability from the entry.
    let mut reachable = vec![false; n];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b], true) {
            continue;
        }
        if let Some(t) = f.blocks[b].terminator() {
            stack.extend(t.op.successors().into_iter().map(|s| s.index()));
        }
    }
    (0..n).all(|b| !reachable[b] || reaches_exit[b])
}

/// Merges block `bi`'s unconditional jump target into `bi` when the target
/// has exactly one incoming edge and carries no phis. The target's
/// instructions keep their order (dominance is preserved: `bi` was the
/// target's only predecessor), phi incomings in the target's successors are
/// re-pointed at the merged block, and the emptied target is dropped by the
/// rebuild.
fn merge_chain(f: &Function, bi: usize) -> Option<Function> {
    let Some(&Inst { op: Op::Jump(target), .. }) = f.blocks[bi].insts.last() else {
        return None;
    };
    let ti = target.index();
    if ti == 0 || ti == bi {
        return None;
    }
    // Count *edges*, not predecessor blocks: a `Br` with both arms on the
    // target contributes two, and such a target cannot be absorbed.
    let incoming = f
        .blocks
        .iter()
        .filter_map(|b| b.terminator())
        .flat_map(|t| t.op.successors())
        .filter(|s| s.index() == ti)
        .count();
    if incoming != 1 {
        return None;
    }
    if f.blocks[ti].insts.iter().any(|i| matches!(i.op, Op::Phi { .. })) {
        return None;
    }
    let mut nf = f.clone();
    nf.blocks[bi].insts.pop(); // the jump into the target
    let moved = std::mem::take(&mut nf.blocks[ti].insts);
    nf.blocks[bi].insts.extend(moved);
    // Edges that used to leave the target now leave the merged block.
    let merged = BlockId::from_index(bi);
    for block in &mut nf.blocks {
        for inst in &mut block.insts {
            if let Op::Phi { incomings, .. } = &mut inst.op {
                for inc in incomings {
                    if inc.block == target {
                        inc.block = merged;
                    }
                }
            }
        }
    }
    let mut keep = vec![true; nf.blocks.len()];
    keep[ti] = false;
    rebuild(&nf, &keep, None)
}

/// Removes `funcs[fi]` if nothing references it, remapping later `FuncId`s.
fn remove_function(m: &Module, fi: usize) -> Option<Module> {
    let fid = FuncId::from_index(fi);
    let referenced = [m.init, m.spmd_entry, m.fini].contains(&Some(fid))
        || m.tables.iter().any(|t| t.funcs.contains(&fid))
        || m.funcs.iter().any(|f| {
            f.blocks
                .iter()
                .flat_map(|b| &b.insts)
                .any(|i| matches!(i.op, Op::Call { func, .. } if func == fid))
        });
    if referenced {
        return None;
    }
    let remap = |id: FuncId| if id.index() > fi { FuncId::from_index(id.index() - 1) } else { id };
    let mut out = m.clone();
    out.funcs.remove(fi);
    for t in &mut out.tables {
        for f in &mut t.funcs {
            *f = remap(*f);
        }
    }
    for slot in [&mut out.init, &mut out.spmd_entry, &mut out.fini] {
        *slot = slot.map(remap);
    }
    for f in &mut out.funcs {
        for b in &mut f.blocks {
            for i in &mut b.insts {
                if let Op::Call { func, .. } = &mut i.op {
                    *func = remap(*func);
                }
            }
        }
    }
    Some(out)
}

/// Replaces the `Br` terminating block `bi` with `Jump(target)`, prunes phi
/// incomings along severed edges, and drops blocks that become unreachable.
fn resolve_branch(f: &Function, bi: usize, target: BlockId) -> Option<Function> {
    let mut nf = f.clone();
    let term = nf.blocks[bi].insts.last_mut()?;
    term.op = Op::Jump(target);

    // Prune phi incomings whose edge no longer exists.
    let mut edges: Vec<(usize, BlockId)> = Vec::new();
    for (src, block) in nf.blocks.iter().enumerate() {
        if let Some(t) = block.terminator() {
            for succ in t.op.successors() {
                edges.push((src, succ));
            }
        }
    }
    for di in 0..nf.blocks.len() {
        let dst = BlockId::from_index(di);
        for inst in &mut nf.blocks[di].insts {
            if let Op::Phi { incomings, .. } = &mut inst.op {
                incomings.retain(|inc| edges.contains(&(inc.block.index(), dst)));
            }
        }
    }

    // Drop unreachable blocks.
    let mut reachable = vec![false; nf.blocks.len()];
    let mut stack = vec![0usize];
    while let Some(b) = stack.pop() {
        if std::mem::replace(&mut reachable[b], true) {
            continue;
        }
        if let Some(t) = nf.blocks[b].terminator() {
            for succ in t.op.successors() {
                stack.push(succ.index());
            }
        }
    }
    rebuild(&nf, &reachable, None)
}

/// Rebuilds `f` keeping only the blocks where `keep_block` is true and
/// skipping the instruction at `skip_inst` (`(block index, inst index)`),
/// renumbering values and blocks densely. Returns `None` when the result
/// would be malformed — entry removed, or a kept instruction still uses a
/// dropped value.
fn rebuild(
    f: &Function,
    keep_block: &[bool],
    skip_inst: Option<(usize, usize)>,
) -> Option<Function> {
    if !keep_block.first().copied().unwrap_or(false) {
        return None;
    }
    let nparams = f.params.len();
    let mut block_map: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
    let mut next_block = 0;
    for (i, &k) in keep_block.iter().enumerate() {
        if k {
            block_map[i] = Some(BlockId::from_index(next_block));
            next_block += 1;
        }
    }
    let kept = |bi: usize, ii: usize| keep_block[bi] && skip_inst != Some((bi, ii));

    let mut value_map: Vec<Option<ValueId>> = vec![None; f.num_values()];
    let mut next_val = 0;
    for slot in value_map.iter_mut().take(nparams) {
        *slot = Some(ValueId::from_index(next_val));
        next_val += 1;
    }
    for (bi, block) in f.blocks.iter().enumerate() {
        for (ii, inst) in block.insts.iter().enumerate() {
            if kept(bi, ii) {
                if let Some(r) = inst.result {
                    value_map[r.index()] = Some(ValueId::from_index(next_val));
                    next_val += 1;
                }
            }
        }
    }

    let mut out = Function {
        name: f.name.clone(),
        params: f.params.clone(),
        ret: f.ret,
        blocks: Vec::new(),
        defs: (0..nparams).map(ValueDef::Param).collect(),
        value_types: f.params.clone(),
    };
    for (bi, block) in f.blocks.iter().enumerate() {
        if !keep_block[bi] {
            continue;
        }
        let new_block = BlockId::from_index(out.blocks.len());
        let mut insts = Vec::new();
        for (ii, inst) in block.insts.iter().enumerate() {
            if !kept(bi, ii) {
                continue;
            }
            let op = remap_op(&inst.op, &value_map, &block_map)?;
            let result = match inst.result {
                Some(r) => {
                    let nr = value_map[r.index()]?;
                    out.defs.push(ValueDef::Inst { block: new_block, inst_index: insts.len() });
                    out.value_types.push(inst.ty?);
                    Some(nr)
                }
                None => None,
            };
            insts.push(Inst { op, result, ty: inst.ty });
        }
        out.blocks.push(Block { insts, name: block.name.clone() });
    }
    Some(out)
}

/// Rewrites every value/block reference in `op` through the maps. Phi
/// incomings from dropped blocks are removed (their edge is gone); any
/// other reference to a dropped value or block fails the rebuild.
fn remap_op(
    op: &Op,
    vmap: &[Option<ValueId>],
    bmap: &[Option<BlockId>],
) -> Option<Op> {
    let v = |id: ValueId| vmap.get(id.index()).copied().flatten();
    let b = |id: BlockId| bmap.get(id.index()).copied().flatten();
    Some(match op {
        Op::Const(val) => Op::Const(*val),
        Op::Bin { op, lhs, rhs } => Op::Bin { op: *op, lhs: v(*lhs)?, rhs: v(*rhs)? },
        Op::Cmp { op, lhs, rhs } => Op::Cmp { op: *op, lhs: v(*lhs)?, rhs: v(*rhs)? },
        Op::Un { op, operand } => Op::Un { op: *op, operand: v(*operand)? },
        Op::Phi { incomings, ty } => {
            let mut mapped = Vec::new();
            for inc in incomings {
                let Some(block) = b(inc.block) else { continue };
                mapped.push(PhiIncoming { block, value: v(inc.value)? });
            }
            if mapped.is_empty() {
                return None;
            }
            Op::Phi { incomings: mapped, ty: *ty }
        }
        Op::GlobalAddr(g) => Op::GlobalAddr(*g),
        Op::Gep { base, offset } => Op::Gep { base: v(*base)?, offset: v(*offset)? },
        Op::Load { addr, ty } => Op::Load { addr: v(*addr)?, ty: *ty },
        Op::Store { addr, value } => Op::Store { addr: v(*addr)?, value: v(*value)? },
        Op::Alloca { size } => Op::Alloca { size: v(*size)? },
        Op::ThreadId => Op::ThreadId,
        Op::NumThreads => Op::NumThreads,
        Op::AtomicFetchAdd { global, delta } => {
            Op::AtomicFetchAdd { global: *global, delta: v(*delta)? }
        }
        Op::Call { func, args, site } => Op::Call {
            func: *func,
            args: args.iter().map(|a| v(*a)).collect::<Option<_>>()?,
            site: *site,
        },
        Op::CallIndirect { table, selector, args, site } => Op::CallIndirect {
            table: *table,
            selector: v(*selector)?,
            args: args.iter().map(|a| v(*a)).collect::<Option<_>>()?,
            site: *site,
        },
        Op::Output(x) => Op::Output(v(*x)?),
        Op::MutexLock(m) => Op::MutexLock(*m),
        Op::MutexUnlock(m) => Op::MutexUnlock(*m),
        Op::Barrier(bar) => Op::Barrier(*bar),
        Op::Rand { bound } => Op::Rand { bound: v(*bound)? },
        Op::Br { cond, then_bb, else_bb } => {
            Op::Br { cond: v(*cond)?, then_bb: b(*then_bb)?, else_bb: b(*else_bb)? }
        }
        Op::Jump(t) => Op::Jump(b(*t)?),
        Op::Ret(x) => Op::Ret(match x {
            Some(x) => Some(v(*x)?),
            None => None,
        }),
        Op::Trap => Op::Trap,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_ir::{CmpOp, FunctionBuilder};

    fn branchy_module() -> Module {
        let mut m = Module::new("shrinkme");
        let mut b = FunctionBuilder::new("spmd", vec![], None);
        let tid = b.thread_id();
        let zero = b.const_i64(0);
        let dead = b.const_i64(42);
        let _dead2 = b.bin(bw_ir::BinOp::Add, dead, dead);
        let c = b.cmp(CmpOp::Eq, tid, zero);
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        b.br(c, t, e);
        b.switch_to(t);
        let x = b.const_i64(1);
        b.output(x);
        b.jump(j);
        b.switch_to(e);
        let y = b.const_i64(2);
        b.output(y);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        let spmd = m.add_func(b.finish());
        m.spmd_entry = Some(spmd);
        verify_module(&m).unwrap();
        m
    }

    #[test]
    fn shrinks_to_fixed_point_preserving_predicate() {
        let m = branchy_module();
        // Predicate: the module still outputs something on some path (has an
        // Output instruction at all).
        let has_output = |m: &Module| {
            m.funcs
                .iter()
                .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
                .any(|i| matches!(i.op, Op::Output(_)))
        };
        let small = shrink(&m, has_output);
        assert!(has_output(&small));
        assert!(verify_module(&small).is_ok());
        assert!(small.num_insts() < m.num_insts());
        // The branch resolves to one arm, dead consts go, and the
        // block-merging pass collapses the surviving jump chain: a single
        // block holding const + output + ret.
        assert_eq!(small.num_branches(), 0);
        assert_eq!(small.funcs[0].blocks.len(), 1, "chain did not merge");
        assert_eq!(small.num_insts(), 3, "got {}", small.num_insts());
    }

    #[test]
    fn straight_line_jump_chains_merge_to_one_block() {
        // A chain of trivial blocks linked by unconditional jumps: each
        // block's jump terminator is irremovable on its own, so without the
        // merging pass this repro is stuck at four blocks forever.
        let mut m = Module::new("chainy");
        let mut b = FunctionBuilder::new("spmd", vec![], None);
        let b1 = b.add_block("b1");
        let b2 = b.add_block("b2");
        let b3 = b.add_block("b3");
        b.jump(b1);
        b.switch_to(b1);
        let x = b.const_i64(7);
        b.jump(b2);
        b.switch_to(b2);
        b.output(x);
        b.jump(b3);
        b.switch_to(b3);
        b.ret(None);
        let spmd = m.add_func(b.finish());
        m.spmd_entry = Some(spmd);
        verify_module(&m).unwrap();

        let has_output = |m: &Module| {
            m.funcs
                .iter()
                .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
                .any(|i| matches!(i.op, Op::Output(_)))
        };
        let small = shrink(&m, has_output);
        assert!(has_output(&small));
        assert!(verify_module(&small).is_ok());
        assert_eq!(small.funcs[0].blocks.len(), 1, "chain did not merge");
        // const + output + ret.
        assert_eq!(small.num_insts(), 3, "got {}", small.num_insts());
    }

    #[test]
    fn const_simplification_breaks_operand_chains() {
        // `output(threadid() + numthreads())`: the output's operand chain
        // pins three instructions, so pure removal bottoms out at 5
        // (threadid, numthreads, add, output, ret). The constant pass
        // replaces the add with a literal, the chain dies, and the repro
        // drops below that floor.
        let mut m = Module::new("constfold");
        let mut b = FunctionBuilder::new("spmd", vec![], None);
        let t = b.thread_id();
        let n = b.num_threads();
        let x = b.add(t, n);
        b.output(x);
        b.ret(None);
        let spmd = m.add_func(b.finish());
        m.spmd_entry = Some(spmd);
        verify_module(&m).unwrap();

        let has_output = |m: &Module| {
            m.funcs
                .iter()
                .flat_map(|f| f.blocks.iter().flat_map(|b| &b.insts))
                .any(|i| matches!(i.op, Op::Output(_)))
        };
        let small = shrink(&m, has_output);
        assert!(has_output(&small));
        assert!(verify_module(&small).is_ok());
        // const + output + ret.
        assert_eq!(small.num_insts(), 3, "got {}", small.num_insts());
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let m = branchy_module();
        let out = shrink(&m, |_| false);
        assert_eq!(out, m);
    }
}
