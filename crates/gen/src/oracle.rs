//! The differential test oracle: runs a prepared program through `bw-vm`
//! at several thread counts and asserts the three invariants the paper's
//! design promises.
//!
//! 1. **Zero false positives** — a fault-free run never produces a monitor
//!    violation, at any thread count (the paper's central "no false
//!    positives by construction" claim).
//! 2. **Category soundness** — the captured branch-event stream matches the
//!    cross-thread pattern each instrumented branch's static category
//!    predicts. This is an *independent* re-implementation of the expected
//!    patterns (sorted-by-thread shape checks), deliberately not sharing
//!    code with `bw_monitor::check_instance`, so a bug in either side shows
//!    up as a disagreement.
//! 3. **Differential transparency** — instrumented and uninstrumented runs
//!    produce identical program-visible results: outputs, outcome, and the
//!    per-thread instruction/branch counts recorded in the deterministic
//!    telemetry. (Monitor-side counters necessarily differ and are
//!    excluded; see [`transparent_counters`].)
//!
//! Plus a reproducibility gate: running the same configuration twice must be
//! bitwise-identical, including the full `deterministic_part()` snapshot.
//!
//! And a **shard-neutrality** gate: sharding the monitor ingest
//! (`ExecConfig::monitor_shards`) is a throughput knob, never a semantic
//! one — every shard count must produce byte-identical violations,
//! violation reports and program observables.

use std::collections::BTreeMap;
use std::fmt;

use bw_analysis::{AnalysisConfig, Category, CheckKind, CheckPlan, TidCheck};
use bw_monitor::{Violation, ViolationReport};
use bw_telemetry::TelemetrySnapshot;
use bw_vm::{
    engine, run_sim, EngineKind, MonitorMode, ProgramImage, RunOutcome, RunResult, SimConfig,
};
use bw_ir::BranchId;

/// The `(thread, witness, taken)` reports of one runtime branch instance.
type InstanceReports = Vec<(u32, u64, bool)>;

/// Thread counts the oracle sweeps by default.
pub const DEFAULT_THREADS: [u32; 4] = [1, 2, 4, 8];

/// Step budget for oracle runs. Generated programs finish in well under
/// 100k interpreted instructions; anything longer is a hang (and matters
/// during shrinking, where candidate reductions can turn a counted loop
/// into an infinite one — the default multi-billion-step budget would make
/// each such candidate take minutes).
pub const ORACLE_MAX_STEPS: u64 = 2_000_000;

/// Why the oracle rejected a program.
#[derive(Clone, Debug)]
pub enum OracleFailure {
    /// A fault-free run did not complete — a generator (or engine) bug.
    RunFailed {
        /// Thread count of the failing run.
        nthreads: u32,
        /// How it ended.
        outcome: RunOutcome,
    },
    /// Invariant 1 broken: a fault-free run produced a violation.
    FalsePositive {
        /// Thread count of the failing run.
        nthreads: u32,
        /// The spurious violation.
        violation: Violation,
        /// The monitor's full provenance for the spurious violation
        /// (deviant threads, witness table, flight-recorder window), when
        /// the `provenance` feature is on. Shrunken repros carry it so the
        /// evidence survives minimization.
        report: Option<Box<ViolationReport>>,
    },
    /// Invariant 2 broken: an event stream contradicts a branch's category.
    CategoryPattern {
        /// Thread count of the failing run.
        nthreads: u32,
        /// The offending branch (its `BranchId` index).
        branch: u32,
        /// What the pattern check saw.
        detail: String,
    },
    /// Invariant 3 broken: instrumentation changed program-visible results.
    NotTransparent {
        /// Thread count of the failing run.
        nthreads: u32,
        /// Which observable diverged.
        detail: String,
    },
    /// The same configuration produced two different runs.
    NotReproducible {
        /// Thread count of the failing run.
        nthreads: u32,
        /// Which observable diverged.
        detail: String,
    },
    /// Span tracing changed an observable: a run with a `--trace-spans`
    /// sink installed disagreed with the untraced run on something
    /// deterministic (outputs, violations, step counts, cycles). Tracing
    /// must be observability-only by construction.
    TraceDivergence {
        /// Thread count of the failing run.
        nthreads: u32,
        /// Which observable diverged.
        detail: String,
    },
    /// The real-threads engine disagreed with the simulator on a
    /// schedule-independent observable (outputs, outcome, or the absence
    /// of violations). Only produced by the opt-in cross-check of
    /// [`check_image_cross`].
    EngineDivergence {
        /// Thread count of the failing run.
        nthreads: u32,
        /// Which observable diverged.
        detail: String,
    },
    /// Sharding the monitor ingest changed the verdict: a run with
    /// `monitor_shards = Some(shards)` disagreed with the unsharded run on
    /// an observable that must be shard-independent (outcome, outputs,
    /// violations, violation reports, event totals).
    ShardDivergence {
        /// Thread count of the failing run.
        nthreads: u32,
        /// Shard count of the diverging run.
        shards: usize,
        /// Which observable diverged.
        detail: String,
    },
}

impl OracleFailure {
    /// Stable name of the failure class. The shrinker keeps a reduction
    /// only when it reproduces the *same class* of failure, so a
    /// transparency repro cannot drift into, say, a plain deadlock.
    pub fn class(&self) -> &'static str {
        match self {
            OracleFailure::RunFailed { .. } => "run-failed",
            OracleFailure::FalsePositive { .. } => "false-positive",
            OracleFailure::CategoryPattern { .. } => "category-pattern",
            OracleFailure::NotTransparent { .. } => "not-transparent",
            OracleFailure::NotReproducible { .. } => "not-reproducible",
            OracleFailure::TraceDivergence { .. } => "trace-divergence",
            OracleFailure::EngineDivergence { .. } => "engine-divergence",
            OracleFailure::ShardDivergence { .. } => "shard-divergence",
        }
    }
}

impl fmt::Display for OracleFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleFailure::RunFailed { nthreads, outcome } => {
                write!(f, "fault-free run at {nthreads} thread(s) ended {outcome:?}")
            }
            OracleFailure::FalsePositive { nthreads, violation, report } => {
                write!(f, "false positive at {nthreads} thread(s): {}", violation.describe())?;
                if let Some(report) = report {
                    write!(f, "\n{}", report.describe())?;
                }
                Ok(())
            }
            OracleFailure::CategoryPattern { nthreads, branch, detail } => {
                write!(
                    f,
                    "category pattern mismatch at {nthreads} thread(s) on br{branch}: {detail}"
                )
            }
            OracleFailure::NotTransparent { nthreads, detail } => {
                write!(f, "instrumentation not transparent at {nthreads} thread(s): {detail}")
            }
            OracleFailure::NotReproducible { nthreads, detail } => {
                write!(f, "run not reproducible at {nthreads} thread(s): {detail}")
            }
            OracleFailure::TraceDivergence { nthreads, detail } => {
                write!(f, "span tracing not transparent at {nthreads} thread(s): {detail}")
            }
            OracleFailure::EngineDivergence { nthreads, detail } => {
                write!(f, "real engine diverges from sim at {nthreads} thread(s): {detail}")
            }
            OracleFailure::ShardDivergence { nthreads, shards, detail } => {
                write!(
                    f,
                    "sharded monitor ({shards} shard(s)) diverges at {nthreads} thread(s): {detail}"
                )
            }
        }
    }
}

/// How many monitor-checkable instances (two or more reporting threads)
/// each check kind received during an oracle sweep. A category left at
/// zero after a fuzz session means that session never actually exercised
/// the corresponding monitor checker — passing proves nothing about it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoverageCounts {
    /// [`CheckKind::SharedUniform`] instances checked.
    pub shared_uniform: u64,
    /// [`TidCheck::AtMostOneTaken`] instances checked.
    pub tid_at_most_one_taken: u64,
    /// [`TidCheck::AtMostOneNotTaken`] instances checked.
    pub tid_at_most_one_not_taken: u64,
    /// [`TidCheck::TakenIsPrefix`] instances checked.
    pub tid_taken_is_prefix: u64,
    /// [`TidCheck::TakenIsSuffix`] instances checked.
    pub tid_taken_is_suffix: u64,
    /// [`CheckKind::GroupByWitness`] instances checked.
    pub group_by_witness: u64,
}

impl CoverageCounts {
    /// Records one checked instance of `kind`.
    pub fn record(&mut self, kind: &CheckKind) {
        match kind {
            CheckKind::SharedUniform => self.shared_uniform += 1,
            CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken) => {
                self.tid_at_most_one_taken += 1;
            }
            CheckKind::ThreadIdPredicate(TidCheck::AtMostOneNotTaken) => {
                self.tid_at_most_one_not_taken += 1;
            }
            CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix) => {
                self.tid_taken_is_prefix += 1;
            }
            CheckKind::ThreadIdPredicate(TidCheck::TakenIsSuffix) => {
                self.tid_taken_is_suffix += 1;
            }
            CheckKind::GroupByWitness => self.group_by_witness += 1,
        }
    }

    /// `(name, count)` pairs in a fixed order, for reporting.
    pub fn by_kind(&self) -> [(&'static str, u64); 6] {
        [
            ("shared-uniform", self.shared_uniform),
            ("tid-at-most-one-taken", self.tid_at_most_one_taken),
            ("tid-at-most-one-not-taken", self.tid_at_most_one_not_taken),
            ("tid-taken-is-prefix", self.tid_taken_is_prefix),
            ("tid-taken-is-suffix", self.tid_taken_is_suffix),
            ("group-by-witness", self.group_by_witness),
        ]
    }

    /// Names of the check kinds that never saw a checked instance.
    pub fn unexercised(&self) -> Vec<&'static str> {
        self.by_kind().iter().filter(|&&(_, n)| n == 0).map(|&(name, _)| name).collect()
    }

    /// Total checked instances across all kinds.
    pub fn total(&self) -> u64 {
        self.by_kind().iter().map(|&(_, n)| n).sum()
    }

    /// Accumulates another sweep's counts.
    pub fn absorb(&mut self, other: CoverageCounts) {
        self.shared_uniform += other.shared_uniform;
        self.tid_at_most_one_taken += other.tid_at_most_one_taken;
        self.tid_at_most_one_not_taken += other.tid_at_most_one_not_taken;
        self.tid_taken_is_prefix += other.tid_taken_is_prefix;
        self.tid_taken_is_suffix += other.tid_taken_is_suffix;
        self.group_by_witness += other.group_by_witness;
    }
}

/// Aggregate statistics from one oracle sweep, for fuzz reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Runs executed (eight per thread count: monitored, repeat,
    /// unmonitored, span-traced, and the four-point shard sweep; ten with
    /// the real cross-check).
    pub runs: u64,
    /// Branch events captured across all monitored runs.
    pub events: u64,
    /// Distinct `(branch, site, iter)` instances pattern-checked.
    pub instances: u64,
    /// Instances with at least two reporting threads (monitor-checkable).
    pub checked_instances: u64,
    /// Checked instances broken down by check kind.
    pub coverage: CoverageCounts,
}

impl OracleStats {
    /// Accumulates another sweep's counts.
    pub fn absorb(&mut self, other: OracleStats) {
        self.runs += other.runs;
        self.events += other.events;
        self.instances += other.instances;
        self.checked_instances += other.checked_instances;
        self.coverage.absorb(other.coverage);
    }
}

/// Runs the full oracle over `image` at each thread count.
///
/// `base_seed` seeds the simulated machine (per-thread PRNG streams), so the
/// whole sweep is a pure function of `(image, threads, base_seed)`.
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered.
pub fn check_image(
    image: &ProgramImage,
    threads: &[u32],
    base_seed: u64,
) -> Result<OracleStats, OracleFailure> {
    check_image_cross(image, threads, base_seed, false)
}

/// [`check_image`] with an opt-in real-engine cross-check.
///
/// When `real_cross` is set, every thread count additionally runs once on
/// the OS-thread engine and the schedule-independent observables must
/// agree with the simulator: program outputs (both engines emit them in
/// thread-id order), the run outcome, and the absence of violations.
/// Schedule-*dependent* observables — step counts, cycle attribution,
/// event totals — are deliberately not compared.
///
/// # Errors
///
/// Returns the first [`OracleFailure`] encountered; real-engine
/// disagreement is [`OracleFailure::EngineDivergence`].
pub fn check_image_cross(
    image: &ProgramImage,
    threads: &[u32],
    base_seed: u64,
    real_cross: bool,
) -> Result<OracleStats, OracleFailure> {
    let mut stats = OracleStats::default();
    for &n in threads {
        let cfg_on = SimConfig::new(n)
            .seed(base_seed)
            .max_steps(ORACLE_MAX_STEPS)
            .capture_events(true);

        let r_on = run_sim(image, &cfg_on);
        stats.runs += 1;
        if r_on.outcome != RunOutcome::Completed {
            return Err(OracleFailure::RunFailed { nthreads: n, outcome: r_on.outcome });
        }
        // Invariant 1: zero false positives.
        if let Some(&violation) = r_on.violations.first() {
            // Carry the matching provenance (reports are sorted in lockstep
            // with the violations) so the repro explains *which* threads
            // disagreed, not just that some did.
            let report = r_on
                .violation_reports
                .iter()
                .find(|r| r.violation == violation)
                .cloned()
                .map(Box::new);
            return Err(OracleFailure::FalsePositive { nthreads: n, violation, report });
        }

        // Reproducibility: the identical configuration, bit for bit.
        let r_again = run_sim(image, &cfg_on);
        stats.runs += 1;
        if let Some(detail) = diff_full(&r_on, &r_again) {
            return Err(OracleFailure::NotReproducible { nthreads: n, detail });
        }

        // Invariant 3: the monitor must be invisible to the program.
        let cfg_off = cfg_on.clone().monitor(MonitorMode::Off).capture_events(false);
        let r_off = run_sim(image, &cfg_off);
        stats.runs += 1;
        if let Some(detail) = diff_transparent(&r_on, &r_off) {
            return Err(OracleFailure::NotTransparent { nthreads: n, detail });
        }

        // Tracing transparency: with a `--trace-spans` sink installed every
        // span tracer activates, and nothing deterministic may change. The
        // discarding sink exercises the instrumentation without a file; the
        // previous sink (the CLI may have installed one for the whole fuzz
        // session) is restored afterwards. Without the `telemetry` feature
        // the sink never installs and this leg doubles as a repeat run.
        {
            let prev = bw_telemetry::trace_sink();
            bw_telemetry::set_trace_sink(Some(std::sync::Arc::new(bw_telemetry::NullRecorder)));
            let r_traced = run_sim(image, &cfg_on);
            bw_telemetry::set_trace_sink(prev);
            stats.runs += 1;
            if let Some(detail) = diff_full(&r_on, &r_traced) {
                return Err(OracleFailure::TraceDivergence { nthreads: n, detail });
            }
        }

        // Shard neutrality: partitioning the monitor ingest must change
        // nothing observable — same verdicts, same provenance, same
        // program-visible results, same costs.
        for shards in [1usize, 2, 4, 8] {
            let cfg_sharded = cfg_on.clone().monitor_shards(Some(shards));
            let r_sharded = run_sim(image, &cfg_sharded);
            stats.runs += 1;
            if let Some(detail) = diff_sharded(&r_on, &r_sharded) {
                return Err(OracleFailure::ShardDivergence { nthreads: n, shards, detail });
            }
        }

        // Invariant 2: the event stream matches the static categories.
        stats.events += r_on.branch_events.len() as u64;
        check_category_patterns(image, &r_on, n, &mut stats)?;

        // Opt-in: the real-threads engine must agree on everything that
        // does not depend on the schedule — flat and with sharded ingest.
        if real_cross {
            let cfg_real = cfg_on.clone().capture_events(false);
            let r_real = engine(EngineKind::Real).run(image, &cfg_real);
            stats.runs += 1;
            if let Some(detail) = diff_engines(&r_on, &r_real) {
                return Err(OracleFailure::EngineDivergence { nthreads: n, detail });
            }
            let cfg_real_sharded = cfg_real.clone().monitor_shards(Some(4));
            let r_real_sharded = engine(EngineKind::Real).run(image, &cfg_real_sharded);
            stats.runs += 1;
            if let Some(detail) = diff_engines(&r_on, &r_real_sharded) {
                return Err(OracleFailure::ShardDivergence { nthreads: n, shards: 4, detail });
            }
        }
    }
    Ok(stats)
}

/// Compares a sharded sim run against the unsharded reference: everything
/// the program or the user can observe must match byte for byte.
/// (Telemetry is excluded — per-shard health counters legitimately appear
/// only on the sharded side.)
fn diff_sharded(flat: &RunResult, sharded: &RunResult) -> Option<String> {
    if flat.outcome != sharded.outcome {
        return Some(format!("outcome {:?} flat vs {:?} sharded", flat.outcome, sharded.outcome));
    }
    if flat.outputs != sharded.outputs {
        return Some("program outputs differ with sharded ingest".into());
    }
    if flat.violations != sharded.violations {
        return Some(format!(
            "violations differ: {} flat vs {} sharded",
            flat.violations.len(),
            sharded.violations.len()
        ));
    }
    if flat.violation_reports != sharded.violation_reports {
        return Some("violation reports differ with sharded ingest".into());
    }
    if flat.events_processed != sharded.events_processed {
        return Some(format!(
            "events_processed {} flat vs {} sharded",
            flat.events_processed, sharded.events_processed
        ));
    }
    if flat.total_steps != sharded.total_steps {
        return Some("total_steps differ with sharded ingest".into());
    }
    if flat.parallel_cycles != sharded.parallel_cycles {
        return Some("parallel_cycles differ with sharded ingest".into());
    }
    None
}

/// Compares the schedule-independent subset of a sim run and a real run.
fn diff_engines(sim: &RunResult, real: &RunResult) -> Option<String> {
    if sim.outcome != real.outcome {
        return Some(format!("outcome {:?} sim vs {:?} real", sim.outcome, real.outcome));
    }
    if sim.outputs != real.outputs {
        return Some(format!(
            "outputs differ: {} value(s) sim vs {} real",
            sim.outputs.len(),
            real.outputs.len()
        ));
    }
    if let Some(v) = real.violations.first() {
        return Some(format!("real engine false positive: {}", v.describe()));
    }
    None
}

fn diff_full(a: &RunResult, b: &RunResult) -> Option<String> {
    if a.outcome != b.outcome {
        return Some(format!("outcome {:?} vs {:?}", a.outcome, b.outcome));
    }
    if a.outputs != b.outputs {
        return Some("outputs differ between identical runs".into());
    }
    if a.parallel_cycles != b.parallel_cycles {
        return Some("parallel_cycles differ between identical runs".into());
    }
    if a.total_steps != b.total_steps {
        return Some("total_steps differ between identical runs".into());
    }
    if a.branch_events != b.branch_events {
        return Some("branch event streams differ between identical runs".into());
    }
    if a.violations != b.violations {
        return Some("violations differ between identical runs".into());
    }
    if a.telemetry.deterministic_part() != b.telemetry.deterministic_part() {
        return Some("deterministic telemetry differs between identical runs".into());
    }
    None
}

fn diff_transparent(on: &RunResult, off: &RunResult) -> Option<String> {
    if on.outcome != off.outcome {
        return Some(format!("outcome {:?} monitored vs {:?} unmonitored", on.outcome, off.outcome));
    }
    if on.outputs != off.outputs {
        return Some("program outputs differ with the monitor on".into());
    }
    if on.steps_per_thread != off.steps_per_thread {
        return Some("per-thread step counts differ with the monitor on".into());
    }
    if on.branches_per_thread != off.branches_per_thread {
        return Some("per-thread branch counts differ with the monitor on".into());
    }
    if on.total_steps != off.total_steps {
        return Some("total interpreted instructions differ with the monitor on".into());
    }
    let (ton, toff) =
        (transparent_counters(&on.telemetry), transparent_counters(&off.telemetry));
    if ton != toff {
        return Some(format!("transparent telemetry differs: {ton:?} vs {toff:?}"));
    }
    None
}

/// The subset of deterministic counters that must be identical whether or
/// not the monitor runs: pure program-execution shape. Monitor-dependent
/// counters (`monitor.*`, `vm.events_sent`, cycle attribution) are excluded
/// — the monitor legitimately costs cycles; it must not change *execution*.
pub fn transparent_counters(snapshot: &TelemetrySnapshot) -> Vec<(String, u64)> {
    snapshot
        .deterministic_part()
        .counters()
        .iter()
        .filter(|(name, _)| {
            name == "vm.instructions"
                || name == "vm.branches"
                || (name.starts_with("vm.thread.") && name.ends_with(".steps"))
        })
        .cloned()
        .collect()
}

fn check_category_patterns(
    image: &ProgramImage,
    run: &RunResult,
    nthreads: u32,
    stats: &mut OracleStats,
) -> Result<(), OracleFailure> {
    // Group events into runtime instances, exactly as the monitor keys its
    // two-level pending table: (branch, call-site path hash, iteration hash).
    let mut instances: BTreeMap<(u32, u64, u64), InstanceReports> = BTreeMap::new();
    for e in &run.branch_events {
        instances
            .entry((e.branch, e.site, e.iter))
            .or_default()
            .push((e.thread, e.witness, e.taken));
    }
    for ((branch, _site, _iter), mut reports) in instances {
        let Some(check) = image.plan.check(BranchId(branch)) else {
            return Err(OracleFailure::CategoryPattern {
                nthreads,
                branch,
                detail: "event emitted for a branch the plan never instrumented".into(),
            });
        };
        stats.instances += 1;
        if reports.len() >= 2 {
            stats.checked_instances += 1;
            stats.coverage.record(&check.kind);
        }
        reports.sort_unstable();
        if let Err(detail) = expected_pattern(&check.kind, &reports) {
            return Err(OracleFailure::CategoryPattern { nthreads, branch, detail });
        }
    }
    Ok(())
}

/// The cross-thread pattern a category predicts, checked independently of
/// the monitor (shape checks over the thread-sorted report vector, rather
/// than the monitor's pairwise scans). Applied even to single-reporter
/// instances — the *prediction* holds for any reporter subset, even where
/// the monitor's check would pass vacuously.
fn expected_pattern(kind: &CheckKind, reports: &[(u32, u64, bool)]) -> Result<(), String> {
    let witnesses: Vec<u64> = reports.iter().map(|&(_, w, _)| w).collect();
    let takens: Vec<bool> = reports.iter().map(|&(_, _, t)| t).collect();
    let uniform_witness = witnesses.windows(2).all(|w| w[0] == w[1]);
    match kind {
        CheckKind::SharedUniform => {
            if !uniform_witness {
                return Err(format!("shared branch saw witnesses {witnesses:?}"));
            }
            if takens.windows(2).any(|w| w[0] != w[1]) {
                return Err(format!("shared branch saw directions {takens:?}"));
            }
            Ok(())
        }
        CheckKind::ThreadIdPredicate(tc) => {
            if !uniform_witness {
                return Err(format!("threadID branch saw witnesses {witnesses:?}"));
            }
            // `reports` is sorted by thread id, so prefix/suffix shapes are
            // positional properties of the `takens` vector.
            let ok = match tc {
                TidCheck::AtMostOneTaken => takens.iter().filter(|&&t| t).count() <= 1,
                TidCheck::AtMostOneNotTaken => takens.iter().filter(|&&t| !t).count() <= 1,
                TidCheck::TakenIsPrefix => !takens.windows(2).any(|w| !w[0] && w[1]),
                TidCheck::TakenIsSuffix => !takens.windows(2).any(|w| w[0] && !w[1]),
            };
            if ok {
                Ok(())
            } else {
                Err(format!("threadID predicate {tc:?} broken by directions {takens:?}"))
            }
        }
        CheckKind::GroupByWitness => {
            for (i, &(_, w1, t1)) in reports.iter().enumerate() {
                for &(_, w2, t2) in &reports[i + 1..] {
                    if w1 == w2 && t1 != t2 {
                        return Err(format!(
                            "witness group {w1:#x} split directions {takens:?}"
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

/// Builds an image of `module` with a deliberately broken Table II rule
/// planted in it: every branch the analysis proved to be a `threadID`
/// predicate has its condition re-labeled `shared`, and the check plan is
/// rebuilt on the corrupted categories. The resulting plan emits
/// `SharedUniform` checks whose witnesses carry the (per-thread) thread-ID
/// operand, so a correct oracle must reject the image — this is the
/// self-test that proves the oracle can catch a category-propagation
/// regression.
///
/// Returns `None` when the module has no `threadID`-predicate branches to
/// sabotage.
pub fn sabotaged_image(
    module: &bw_ir::Module,
    config: AnalysisConfig,
) -> Option<ProgramImage> {
    let mut image = ProgramImage::try_prepare(module.clone(), config).ok()?;
    let targets: Vec<(bw_ir::FuncId, bw_ir::ValueId)> = image
        .analysis
        .branches
        .iter()
        .filter(|b| {
            matches!(
                image.plan.check(b.id).map(|c| c.kind),
                Some(CheckKind::ThreadIdPredicate(_))
            )
        })
        .map(|b| (b.func, b.cond))
        .collect();
    if targets.is_empty() {
        return None;
    }
    for (func, cond) in targets {
        image.analysis.override_value_category(func, cond, Category::Shared);
    }
    let plan = CheckPlan::build(&image.module, &image.analysis, config);
    image.plan = plan;
    // Re-link the per-branch witness lists the interpreter evaluates; they
    // must reflect the (corrupted) plan, exactly as try_prepare would.
    let witnesses: Vec<Option<Vec<bw_ir::ValueId>>> = image
        .analysis
        .branches
        .iter()
        .map(|b| image.plan.check(b.id).map(|c| c.witnesses.clone()))
        .collect();
    for (rt, w) in image.branch_runtime.iter_mut().zip(witnesses) {
        rt.witnesses = w;
    }
    Some(image)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_pattern_shapes() {
        // (thread, witness, taken), sorted by thread.
        let uniform = [(0, 9, true), (1, 9, true)];
        let split = [(0, 9, true), (1, 9, false)];
        assert!(expected_pattern(&CheckKind::SharedUniform, &uniform).is_ok());
        assert!(expected_pattern(&CheckKind::SharedUniform, &split).is_err());

        let prefix = [(0, 5, true), (1, 5, true), (2, 5, false)];
        let broken = [(0, 5, false), (1, 5, true)];
        let k = CheckKind::ThreadIdPredicate(TidCheck::TakenIsPrefix);
        assert!(expected_pattern(&k, &prefix).is_ok());
        assert!(expected_pattern(&k, &broken).is_err());
        let k = CheckKind::ThreadIdPredicate(TidCheck::TakenIsSuffix);
        assert!(expected_pattern(&k, &broken).is_ok());

        let k = CheckKind::ThreadIdPredicate(TidCheck::AtMostOneTaken);
        assert!(expected_pattern(&k, &[(0, 5, true), (1, 5, false)]).is_ok());
        assert!(expected_pattern(&k, &[(0, 5, true), (1, 5, true)]).is_err());

        let groups = [(0, 1, true), (1, 2, false), (2, 1, true)];
        let bad = [(0, 1, true), (1, 1, false)];
        assert!(expected_pattern(&CheckKind::GroupByWitness, &groups).is_ok());
        assert!(expected_pattern(&CheckKind::GroupByWitness, &bad).is_err());

        // Single reporters are never a pattern violation.
        assert!(expected_pattern(&CheckKind::SharedUniform, &[(0, 1, true)]).is_ok());
    }
}
