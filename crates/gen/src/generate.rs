//! Seeded random generation of well-formed SPMD modules.
//!
//! The generator is a structured, Csmith-style program synthesizer over the
//! `bw-ir` vocabulary: thread-ID intrinsics, shared/global loads, phi nodes,
//! nested counted loops, critical sections, barriers, helper calls and
//! indirect calls. Every program it emits is:
//!
//! - **well-formed**: it passes [`bw_ir::verify_module`] (asserted before
//!   returning);
//! - **terminating**: all loops are counted with small constant bounds and
//!   barriers are emitted only at thread-uniform program points;
//! - **schedule-deterministic**: the program-visible results (outputs,
//!   per-thread step counts) are independent of thread interleaving. Shared
//!   state written during the parallel section is either per-thread-disjoint
//!   (array slots indexed by the thread ID) or reduced under a mutex with
//!   commutative operators whose intermediate values never escape into the
//!   value pool. This is the property that makes the differential
//!   (instrumented vs. uninstrumented) oracle sound: the monitor perturbs
//!   only timing, never results.
//!
//! Reproducibility: generation is a pure function of `(seed, GenConfig)`,
//! driven by a [`SplitMix64`] stream.

use bw_ir::{
    verify_module, BarrierId, BinOp, CmpOp, FuncId, FunctionBuilder, GlobalId, Module, MutexId,
    Type, Val, ValueId,
};
use bw_vm::SplitMix64;

/// Tuning knobs for the generator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenConfig {
    /// Approximate statement budget for the SPMD body.
    pub max_stmts: u32,
    /// Maximum nesting depth of ifs and loops.
    pub max_depth: u32,
    /// The largest thread count the program must be safe at. Written shared
    /// arrays are sized to at least this, so per-thread slots stay disjoint.
    pub max_threads: u32,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { max_stmts: 40, max_depth: 3, max_threads: 8 }
    }
}

struct Rng(SplitMix64);

impl Rng {
    fn new(seed: u64) -> Rng {
        // Offset the stream so module seed 0 still produces variety.
        Rng(SplitMix64::new(seed ^ 0x6765_6e5f_6277_6972))
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.0.next_u64() % n
        }
    }

    /// Uniform in `[lo, hi)`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo) as u64) as i64
    }

    fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }
}

/// Binary operators safe on arbitrary i64 operands (no division).
const ARITH: [BinOp; 10] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Min,
    BinOp::Max,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::Shr,
];

/// Commutative, associative reductions: order-independent under a mutex.
const REDUCE: [BinOp; 4] = [BinOp::Add, BinOp::Xor, BinOp::Min, BinOp::Max];

const CMPS: [CmpOp; 6] = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];

/// Generates a verified, deterministic SPMD module from `seed`.
///
/// # Panics
///
/// Panics if the generated module fails verification — that is a generator
/// bug, and the panic message carries the seed needed to reproduce it.
pub fn generate_module(seed: u64, cfg: &GenConfig) -> Module {
    let mut rng = Rng::new(seed);
    let mut m = Module::new(format!("fuzz_{seed:08x}"));

    // Read-only shared scalars: loads seed the `shared` category.
    let nscalars = 2 + rng.below(3);
    let ro_scalars: Vec<GlobalId> = (0..nscalars)
        .map(|i| {
            m.add_global(format!("gsh{i}"), Type::I64, Val::I64(rng.range(1, 9)), true)
        })
        .collect();
    // Read-only shared array, loaded at uniform or tid-masked indices.
    let tab_len = 4 + rng.below(5);
    let tab = m.add_array("gtab", Type::I64, tab_len, Val::I64(rng.range(0, 8)), true);
    // Written shared array: per-thread-disjoint slots (indexed by tid), so it
    // must not feed the `shared` category.
    let buf_len = u64::from(cfg.max_threads) + rng.below(8);
    let buf = m.add_array("gbuf", Type::I64, buf_len, Val::I64(rng.range(0, 4)), false);
    // Mutex-guarded commutative accumulator.
    let acc = m.add_global("gacc", Type::I64, Val::I64(0), false);
    // Thread-ID-style counter, bumped and discarded.
    let cnt = m.add_global("gcnt", Type::I64, Val::I64(0), false);
    m.mark_tid_counter(cnt);

    let mutexes: Vec<MutexId> = (0..1 + rng.below(2)).map(|_| m.add_mutex()).collect();
    // One reduction operator for the whole module: individual REDUCE ops are
    // commutative and associative, but two *different* ones do not commute
    // with each other (`(a + x) max y != (a max y) + x`), so mixing them
    // across critical sections would make the accumulator depend on lock
    // acquisition order — which the monitor's event costs legitimately
    // perturb. (Found by this crate's own oracle.)
    let reduce = rng.pick(&REDUCE);
    let barrier = m.add_barrier();

    let helpers: Vec<FuncId> =
        (0..rng.below(3)).map(|i| gen_helper(&mut m, &mut rng, i)).collect();
    let table = if helpers.len() >= 2 && rng.chance(50) {
        Some(m.add_table("htab", vec![helpers[0], helpers[1]]))
    } else {
        None
    };

    let init = if rng.chance(70) { Some(gen_init(&mut m, &mut rng, &ro_scalars, tab, tab_len)) } else { None };

    let spmd = {
        let b = FunctionBuilder::new("spmd", vec![], None);
        let g = BodyGen {
            m: &mut m,
            rng: &mut rng,
            cfg,
            b,
            budget: cfg.max_stmts as i64,
            tid: ValueId(0), // placeholder, set below
            shared_vals: Vec::new(),
            helpers: helpers.clone(),
            table,
            ro_scalars: ro_scalars.clone(),
            tab,
            buf,
            acc,
            cnt,
            mutexes: mutexes.clone(),
            reduce,
            barrier,
            barriers_left: 2,
        };
        g.build_spmd()
    };
    let spmd = m.add_func(spmd);

    let fini = gen_fini(&mut m, &mut rng, &ro_scalars, tab, buf, buf_len, acc, cnt);

    m.init = init;
    m.spmd_entry = Some(spmd);
    m.fini = Some(fini);

    verify_module(&m).unwrap_or_else(|e| {
        panic!("generator bug: seed {seed:#x} produced an invalid module: {e}")
    });
    m
}

fn gen_helper(m: &mut Module, rng: &mut Rng, idx: u64) -> FuncId {
    let mut b =
        FunctionBuilder::new(format!("helper{idx}"), vec![Type::I64, Type::I64], Some(Type::I64));
    let mut pool = vec![b.param(0), b.param(1), b.const_i64(rng.range(1, 8))];
    for _ in 0..1 + rng.below(3) {
        let op = rng.pick(&ARITH);
        let (l, r) = (rng.pick(&pool), rng.pick(&pool));
        let v = b.bin(op, l, r);
        pool.push(v);
    }
    if rng.chance(50) {
        let (l, r) = (rng.pick(&pool), rng.pick(&pool));
        let c = b.cmp(rng.pick(&CMPS), l, r);
        let then_bb = b.add_block("h_then");
        let else_bb = b.add_block("h_else");
        let merge = b.add_block("h_merge");
        b.br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        let (l, r) = (rng.pick(&pool), rng.pick(&pool));
        let tv = b.bin(rng.pick(&ARITH), l, r);
        b.jump(merge);
        b.switch_to(else_bb);
        let (l, r) = (rng.pick(&pool), rng.pick(&pool));
        let ev = b.bin(rng.pick(&ARITH), l, r);
        b.jump(merge);
        b.switch_to(merge);
        let p = b.phi(Type::I64, vec![(then_bb, tv), (else_bb, ev)]);
        pool.push(p);
    }
    let out = rng.pick(&pool);
    b.ret(Some(out));
    m.add_func(b.finish())
}

fn gen_init(
    m: &mut Module,
    rng: &mut Rng,
    ro_scalars: &[GlobalId],
    tab: GlobalId,
    tab_len: u64,
) -> FuncId {
    let mut b = FunctionBuilder::new("init", vec![], None);
    // Writing shared=true globals is safe here: init runs single-threaded
    // before the parallel section, so parallel loads still observe one value.
    for &g in ro_scalars {
        if rng.chance(50) {
            let v = b.const_i64(rng.range(1, 9));
            b.store_global(g, v);
        }
    }
    for _ in 0..rng.below(3) {
        let idx = b.const_i64(rng.range(0, tab_len as i64));
        let v = b.const_i64(rng.range(0, 16));
        b.store_index(tab, idx, v);
    }
    b.ret(None);
    m.add_func(b.finish())
}

#[allow(clippy::too_many_arguments)]
fn gen_fini(
    m: &mut Module,
    rng: &mut Rng,
    ro_scalars: &[GlobalId],
    tab: GlobalId,
    buf: GlobalId,
    buf_len: u64,
    acc: GlobalId,
    cnt: GlobalId,
) -> FuncId {
    let mut b = FunctionBuilder::new("fini", vec![], None);
    // After the join every write has landed; reading all slots is
    // deterministic and makes parallel-section stores program-visible.
    for &g in ro_scalars {
        let v = b.load_global(m, g);
        b.output(v);
    }
    for which in [acc, cnt] {
        let v = b.load_global(m, which);
        b.output(v);
    }
    let nslots = buf_len.min(4 + rng.below(3));
    for i in 0..nslots {
        let idx = b.const_i64(i as i64);
        let v = b.load_index(m, buf, idx);
        b.output(v);
    }
    let idx = b.const_i64(0);
    let v = b.load_index(m, tab, idx);
    b.output(v);
    b.ret(None);
    m.add_func(b.finish())
}

struct BodyGen<'a> {
    m: &'a mut Module,
    rng: &'a mut Rng,
    cfg: &'a GenConfig,
    b: FunctionBuilder,
    budget: i64,
    tid: ValueId,
    /// Runtime-uniform values defined in the entry block: constants,
    /// `numthreads`, and loads of read-only shared scalars. Safe to use from
    /// any later block (the entry dominates everything).
    shared_vals: Vec<ValueId>,
    helpers: Vec<FuncId>,
    table: Option<bw_ir::TableId>,
    ro_scalars: Vec<GlobalId>,
    tab: GlobalId,
    buf: GlobalId,
    acc: GlobalId,
    cnt: GlobalId,
    mutexes: Vec<MutexId>,
    /// The module-wide accumulator reduction operator (see
    /// [`generate_module`] for why there is exactly one).
    reduce: BinOp,
    barrier: BarrierId,
    barriers_left: u32,
}

impl BodyGen<'_> {
    fn build_spmd(mut self) -> bw_ir::Function {
        self.tid = self.b.thread_id();
        let nth = self.b.num_threads();
        let mut pool = vec![self.tid, nth];
        self.shared_vals.push(nth);
        for _ in 0..3 {
            let lo = self.rng.range(1, 9);
            let c = self.b.const_i64(lo);
            pool.push(c);
            self.shared_vals.push(c);
        }
        for g in self.ro_scalars.clone() {
            let v = self.b.load_global(self.m, g);
            pool.push(v);
            self.shared_vals.push(v);
        }
        self.seq(&mut pool, 0, true);
        // At least one program-visible per-thread result.
        let out = self.rng.pick(&pool);
        self.b.output(out);
        self.b.ret(None);
        self.b.finish()
    }

    fn seq(&mut self, pool: &mut Vec<ValueId>, depth: u32, top: bool) {
        let n = 2 + self.rng.below(4) + if top { 4 } else { 0 };
        for _ in 0..n {
            if self.budget <= 0 {
                break;
            }
            self.budget -= 1;
            self.stmt(pool, depth, top);
        }
    }

    fn stmt(&mut self, pool: &mut Vec<ValueId>, depth: u32, top: bool) {
        let roll = self.rng.below(100);
        match roll {
            0..=19 => self.arith(pool),
            20..=33 if depth < self.cfg.max_depth => self.if_stmt(pool, depth),
            34..=43 if depth < self.cfg.max_depth => self.loop_stmt(pool, depth),
            44..=53 => self.array_op(pool),
            54..=60 => self.critical_section(pool),
            61..=66 => self.rand_stmt(pool),
            67..=72 if !self.helpers.is_empty() => self.call_stmt(pool),
            73..=76 => self.fetchadd_stmt(),
            77..=81 => {
                let v = self.rng.pick(pool);
                self.b.output(v);
            }
            82..=86 if top && self.barriers_left > 0 => {
                // Thread-uniform point only: every thread executes the
                // top-level straight line, so nobody is left waiting.
                self.barriers_left -= 1;
                self.b.barrier(self.barrier);
            }
            _ => self.arith(pool),
        }
    }

    fn arith(&mut self, pool: &mut Vec<ValueId>) {
        let op = self.rng.pick(&ARITH);
        let (l, r) = (self.rng.pick(pool), self.rng.pick(pool));
        let v = self.b.bin(op, l, r);
        pool.push(v);
    }

    fn cond_operands(&mut self, pool: &[ValueId]) -> (ValueId, ValueId) {
        let roll = self.rng.below(100);
        if roll < 40 {
            // Direct `tid ⋈ shared` comparison: the threadID-category shape
            // that derives a TidCheck predicate.
            (self.tid, self.rng.pick(&self.shared_vals))
        } else if roll < 70 {
            // Uniform-only operands: the `shared` category.
            (self.rng.pick(&self.shared_vals), self.rng.pick(&self.shared_vals))
        } else {
            (self.rng.pick(pool), self.rng.pick(pool))
        }
    }

    fn if_stmt(&mut self, pool: &mut Vec<ValueId>, depth: u32) {
        let (l, r) = self.cond_operands(pool);
        let c = self.b.cmp(self.rng.pick(&CMPS), l, r);
        let then_bb = self.b.add_block("then");
        let else_bb = self.b.add_block("else");
        let merge = self.b.add_block("merge");
        self.b.br(c, then_bb, else_bb);

        self.b.switch_to(then_bb);
        let mut tp = pool.clone();
        self.seq(&mut tp, depth + 1, false);
        let tv = self.rng.pick(&tp);
        let t_end = self.b.current_block();
        self.b.jump(merge);

        self.b.switch_to(else_bb);
        let mut ep = pool.clone();
        self.seq(&mut ep, depth + 1, false);
        let ev = self.rng.pick(&ep);
        let e_end = self.b.current_block();
        self.b.jump(merge);

        self.b.switch_to(merge);
        if self.rng.chance(60) {
            let p = self.b.phi(Type::I64, vec![(t_end, tv), (e_end, ev)]);
            pool.push(p);
        }
    }

    fn loop_stmt(&mut self, pool: &mut Vec<ValueId>, depth: u32) {
        let k = self.rng.range(1, 5);
        let zero = self.b.const_i64(0);
        let one = self.b.const_i64(1);
        let bound = self.b.const_i64(k);
        let header = self.b.add_block("loop_header");
        let body = self.b.add_block("loop_body");
        let exit = self.b.add_block("loop_exit");
        let pre = self.b.current_block();
        self.b.jump(header);

        self.b.switch_to(header);
        let i = self.b.phi(Type::I64, vec![(pre, zero)]);
        let c = self.b.cmp(CmpOp::Lt, i, bound);
        self.b.br(c, body, exit);

        self.b.switch_to(body);
        let mut bp = pool.clone();
        bp.push(i);
        self.seq(&mut bp, depth + 1, false);
        let next = self.b.add(i, one);
        let latch = self.b.current_block();
        self.b.jump(header);
        self.b.add_phi_incoming(i, latch, next);

        self.b.switch_to(exit);
        // On exit the phi equals the (uniform) bound; usable and checkable.
        pool.push(i);
    }

    fn array_op(&mut self, pool: &mut Vec<ValueId>) {
        let roll = self.rng.below(100);
        if roll < 40 {
            // Own slot only: tid < max_threads <= buf_len keeps writes
            // disjoint across threads.
            let v = self.rng.pick(pool);
            self.b.store_index(self.buf, self.tid, v);
        } else if roll < 70 {
            let v = self.b.load_index(self.m, self.buf, self.tid);
            pool.push(v);
        } else {
            // Read-only table, tid-masked index (the paper's `partial`
            // shape). tab_len >= 4, so the mask keeps it in bounds.
            let mask = self.b.const_i64(3);
            let idx = self.b.bin(BinOp::And, self.tid, mask);
            let v = self.b.load_index(self.m, self.tab, idx);
            pool.push(v);
        }
    }

    fn critical_section(&mut self, pool: &[ValueId]) {
        let mtx = self.rng.pick(&self.mutexes);
        let term = self.rng.pick(pool);
        self.b.mutex_lock(mtx);
        // The loaded intermediate is order-dependent, so it must never
        // escape into the pool — only the commutative reduction lands.
        let cur = self.b.load_global(self.m, self.acc);
        let newv = self.b.bin(self.reduce, cur, term);
        self.b.store_global(self.acc, newv);
        self.b.mutex_unlock(mtx);
    }

    fn rand_stmt(&mut self, pool: &mut Vec<ValueId>) {
        let bound = self.b.const_i64(self.rng.range(1, 17));
        let v = self.b.rand(bound);
        pool.push(v);
    }

    fn call_stmt(&mut self, pool: &mut Vec<ValueId>) {
        let (a0, a1) = (self.rng.pick(pool), self.rng.pick(pool));
        let v = if let Some(tbl) = self.table.filter(|_| self.rng.chance(40)) {
            let sel = if self.rng.chance(50) {
                let one = self.b.const_i64(1);
                self.b.bin(BinOp::And, self.tid, one)
            } else {
                self.b.const_i64(self.rng.range(0, 2))
            };
            self.b.call_indirect(self.m, tbl, sel, vec![a0, a1])
        } else {
            let f = self.rng.pick(&self.helpers);
            self.b.call(self.m, f, vec![a0, a1])
        };
        pool.push(v.expect("helpers return i64"));
    }

    fn fetchadd_stmt(&mut self) {
        let d = self.b.const_i64(self.rng.range(1, 4));
        // The fetched value is admission-order-dependent; discard it so
        // program-visible results stay schedule-deterministic. The counter's
        // final value (read in fini) is a commutative sum.
        let _ = self.b.atomic_fetch_add(self.cnt, d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_and_verified() {
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let a = generate_module(seed, &cfg);
            let b = generate_module(seed, &cfg);
            assert_eq!(a, b, "seed {seed} not reproducible");
            assert!(a.spmd_entry.is_some());
            assert!(a.num_insts() > 10, "seed {seed} degenerate");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GenConfig::default();
        let a = generate_module(1, &cfg);
        let b = generate_module(2, &cfg);
        assert_ne!(a.funcs, b.funcs);
    }
}
