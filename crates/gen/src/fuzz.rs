//! The fuzzing loop: generate → round-trip → prepare → oracle → (optional)
//! fault-injection campaign, with automatic shrinking of failures.
//!
//! Everything here is a pure function of the configuration: the same
//! [`FuzzConfig`] always produces the same [`FuzzReport`], including the
//! minimized reproducers, so a CI failure can be replayed locally with
//! nothing but the seed.

use std::fmt::Write as _;
use std::sync::Arc;

use bw_analysis::AnalysisConfig;
use bw_fault::{CampaignBatch, CampaignConfig, FaultModel, OutcomeCounts};
use bw_ir::{parse_module, Module, ModulePrinter};
use bw_telemetry::{Recorder, Value, NULL_RECORDER};
use bw_vm::{EngineKind, ProgramImage, SimConfig};

use crate::generate::{generate_module, GenConfig};
use crate::oracle::{check_image_cross, OracleStats, DEFAULT_THREADS};
use crate::shrink::shrink;

/// Configuration of one fuzzing session.
#[derive(Clone, Debug, PartialEq)]
pub struct FuzzConfig {
    /// Number of seeds to run.
    pub seeds: u64,
    /// First seed; the session covers `start_seed .. start_seed + seeds`.
    pub start_seed: u64,
    /// Thread counts the oracle sweeps for every seed.
    pub threads: Vec<u32>,
    /// Program-shape parameters for the generator.
    pub gen: GenConfig,
    /// Fault injections to run against each passing seed (0 disables the
    /// injection stage).
    pub injections: usize,
    /// Engine the injection campaigns run on. [`EngineKind::Real`] trades
    /// reproducibility of the injection outcomes for true-concurrency
    /// exercise of the monitor machinery.
    pub engine: EngineKind,
    /// Cross-check every fault-free oracle run against the real-threads
    /// engine (see [`crate::check_image_cross`]).
    pub real_cross_check: bool,
    /// Monitor shard count for the injection-stage campaigns (`None` = one
    /// monitor). The fault-free oracle stage always sweeps shard counts
    /// regardless (the shard-neutrality invariant).
    pub monitor_shards: Option<usize>,
    /// Run the injection-stage image preparation with the SCC-parallel
    /// analysis at this worker count (`None` = sequential). The fault-free
    /// stage always cross-checks parallel-vs-sequential analysis parity
    /// regardless (the analysis-divergence invariant).
    pub analysis_workers: Option<usize>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seeds: 100,
            start_seed: 0,
            threads: DEFAULT_THREADS.to_vec(),
            gen: GenConfig::default(),
            injections: 0,
            engine: EngineKind::Sim,
            real_cross_check: false,
            monitor_shards: None,
            analysis_workers: None,
        }
    }
}

/// One seed's failure, with a minimized reproducer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzFailure {
    /// The generator seed that produced the failing program.
    pub seed: u64,
    /// The oracle's (or pipeline stage's) complaint.
    pub message: String,
    /// Textual IR of the shrunk module — parse it back with
    /// [`bw_ir::parse_module`] to replay.
    pub minimized: String,
    /// Instruction count of the shrunk module.
    pub minimized_insts: usize,
}

/// The outcome of a fuzzing session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FuzzReport {
    /// Seeds actually run.
    pub seeds_run: u64,
    /// Every failing seed, in seed order, each with a minimized reproducer.
    pub failures: Vec<FuzzFailure>,
    /// Aggregate oracle statistics over all passing seeds.
    pub stats: OracleStats,
    /// Aggregate fault-injection outcomes (all zero when injections are
    /// disabled).
    pub injection_counts: OutcomeCounts,
}

impl FuzzReport {
    /// Whether every seed passed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// A deterministic multi-line summary (no timestamps, no wall-clock).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fuzz: {} seed(s), {} failure(s)",
            self.seeds_run,
            self.failures.len()
        );
        let s = &self.stats;
        let _ = writeln!(
            out,
            "  oracle: {} run(s), {} event(s), {} instance(s) ({} cross-checked)",
            s.runs, s.events, s.instances, s.checked_instances
        );
        let cov: Vec<String> =
            s.coverage.by_kind().iter().map(|&(name, n)| format!("{name} {n}")).collect();
        let _ = writeln!(out, "  coverage: {}", cov.join(", "));
        let unexercised = s.coverage.unexercised();
        if !unexercised.is_empty() {
            let _ = writeln!(out, "  unexercised: {}", unexercised.join(", "));
        }
        let c = &self.injection_counts;
        if c.activated() + c.not_activated > 0 {
            let _ = writeln!(
                out,
                "  injections: {} activated, {} detected, {} crashed, {} hung, {} masked, {} sdc",
                c.activated(),
                c.detected,
                c.crashed,
                c.hung,
                c.masked,
                c.sdc
            );
        }
        for f in &self.failures {
            let _ = writeln!(
                out,
                "  seed {:#x}: {} (minimized to {} instruction(s))",
                f.seed, f.message, f.minimized_insts
            );
        }
        out
    }
}

/// A pipeline-stage or oracle failure for one module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckFailure {
    /// Stable failure-class name (see [`crate::OracleFailure::class`];
    /// pipeline stages contribute `round-trip` and `prepare`). The shrinker
    /// only accepts reductions that stay in the original class.
    pub class: &'static str,
    /// Human-readable description.
    pub message: String,
}

/// Runs the full pipeline for one module and applies the oracle.
///
/// Checks, in order: the textual round-trip (print → parse → structural
/// equality), preparation (verify + analyze + instrument + link), and the
/// three oracle invariants at every thread count.
///
/// # Errors
///
/// Returns the first failing stage, tagged with its class.
pub fn check_module(
    module: &Module,
    threads: &[u32],
    seed: u64,
) -> Result<OracleStats, CheckFailure> {
    check_module_cross(module, threads, seed, false)
}

/// [`check_module`] with the opt-in real-engine cross-check of
/// [`crate::check_image_cross`] on the oracle stage.
///
/// # Errors
///
/// Returns the first failing stage, tagged with its class
/// (`engine-divergence` when sim and real disagree).
pub fn check_module_cross(
    module: &Module,
    threads: &[u32],
    seed: u64,
    real_cross: bool,
) -> Result<OracleStats, CheckFailure> {
    let text = ModulePrinter(module).to_string();
    match parse_module(&text) {
        Ok(reparsed) if reparsed == *module => {}
        Ok(_) => {
            return Err(CheckFailure {
                class: "round-trip",
                message: "textual round-trip is not structurally identical".into(),
            })
        }
        Err(e) => {
            return Err(CheckFailure {
                class: "round-trip",
                message: format!("printed module fails to re-parse: {e}"),
            })
        }
    }
    check_analysis_parity(module)?;
    let image = ProgramImage::try_prepare(module.clone(), AnalysisConfig::default()).map_err(
        |e| CheckFailure { class: "prepare", message: format!("verifier rejected module: {e}") },
    )?;
    check_image_cross(&image, threads, seed, real_cross)
        .map_err(|f| CheckFailure { class: f.class(), message: f.to_string() })
}

/// The analysis-parity invariant: the SCC-parallel similarity analysis
/// must be bitwise-identical to the sequential oracle on every generated
/// module, at more than one worker count. This is the fuzz-side guard for
/// the fixpoint-uniqueness assumption the parallel scheduler rests on.
///
/// # Errors
///
/// Returns an `analysis-divergence` failure naming the first mismatching
/// value or branch.
fn check_analysis_parity(module: &Module) -> Result<(), CheckFailure> {
    if bw_ir::verify_module(module).is_err() {
        // The prepare stage reports malformed modules with better context.
        return Ok(());
    }
    let oracle = bw_analysis::ModuleAnalysis::run(module);
    for workers in [1usize, 4] {
        let parallel = bw_analysis::ModuleAnalysis::run_parallel(module, workers);
        if let Some(diff) = oracle.divergence(&parallel) {
            return Err(CheckFailure {
                class: "analysis-divergence",
                message: format!(
                    "parallel analysis at {workers} workers diverges from sequential: {diff}"
                ),
            });
        }
    }
    Ok(())
}

/// How many oracle-passing seeds one [`CampaignBatch`] covers: large
/// enough that the shared worker pool amortizes across images, small
/// enough that failures surface before the session ends.
const INJECT_CHUNK: usize = 64;

/// Runs a fuzzing session.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzReport {
    run_fuzz_recorded(config, &NULL_RECORDER)
}

/// [`run_fuzz`] with a structured-event [`Recorder`] receiving one
/// `fuzz.seed` event per seed (seed, status, failure class) plus the
/// injection batches' stage spans and per-injection trace — the format
/// `bw stats` reads back. The report itself stays a pure function of the
/// configuration; only the trace carries wall-clock data.
pub fn run_fuzz_recorded(config: &FuzzConfig, recorder: &dyn Recorder) -> FuzzReport {
    let mut report = FuzzReport::default();
    // Live registry handles for the sampler / `/metrics` endpoint: seeds
    // swept and failures found so far. Cold per-seed updates, trace-side
    // only — the report stays a pure function of the configuration.
    let live = bw_telemetry::ENABLED.then(|| {
        let registry = bw_telemetry::MetricRegistry::global();
        (registry.counter("live.fuzz.seeds"), registry.counter("live.fuzz.failures"))
    });
    // Generated programs index per-thread array slots by thread ID; make
    // sure they are sized for the largest swept thread count.
    let mut gen = config.gen;
    gen.max_threads = gen.max_threads.max(config.threads.iter().copied().max().unwrap_or(1));
    // Oracle-passing seeds waiting for the batched injection stage.
    let mut pending: Vec<(u64, Arc<ProgramImage>)> = Vec::new();
    for seed in config.start_seed..config.start_seed.saturating_add(config.seeds) {
        let module = generate_module(seed, &gen);
        report.seeds_run += 1;
        if let Some((seeds, _)) = &live {
            seeds.inc();
        }
        match check_module_cross(&module, &config.threads, seed, config.real_cross_check) {
            Ok(stats) => {
                recorder.record(
                    "fuzz.seed",
                    &[("seed", Value::from(seed)), ("status", Value::from("ok"))],
                );
                report.stats.absorb(stats);
                if config.injections > 0 {
                    let analysis_config = AnalysisConfig {
                        analysis_workers: config.analysis_workers,
                        ..AnalysisConfig::default()
                    };
                    let image = ProgramImage::prepare(module.clone(), analysis_config);
                    pending.push((seed, Arc::new(image)));
                    if pending.len() >= INJECT_CHUNK {
                        inject_batch(&mut pending, config, &mut report, recorder);
                    }
                }
            }
            Err(failure) => {
                if let Some((_, failures)) = &live {
                    failures.inc();
                }
                recorder.record(
                    "fuzz.seed",
                    &[
                        ("seed", Value::from(seed)),
                        ("status", Value::from("fail")),
                        ("class", Value::from(failure.class)),
                    ],
                );
                let threads = config.threads.clone();
                // Only accept reductions that fail in the same class as the
                // original: without this, a "not transparent" repro can
                // drift into an unrelated deadlock while shrinking.
                let class = failure.class;
                let real_cross = config.real_cross_check;
                let min = shrink(&module, |m| {
                    check_module_cross(m, &threads, seed, real_cross)
                        .err()
                        .is_some_and(|f| f.class == class)
                });
                report.failures.push(FuzzFailure {
                    seed,
                    message: failure.message,
                    minimized: ModulePrinter(&min).to_string(),
                    minimized_insts: min.num_insts(),
                });
            }
        }
    }
    inject_batch(&mut pending, config, &mut report, recorder);
    // Oracle failures are pushed per seed but campaign failures only when
    // their chunk flushes; restore the documented seed order.
    report.failures.sort_by_key(|f| f.seed);
    recorder.flush();
    report
}

/// Runs one [`CampaignBatch`] over the pending oracle-passing seeds. Each
/// image gets exactly the per-seed campaign configuration the sequential
/// stage used, so the deterministic per-seed outcomes (and therefore the
/// aggregate counts) are independent of the chunking. The oracle has
/// already proven each fault-free program completes cleanly at every
/// swept thread count, so campaign setup errors are themselves
/// oracle-grade failures.
fn inject_batch(
    pending: &mut Vec<(u64, Arc<ProgramImage>)>,
    config: &FuzzConfig,
    report: &mut FuzzReport,
    recorder: &dyn Recorder,
) {
    if pending.is_empty() {
        return;
    }
    let nthreads = config.threads.iter().copied().max().unwrap_or(4);
    let mut batch = CampaignBatch::new();
    for (seed, image) in pending.iter() {
        let sim = SimConfig::new(nthreads)
            .seed(*seed)
            .max_steps(2_000_000)
            .monitor_shards(config.monitor_shards);
        let cc = CampaignConfig::new(config.injections, FaultModel::BranchFlip, nthreads)
            .seed(*seed)
            .sim(sim)
            .engine(config.engine);
        batch.push(Arc::clone(image), cc);
    }
    let outcome = batch.run_recorded(recorder);
    for ((seed, image), result) in pending.drain(..).zip(outcome.results) {
        match result {
            Ok(res) => merge_counts(&mut report.injection_counts, &res.counts),
            Err(e) => report.failures.push(FuzzFailure {
                seed,
                message: format!("fault campaign refused a program the oracle passed: {e}"),
                minimized: ModulePrinter(&image.module).to_string(),
                minimized_insts: image.module.num_insts(),
            }),
        }
    }
}

fn merge_counts(into: &mut OutcomeCounts, from: &OutcomeCounts) {
    into.not_activated += from.not_activated;
    into.detected += from.detected;
    into.crashed += from.crashed;
    into.hung += from.hung;
    into.masked += from.masked;
    into.sdc += from.sdc;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> FuzzConfig {
        FuzzConfig {
            seeds: 3,
            start_seed: 0,
            threads: vec![1, 2],
            gen: GenConfig { max_stmts: 10, ..GenConfig::default() },
            injections: 0,
            engine: EngineKind::Sim,
            real_cross_check: false,
            monitor_shards: None,
            analysis_workers: None,
        }
    }

    #[test]
    fn small_session_passes_and_is_reproducible() {
        let cfg = small_config();
        let a = run_fuzz(&cfg);
        assert!(a.ok(), "unexpected failures:\n{}", a.render());
        assert_eq!(a.seeds_run, 3);
        assert!(a.stats.runs > 0);
        let b = run_fuzz(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn injection_stage_accumulates_counts() {
        let mut cfg = small_config();
        cfg.seeds = 1;
        cfg.injections = 4;
        let r = run_fuzz(&cfg);
        assert!(r.ok(), "unexpected failures:\n{}", r.render());
        let c = &r.injection_counts;
        assert_eq!(c.activated() + c.not_activated, 4);
    }

    #[test]
    fn real_cross_check_passes_on_clean_seeds() {
        let mut cfg = small_config();
        cfg.seeds = 2;
        cfg.real_cross_check = true;
        let r = run_fuzz(&cfg);
        assert!(r.ok(), "unexpected failures:\n{}", r.render());
        // 2 seeds x 2 thread counts x 10 runs (monitored, repeat,
        // unmonitored, span-traced, shard sweep of 4, real, real sharded).
        assert_eq!(r.stats.runs, 2 * 2 * 10);
    }

    #[test]
    fn coverage_counts_are_reported() {
        let cfg = FuzzConfig { seeds: 10, ..small_config() };
        let r = run_fuzz(&cfg);
        assert!(r.ok(), "unexpected failures:\n{}", r.render());
        assert_eq!(r.stats.coverage.total(), r.stats.checked_instances);
        assert!(r.render().contains("coverage: shared-uniform"));
    }

    #[test]
    fn report_renders_failures() {
        let mut r = FuzzReport { seeds_run: 1, ..FuzzReport::default() };
        r.failures.push(FuzzFailure {
            seed: 7,
            message: "boom".into(),
            minimized: String::new(),
            minimized_insts: 3,
        });
        let text = r.render();
        assert!(text.contains("1 failure(s)"));
        assert!(text.contains("seed 0x7: boom (minimized to 3 instruction(s))"));
    }
}
