//! Fast fuzz tier for `cargo test`: a bounded batch of fixed seeds through
//! the full generate → round-trip → prepare → oracle pipeline.

use bw_gen::{run_fuzz, FuzzConfig, GenConfig};

#[test]
fn fixed_seed_batch_passes_all_invariants() {
    let cfg = FuzzConfig {
        seeds: 10,
        start_seed: 0,
        threads: vec![1, 2, 4, 8],
        gen: GenConfig::default(),
        injections: 0,
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    assert!(report.ok(), "oracle failures:\n{}", report.render());
    assert_eq!(report.seeds_run, 10);
    // The batch must actually exercise cross-thread checking, not pass
    // vacuously.
    assert!(report.stats.events > 0, "no branch events captured");
    assert!(
        report.stats.checked_instances > 0,
        "no instance ever had two reporters"
    );
}

#[test]
fn fuzz_report_is_bitwise_reproducible() {
    let cfg = FuzzConfig {
        seeds: 4,
        start_seed: 100,
        threads: vec![2, 4],
        gen: GenConfig::default(),
        injections: 3,
        ..FuzzConfig::default()
    };
    let a = run_fuzz(&cfg);
    let b = run_fuzz(&cfg);
    assert!(a.ok(), "oracle failures:\n{}", a.render());
    assert_eq!(a, b, "same config must produce an identical report");
    assert_eq!(a.render(), b.render());
    // The injection stage ran: 4 seeds x 3 injections.
    let c = &a.injection_counts;
    assert_eq!(c.activated() + c.not_activated, 12);
}
