//! The oracle's self-test: plant a category-propagation regression (a
//! corrupted Table II rule) and prove the oracle catches it, with a
//! minimized reproducer.

use bw_analysis::AnalysisConfig;
use bw_gen::{check_image, generate_module, sabotaged_image, shrink, GenConfig};
use bw_ir::Module;
use bw_vm::{run_sim, SimConfig};

const SIM_SEED: u64 = 0xdead_beef;

/// Whether the planted regression is observable on `module`: the sabotaged
/// plan (threadID predicates re-labeled `shared`) produces a violation on a
/// fault-free run. This is the cheap single-run discriminant the shrinker
/// uses.
fn regression_fires(module: &Module) -> bool {
    sabotaged_image(module, AnalysisConfig::default())
        .map(|image| {
            let r = run_sim(
                &image,
                &SimConfig::new(4).seed(SIM_SEED).max_steps(bw_gen::ORACLE_MAX_STEPS),
            );
            !r.violations.is_empty()
        })
        .unwrap_or(false)
}

#[test]
fn planted_category_regression_is_caught_and_minimized() {
    let gen = GenConfig { max_stmts: 10, ..GenConfig::default() };

    // Find a seed whose program exposes the planted bug (it needs a
    // threadID-predicate branch reached by at least two threads).
    let (seed, module) = (0..100)
        .map(|seed| (seed, generate_module(seed, &gen)))
        .find(|(_, m)| regression_fires(m))
        .expect("no seed in 0..100 exposes the planted regression");

    // The healthy image passes the full oracle...
    let healthy =
        bw_vm::ProgramImage::try_prepare(module.clone(), AnalysisConfig::default()).unwrap();
    check_image(&healthy, &[2, 4], SIM_SEED)
        .unwrap_or_else(|f| panic!("seed {seed:#x} fails even without sabotage: {f}"));

    // ...and the sabotaged one is rejected.
    let broken = sabotaged_image(&module, AnalysisConfig::default()).unwrap();
    let failure = check_image(&broken, &[2, 4], SIM_SEED)
        .expect_err("oracle accepted an image with a corrupted Table II rule");
    let text = failure.to_string();
    assert!(!text.is_empty());

    // Shrink while the regression keeps firing; the reproducer must be tiny.
    let minimized = shrink(&module, regression_fires);
    assert!(regression_fires(&minimized));
    assert!(
        minimized.num_insts() < 30,
        "reproducer did not minimize: {} instructions left\n{}",
        minimized.num_insts(),
        bw_ir::ModulePrinter(&minimized)
    );

    // The minimized module still round-trips through the textual format, so
    // it can be saved as a `.bwir` repro and replayed.
    let printed = bw_ir::ModulePrinter(&minimized).to_string();
    let reparsed = bw_ir::parse_module(&printed).unwrap();
    assert_eq!(reparsed, minimized);
}
