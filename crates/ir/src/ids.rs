//! Strongly-typed index newtypes for IR entities.
//!
//! Every IR entity (function, block, instruction/value, global, …) is stored
//! in an arena owned by its parent and referred to by a compact `u32` index.
//! Newtypes keep the indices from being mixed up ([C-NEWTYPE]).

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an id from a raw arena index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("arena index overflow"))
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`Module`](crate::Module).
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a basic block within a [`Function`](crate::Function).
    BlockId,
    "bb"
);
id_type!(
    /// Identifies an SSA value (an instruction result or a function
    /// parameter) within a [`Function`](crate::Function).
    ValueId,
    "v"
);
id_type!(
    /// Identifies a global variable (scalar or array) within a module.
    GlobalId,
    "g"
);
id_type!(
    /// Identifies a mutex declared by the module.
    MutexId,
    "mtx"
);
id_type!(
    /// Identifies a barrier declared by the module.
    BarrierId,
    "bar"
);
id_type!(
    /// Identifies a function table used by indirect calls.
    TableId,
    "tbl"
);
id_type!(
    /// Identifies a static call site. Assigned module-wide so that the
    /// runtime can encode the call stack compactly.
    CallSiteId,
    "cs"
);
id_type!(
    /// Identifies a static branch. Assigned module-wide by the
    /// instrumentation pass; used as the level-1 hash-table key component.
    BranchId,
    "br"
);
id_type!(
    /// Identifies a natural loop discovered by loop analysis.
    LoopId,
    "loop"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = ValueId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id, ValueId(42));
    }

    #[test]
    fn debug_and_display_prefixes() {
        assert_eq!(format!("{}", BlockId(3)), "bb3");
        assert_eq!(format!("{:?}", FuncId(1)), "fn1");
        assert_eq!(format!("{}", BranchId(7)), "br7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(ValueId(1) < ValueId(2));
    }

    #[test]
    #[should_panic(expected = "arena index overflow")]
    fn from_index_overflow_panics() {
        let _ = ValueId::from_index(usize::MAX);
    }
}
