//! IR verifier: checks SSA and structural invariants of a module.
//!
//! The verifier is run by the pipeline before analysis and by tests after
//! construction. It checks:
//!
//! * every block of a reachable function ends in exactly one terminator,
//!   and terminators appear only in final position;
//! * phi nodes appear only at block heads and have exactly one incoming per
//!   predecessor edge;
//! * every operand is defined, and non-phi uses are dominated by their
//!   definitions;
//! * operand and result types are consistent;
//! * ids (blocks, globals, funcs, tables, mutexes, barriers) are in range;
//! * call argument counts match callee signatures.

use std::collections::HashSet;
use std::fmt;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::function::{Function, ValueDef};
use crate::ids::{BlockId, FuncId, ValueId};
use crate::inst::{BinOp, Op, UnOp};
use crate::module::Module;
use crate::value::Type;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the problem was found, if applicable.
    pub func: Option<String>,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.func {
            Some(name) => write!(f, "in `{}`: {}", name, self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns the first structural or SSA violation found.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    let module_err = |message: String| VerifyError { func: None, message };

    for role in [module.init, module.spmd_entry, module.fini].into_iter().flatten() {
        if role.index() >= module.funcs.len() {
            return Err(module_err(format!("entry function {role} out of range")));
        }
    }
    for table in &module.tables {
        if table.funcs.is_empty() {
            return Err(module_err(format!("function table `{}` is empty", table.name)));
        }
        let first = table.funcs[0];
        for &f in &table.funcs {
            if f.index() >= module.funcs.len() {
                return Err(module_err(format!("table `{}` references {f} out of range", table.name)));
            }
            let (a, b) = (module.func(first), module.func(f));
            if a.params != b.params || a.ret != b.ret {
                return Err(module_err(format!(
                    "table `{}` mixes signatures: `{}` vs `{}`",
                    table.name, a.name, b.name
                )));
            }
        }
    }

    let mut names = HashSet::new();
    for func in &module.funcs {
        if !names.insert(func.name.as_str()) {
            return Err(module_err(format!("duplicate function name `{}`", func.name)));
        }
    }

    for func in &module.funcs {
        verify_function(module, func)?;
    }
    Ok(())
}

/// Verifies a single function.
///
/// # Errors
///
/// Returns the first violation found.
pub fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let err = |message: String| VerifyError { func: Some(func.name.clone()), message };

    if func.blocks.is_empty() {
        return Err(err("function has no blocks".into()));
    }
    if func.defs.len() != func.value_types.len() {
        return Err(err("defs/value_types length mismatch".into()));
    }

    // Structural checks (terminators, phi placement, id ranges).
    for (bb, block) in func.iter_blocks() {
        let Some(last) = block.insts.last() else {
            return Err(err(format!("{bb} is empty")));
        };
        if !last.op.is_terminator() {
            return Err(err(format!("{bb} does not end in a terminator")));
        }
        let mut seen_non_phi = false;
        for (i, inst) in block.insts.iter().enumerate() {
            if inst.op.is_terminator() && i + 1 != block.insts.len() {
                return Err(err(format!("terminator in the middle of {bb}")));
            }
            if inst.op.is_phi() {
                if seen_non_phi {
                    return Err(err(format!("phi after non-phi in {bb}")));
                }
            } else {
                seen_non_phi = true;
            }
            check_ids_in_range(module, func, bb, &inst.op).map_err(&err)?;

            // Result bookkeeping must point back at this instruction.
            if let Some(result) = inst.result {
                match func.defs.get(result.index()) {
                    Some(ValueDef::Inst { block, inst_index })
                        if *block == bb && *inst_index == i => {}
                    _ => {
                        return Err(err(format!(
                            "result {result} of {bb}[{i}] has a stale definition record"
                        )))
                    }
                }
                let declared = inst.ty;
                if declared != Some(func.value_type(result)) {
                    return Err(err(format!("result {result} type mismatch in {bb}")));
                }
            }
        }
    }

    let cfg = Cfg::new(func);
    let dom = DomTree::new(&cfg, func.entry());

    // Phi incoming edges must match predecessors exactly (reachable blocks).
    for (bb, block) in func.iter_blocks() {
        if !dom.is_reachable(bb) {
            continue;
        }
        let preds: HashSet<BlockId> = cfg.preds(bb).iter().copied().collect();
        for inst in block.phis() {
            let incomings = inst.op.phi_incomings().expect("phis() yields phis");
            let mut seen = HashSet::new();
            for inc in incomings {
                if !preds.contains(&inc.block) {
                    return Err(err(format!(
                        "phi in {bb} has incoming from non-predecessor {}",
                        inc.block
                    )));
                }
                if !seen.insert(inc.block) {
                    return Err(err(format!(
                        "phi in {bb} has duplicate incoming from {}",
                        inc.block
                    )));
                }
            }
            if seen.len() != preds.len() {
                return Err(err(format!(
                    "phi in {bb} covers {} of {} predecessor edges",
                    seen.len(),
                    preds.len()
                )));
            }
        }
    }

    // SSA dominance: each use must be dominated by its definition.
    for (bb, block) in func.iter_blocks() {
        if !dom.is_reachable(bb) {
            continue;
        }
        for (i, inst) in block.insts.iter().enumerate() {
            if let Some(incomings) = inst.op.phi_incomings() {
                for inc in incomings {
                    check_use_dominated(func, &dom, inc.value, inc.block, usize::MAX)
                        .map_err(&err)?;
                }
            } else {
                for operand in inst.op.operands() {
                    check_use_dominated(func, &dom, operand, bb, i).map_err(&err)?;
                }
            }
            check_types(module, func, bb, &inst.op).map_err(&err)?;
        }
    }

    // Return type consistency.
    for (bb, block) in func.iter_blocks() {
        if let Some(inst) = block.terminator() {
            if let Op::Ret(v) = &inst.op {
                match (v, func.ret) {
                    (Some(v), Some(ret_ty)) => {
                        if func.value_type(*v) != ret_ty {
                            return Err(err(format!("{bb}: return value type mismatch")));
                        }
                    }
                    (None, None) => {}
                    (Some(_), None) => {
                        return Err(err(format!("{bb}: value returned from void function")))
                    }
                    (None, Some(_)) => {
                        return Err(err(format!("{bb}: missing return value")))
                    }
                }
            }
        }
    }

    Ok(())
}

fn check_use_dominated(
    func: &Function,
    dom: &DomTree,
    value: ValueId,
    use_block: BlockId,
    use_index: usize,
) -> Result<(), String> {
    let Some(def) = func.defs.get(value.index()) else {
        return Err(format!("use of undefined value {value}"));
    };
    match def {
        ValueDef::Param(_) => Ok(()),
        ValueDef::Inst { block, inst_index } => {
            if *block == use_block {
                if *inst_index < use_index {
                    Ok(())
                } else {
                    Err(format!("{value} used at or before its definition in {use_block}"))
                }
            } else if dom.dominates(*block, use_block) {
                Ok(())
            } else {
                Err(format!(
                    "use of {value} in {use_block} not dominated by its definition in {block}"
                ))
            }
        }
    }
}

fn check_ids_in_range(
    module: &Module,
    func: &Function,
    bb: BlockId,
    op: &Op,
) -> Result<(), String> {
    let block_ok = |b: BlockId| -> Result<(), String> {
        if b.index() < func.blocks.len() {
            Ok(())
        } else {
            Err(format!("{bb}: branch target {b} out of range"))
        }
    };
    match op {
        Op::Br { then_bb, else_bb, .. } => {
            block_ok(*then_bb)?;
            block_ok(*else_bb)
        }
        Op::Jump(target) => block_ok(*target),
        Op::GlobalAddr(g) | Op::AtomicFetchAdd { global: g, .. } => {
            if g.index() < module.globals.len() {
                Ok(())
            } else {
                Err(format!("{bb}: global {g} out of range"))
            }
        }
        Op::Call { func: f, args, .. } => {
            if f.index() >= module.funcs.len() {
                return Err(format!("{bb}: callee {f} out of range"));
            }
            check_call_signature(module.func(*f).params.len(), args.len(), *f, bb)
        }
        Op::CallIndirect { table, args, .. } => {
            if table.index() >= module.tables.len() {
                return Err(format!("{bb}: table {table} out of range"));
            }
            let first = module.tables[table.index()].funcs[0];
            check_call_signature(module.func(first).params.len(), args.len(), first, bb)
        }
        Op::MutexLock(m) | Op::MutexUnlock(m) => {
            if m.0 < module.num_mutexes {
                Ok(())
            } else {
                Err(format!("{bb}: mutex {m} out of range"))
            }
        }
        Op::Barrier(b) => {
            if b.0 < module.num_barriers {
                Ok(())
            } else {
                Err(format!("{bb}: barrier {b} out of range"))
            }
        }
        _ => Ok(()),
    }
}

fn check_call_signature(
    expected: usize,
    actual: usize,
    callee: FuncId,
    bb: BlockId,
) -> Result<(), String> {
    if expected == actual {
        Ok(())
    } else {
        Err(format!("{bb}: call to {callee} passes {actual} args, expected {expected}"))
    }
}

fn check_types(module: &Module, func: &Function, bb: BlockId, op: &Op) -> Result<(), String> {
    let ty = |v: ValueId| func.value_type(v);
    match op {
        Op::Bin { op: bin, lhs, rhs } => {
            let (l, r) = (ty(*lhs), ty(*rhs));
            if l != r {
                return Err(format!("{bb}: binop {} with mixed types {l}/{r}", bin.mnemonic()));
            }
            let numeric = matches!(l, Type::I64 | Type::F64);
            let ok = match bin {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => numeric,
                BinOp::Min | BinOp::Max => numeric,
                BinOp::And | BinOp::Or | BinOp::Xor => matches!(l, Type::I64 | Type::Bool),
                BinOp::Shl | BinOp::Shr => l == Type::I64,
            };
            if !ok {
                return Err(format!("{bb}: binop {} on {l}", bin.mnemonic()));
            }
            Ok(())
        }
        Op::Cmp { lhs, rhs, .. } => {
            let (l, r) = (ty(*lhs), ty(*rhs));
            if l != r {
                return Err(format!("{bb}: comparison with mixed types {l}/{r}"));
            }
            Ok(())
        }
        Op::Un { op: un, operand } => {
            let t = ty(*operand);
            let ok = match un {
                UnOp::Neg | UnOp::Abs => matches!(t, Type::I64 | Type::F64),
                UnOp::Not => matches!(t, Type::I64 | Type::Bool),
                UnOp::IntToFloat => t == Type::I64,
                UnOp::FloatToInt | UnOp::Sqrt => t == Type::F64,
            };
            if !ok {
                return Err(format!("{bb}: unop {} on {t}", un.mnemonic()));
            }
            Ok(())
        }
        Op::Phi { incomings, ty: phi_ty } => {
            for inc in incomings {
                if ty(inc.value) != *phi_ty {
                    return Err(format!(
                        "{bb}: phi incoming {} has type {}, expected {phi_ty}",
                        inc.value,
                        ty(inc.value)
                    ));
                }
            }
            Ok(())
        }
        Op::Gep { base, offset } => {
            if ty(*base) != Type::Ptr {
                return Err(format!("{bb}: gep base is {}", ty(*base)));
            }
            if ty(*offset) != Type::I64 {
                return Err(format!("{bb}: gep offset is {}", ty(*offset)));
            }
            Ok(())
        }
        Op::Load { addr, .. } => {
            if ty(*addr) != Type::Ptr {
                return Err(format!("{bb}: load address is {}", ty(*addr)));
            }
            Ok(())
        }
        Op::Store { addr, .. } => {
            if ty(*addr) != Type::Ptr {
                return Err(format!("{bb}: store address is {}", ty(*addr)));
            }
            Ok(())
        }
        Op::Alloca { size } | Op::Rand { bound: size } => {
            if ty(*size) != Type::I64 {
                return Err(format!("{bb}: size/bound operand is {}", ty(*size)));
            }
            Ok(())
        }
        Op::AtomicFetchAdd { delta, .. } => {
            if ty(*delta) != Type::I64 {
                return Err(format!("{bb}: fetch-add delta is {}", ty(*delta)));
            }
            Ok(())
        }
        Op::Br { cond, .. } => {
            if ty(*cond) != Type::Bool {
                return Err(format!("{bb}: branch condition is {}", ty(*cond)));
            }
            Ok(())
        }
        Op::Call { func: f, args, .. } => {
            let callee = module.func(*f);
            for (arg, expected) in args.iter().zip(&callee.params) {
                if ty(*arg) != *expected {
                    return Err(format!("{bb}: argument type mismatch calling `{}`", callee.name));
                }
            }
            Ok(())
        }
        Op::CallIndirect { table, selector, args, .. } => {
            if ty(*selector) != Type::I64 {
                return Err(format!("{bb}: indirect-call selector is {}", ty(*selector)));
            }
            let callee = module.func(module.tables[table.index()].funcs[0]);
            for (arg, expected) in args.iter().zip(&callee.params) {
                if ty(*arg) != *expected {
                    return Err(format!("{bb}: argument type mismatch in indirect call"));
                }
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpOp, Inst};
    use crate::value::Val;

    fn empty_module() -> Module {
        Module::new("t")
    }

    #[test]
    fn accepts_valid_function() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Some(Type::I64));
        let p = b.param(0);
        let one = b.const_i64(1);
        let s = b.add(p, one);
        b.ret(Some(s));
        m.add_func(b.finish());
        assert_eq!(verify_module(&m), Ok(()));
    }

    #[test]
    fn rejects_missing_terminator() {
        let mut m = empty_module();
        let mut f = Function::new("f", vec![], None);
        f.block_mut(BlockId(0)).insts.push(Inst {
            op: Op::Const(Val::I64(1)),
            result: None,
            ty: None,
        });
        m.add_func(f);
        let e = verify_module(&m).unwrap_err();
        assert!(e.message.contains("terminator"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![], None);
        let t = b.add_block("t");
        let e = b.add_block("e");
        // Build a branch on a value defined only in the `then` block.
        b.const_bool(true);
        let cond = ValueId(0);
        b.br(cond, t, e);
        b.switch_to(t);
        let v = b.const_i64(1); // defined in t
        b.jump(e);
        b.switch_to(e);
        b.output(v); // not dominated: e reachable from entry directly
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("not dominated"), "{err}");
    }

    #[test]
    fn rejects_mixed_type_binop() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![], None);
        let i = b.const_i64(1);
        let f = b.const_f64(1.0);
        // bypass builder type inference by writing through bin directly
        let bad = b.bin(BinOp::Add, i, f);
        b.output(bad);
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("mixed types"), "{err}");
    }

    #[test]
    fn rejects_non_bool_branch_condition() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![], None);
        let t = b.add_block("t");
        let i = b.const_i64(1);
        b.br(i, t, t);
        b.switch_to(t);
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("branch condition"), "{err}");
    }

    #[test]
    fn rejects_phi_not_covering_preds() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![Type::Bool], None);
        let cond = b.param(0);
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        b.br(cond, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.phi(Type::I64, vec![(t, one)]); // missing incoming from e
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("covers"), "{err}");
    }

    #[test]
    fn rejects_duplicate_function_names() {
        let mut m = empty_module();
        for _ in 0..2 {
            let mut b = FunctionBuilder::new("dup", vec![], None);
            b.ret(None);
            m.add_func(b.finish());
        }
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_out_of_range_mutex() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.mutex_lock(crate::ids::MutexId(3));
        b.ret(None);
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("mutex"), "{err}");
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![], Some(Type::I64));
        let v = b.const_bool(true);
        b.ret(Some(v));
        m.add_func(b.finish());
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("return value type"), "{err}");
    }

    #[test]
    fn rejects_empty_table() {
        let mut m = empty_module();
        m.add_table("empty", vec![]);
        let err = verify_module(&m).unwrap_err();
        assert!(err.message.contains("empty"), "{err}");
    }

    #[test]
    fn accepts_loop_with_back_edge_phi() {
        let mut m = empty_module();
        let mut b = FunctionBuilder::new("f", vec![], None);
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        let zero = b.const_i64(0);
        let entry = b.current_block();
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let ten = b.const_i64(10);
        let c = b.cmp(CmpOp::Lt, i, ten);
        b.br(c, body, exit);
        b.switch_to(body);
        let one = b.const_i64(1);
        let next = b.add(i, one);
        b.add_phi_incoming(i, body, next);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_func(b.finish());
        assert_eq!(verify_module(&m), Ok(()));
    }
}
