//! Control-flow graph utilities: predecessor/successor maps and orderings.

use crate::function::Function;
use crate::ids::BlockId;

/// Precomputed CFG edges for a function.
#[derive(Clone, Debug)]
pub struct Cfg {
    succs: Vec<Vec<BlockId>>,
    preds: Vec<Vec<BlockId>>,
}

impl Cfg {
    /// Computes the CFG of `func` from its terminators. Blocks without a
    /// terminator (only possible mid-construction) have no successors.
    pub fn new(func: &Function) -> Self {
        let n = func.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bb, block) in func.iter_blocks() {
            if let Some(term) = block.terminator() {
                for succ in term.op.successors() {
                    succs[bb.index()].push(succ);
                    preds[succ.index()].push(bb);
                }
            }
        }
        Cfg { succs, preds }
    }

    /// Successors of a block.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn succs(&self, block: BlockId) -> &[BlockId] {
        &self.succs[block.index()]
    }

    /// Predecessors of a block.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn preds(&self, block: BlockId) -> &[BlockId] {
        &self.preds[block.index()]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks in reverse postorder from the entry. Unreachable blocks are
    /// excluded.
    pub fn reverse_postorder(&self, entry: BlockId) -> Vec<BlockId> {
        let mut order = self.postorder(entry);
        order.reverse();
        order
    }

    /// Blocks in postorder from the entry (iterative DFS). Unreachable
    /// blocks are excluded.
    pub fn postorder(&self, entry: BlockId) -> Vec<BlockId> {
        let n = self.len();
        let mut visited = vec![false; n];
        let mut order = Vec::with_capacity(n);
        // Each stack frame is (block, next-successor-index).
        let mut stack: Vec<(BlockId, usize)> = vec![(entry, 0)];
        visited[entry.index()] = true;
        while let Some((bb, idx)) = stack.last_mut() {
            let succs = &self.succs[bb.index()];
            if *idx < succs.len() {
                let next = succs[*idx];
                *idx += 1;
                if !visited[next.index()] {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
            } else {
                order.push(*bb);
                stack.pop();
            }
        }
        order
    }

    /// Blocks reachable from `entry`, as a boolean vector indexed by block.
    pub fn reachable(&self, entry: BlockId) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut work = vec![entry];
        seen[entry.index()] = true;
        while let Some(bb) = work.pop() {
            for &succ in self.succs(bb) {
                if !seen[succ.index()] {
                    seen[succ.index()] = true;
                    work.push(succ);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::Type;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("f", vec![Type::Bool], None);
        let cond = b.param(0);
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        b.br(cond, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_edges() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs(BlockId(0)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(3)), &[BlockId(1), BlockId(2)]);
        assert_eq!(cfg.preds(BlockId(0)), &[] as &[BlockId]);
    }

    #[test]
    fn rpo_starts_at_entry_ends_at_exit() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder(BlockId(0));
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo[3], BlockId(3));
    }

    #[test]
    fn rpo_excludes_unreachable() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let dead = b.add_block("dead");
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder(BlockId(0));
        assert_eq!(rpo, vec![BlockId(0)]);
        let reach = cfg.reachable(BlockId(0));
        assert!(reach[0]);
        assert!(!reach[1]);
    }

    #[test]
    fn loop_rpo_visits_header_before_body() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        let c = b.const_bool(true);
        b.jump(header);
        b.switch_to(header);
        b.br(c, body, exit);
        b.switch_to(body);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder(BlockId(0));
        let pos =
            |bb: BlockId| rpo.iter().position(|&x| x == bb).unwrap();
        assert!(pos(header) < pos(body));
    }
}
