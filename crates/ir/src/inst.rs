//! Instruction set of the BLOCKWATCH IR.
//!
//! The IR is in SSA form: each instruction that produces a result defines a
//! fresh [`ValueId`]; operands refer to earlier definitions (or, for phi
//! nodes, to definitions flowing in along predecessor edges).
//!
//! The instruction set is deliberately small but covers everything the
//! SPLASH-2 kernel ports and the similarity analysis need: integer/float
//! arithmetic, comparisons, shared and thread-local memory, direct and
//! table-indirect calls, pthread-style synchronization, and the thread-ID
//! intrinsics that seed the `threadID` similarity category.

use serde::{Deserialize, Serialize};

use crate::ids::{BarrierId, BlockId, CallSiteId, FuncId, GlobalId, MutexId, TableId, ValueId};
use crate::value::{Type, Val};

/// Binary arithmetic / logical operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinOp {
    /// Addition (wrapping for `i64`).
    Add,
    /// Subtraction (wrapping for `i64`).
    Sub,
    /// Multiplication (wrapping for `i64`).
    Mul,
    /// Division. Integer division by zero traps at runtime.
    Div,
    /// Remainder. Integer remainder by zero traps at runtime.
    Rem,
    /// Bitwise and (also boolean and).
    And,
    /// Bitwise or (also boolean or).
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift (shift amount masked to 0..64).
    Shl,
    /// Arithmetic right shift (shift amount masked to 0..64).
    Shr,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
}

impl BinOp {
    /// Short mnemonic used by the IR printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::Div => "div",
            BinOp::Rem => "rem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::Shr => "shr",
            BinOp::Min => "min",
            BinOp::Max => "max",
        }
    }
}

/// Comparison predicates.
///
/// The predicate is recorded in branch check specs: for `threadID`-category
/// branches the runtime check depends on the comparison shape (an equality
/// against a shared value means at most one thread dissents; an ordered
/// comparison means outcomes are monotone in thread ID).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// Short mnemonic used by the IR printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The predicate with operands swapped (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logically negated predicate (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Boolean / bitwise not.
    Not,
    /// Convert `i64` to `f64`.
    IntToFloat,
    /// Truncate `f64` to `i64`.
    FloatToInt,
    /// Square root (f64).
    Sqrt,
    /// Absolute value.
    Abs,
}

impl UnOp {
    /// Short mnemonic used by the IR printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            UnOp::Neg => "neg",
            UnOp::Not => "not",
            UnOp::IntToFloat => "i2f",
            UnOp::FloatToInt => "f2i",
            UnOp::Sqrt => "sqrt",
            UnOp::Abs => "abs",
        }
    }
}

/// One incoming edge of a phi node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PhiIncoming {
    /// Predecessor block the value flows in from.
    pub block: BlockId,
    /// Value defined on that path.
    pub value: ValueId,
}

/// The operation performed by an instruction.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing; variants are documented
pub enum Op {
    /// A literal constant.
    Const(Val),
    /// Binary operation.
    Bin { op: BinOp, lhs: ValueId, rhs: ValueId },
    /// Comparison producing a `Bool`.
    Cmp { op: CmpOp, lhs: ValueId, rhs: ValueId },
    /// Unary operation.
    Un { op: UnOp, operand: ValueId },
    /// SSA phi node. Must appear at the start of a block.
    Phi { incomings: Vec<PhiIncoming>, ty: Type },
    /// Address of a global (scalar or array base).
    GlobalAddr(GlobalId),
    /// Pointer arithmetic: `base` displaced by `offset` words (i64).
    Gep { base: ValueId, offset: ValueId },
    /// Load one word from memory.
    Load { addr: ValueId, ty: Type },
    /// Store one word to memory.
    Store { addr: ValueId, value: ValueId },
    /// Allocate `size` words (i64 value) of thread-local memory; yields a
    /// `Ptr` to the start. Local allocations live until the thread exits.
    Alloca { size: ValueId },
    /// The executing thread's ID in `0..nthreads`. Seeds the `threadID`
    /// similarity category.
    ThreadId,
    /// The number of threads executing the parallel section. A shared value.
    NumThreads,
    /// Atomic fetch-and-add on a shared global scalar; yields the value
    /// before the addition. When the global is marked as a thread-ID counter
    /// (the `procid = id++` pattern of the paper) the result seeds the
    /// `threadID` category.
    AtomicFetchAdd { global: GlobalId, delta: ValueId },
    /// Direct call. `site` is the module-unique static call-site ID used in
    /// the runtime branch key.
    Call { func: FuncId, args: Vec<ValueId>, site: CallSiteId },
    /// Indirect call through a function table (`raytrace`-style function
    /// pointers): calls `table[selector % table.len()]`. A selector outside
    /// the table bounds traps.
    CallIndirect { table: TableId, selector: ValueId, args: Vec<ValueId>, site: CallSiteId },
    /// Append a value to the program output (used for golden-run / SDC
    /// comparison).
    Output(ValueId),
    /// Acquire a mutex.
    MutexLock(MutexId),
    /// Release a mutex.
    MutexUnlock(MutexId),
    /// Wait at a barrier until all threads arrive.
    Barrier(BarrierId),
    /// Pseudo-random i64 in `[0, bound)` drawn from the thread's
    /// deterministic PRNG stream. Used by workload generators inside ports.
    Rand { bound: ValueId },
    /// Conditional branch terminator.
    Br { cond: ValueId, then_bb: BlockId, else_bb: BlockId },
    /// Unconditional jump terminator.
    Jump(BlockId),
    /// Return terminator with an optional value.
    Ret(Option<ValueId>),
    /// Trap terminator: abort the executing thread with an error (used to
    /// model assertion failures in ports).
    Trap,
}

impl Op {
    /// Whether this op is a block terminator.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Op::Br { .. } | Op::Jump(_) | Op::Ret(_) | Op::Trap)
    }

    /// Whether this op is a conditional branch (the subject of BLOCKWATCH
    /// similarity analysis — note the paper folds loops into "branches").
    pub fn is_branch(&self) -> bool {
        matches!(self, Op::Br { .. })
    }

    /// Whether this op is a phi node.
    pub fn is_phi(&self) -> bool {
        matches!(self, Op::Phi { .. })
    }

    /// The result type of this op, or `None` if it produces no value.
    pub fn result_type(&self) -> Option<Type> {
        match self {
            Op::Const(v) => Some(v.ty()),
            Op::Bin { .. } => None, // depends on operands; filled by builder
            Op::Cmp { .. } => Some(Type::Bool),
            Op::Un { .. } => None, // depends on operand; filled by builder
            Op::Phi { ty, .. } => Some(*ty),
            Op::GlobalAddr(_) | Op::Gep { .. } | Op::Alloca { .. } => Some(Type::Ptr),
            Op::Load { ty, .. } => Some(*ty),
            Op::ThreadId | Op::NumThreads | Op::AtomicFetchAdd { .. } | Op::Rand { .. } => {
                Some(Type::I64)
            }
            Op::Call { .. } | Op::CallIndirect { .. } => None, // from callee signature
            Op::Store { .. }
            | Op::Output(_)
            | Op::MutexLock(_)
            | Op::MutexUnlock(_)
            | Op::Barrier(_)
            | Op::Br { .. }
            | Op::Jump(_)
            | Op::Ret(_)
            | Op::Trap => None,
        }
    }

    /// Iterates over the value operands of this op (excluding phi incomings,
    /// which require edge context; use [`Op::phi_incomings`] for those).
    pub fn operands(&self) -> Vec<ValueId> {
        match self {
            Op::Const(_)
            | Op::GlobalAddr(_)
            | Op::ThreadId
            | Op::NumThreads
            | Op::MutexLock(_)
            | Op::MutexUnlock(_)
            | Op::Barrier(_)
            | Op::Jump(_)
            | Op::Trap => Vec::new(),
            Op::Phi { incomings, .. } => incomings.iter().map(|inc| inc.value).collect(),
            Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => vec![*lhs, *rhs],
            Op::Un { operand, .. } => vec![*operand],
            Op::Gep { base, offset } => vec![*base, *offset],
            Op::Load { addr, .. } => vec![*addr],
            Op::Store { addr, value } => vec![*addr, *value],
            Op::Alloca { size } => vec![*size],
            Op::AtomicFetchAdd { delta, .. } => vec![*delta],
            Op::Call { args, .. } => args.clone(),
            Op::CallIndirect { selector, args, .. } => {
                let mut v = vec![*selector];
                v.extend_from_slice(args);
                v
            }
            Op::Output(v) => vec![*v],
            Op::Rand { bound } => vec![*bound],
            Op::Br { cond, .. } => vec![*cond],
            Op::Ret(v) => v.iter().copied().collect(),
        }
    }

    /// The phi incomings, if this is a phi node.
    pub fn phi_incomings(&self) -> Option<&[PhiIncoming]> {
        match self {
            Op::Phi { incomings, .. } => Some(incomings),
            _ => None,
        }
    }

    /// The successor blocks of this op, if it is a terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Op::Br { then_bb, else_bb, .. } => vec![*then_bb, *else_bb],
            Op::Jump(bb) => vec![*bb],
            Op::Ret(_) | Op::Trap => Vec::new(),
            _ => Vec::new(),
        }
    }
}

/// An instruction: an op plus its (optional) result value and type.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Inst {
    /// The operation.
    pub op: Op,
    /// The SSA value this instruction defines, if any.
    pub result: Option<ValueId>,
    /// The type of the result, if any.
    pub ty: Option<Type>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminator_classification() {
        assert!(Op::Jump(BlockId(0)).is_terminator());
        assert!(Op::Ret(None).is_terminator());
        assert!(Op::Trap.is_terminator());
        assert!(Op::Br { cond: ValueId(0), then_bb: BlockId(1), else_bb: BlockId(2) }
            .is_terminator());
        assert!(!Op::ThreadId.is_terminator());
    }

    #[test]
    fn branch_classification() {
        assert!(Op::Br { cond: ValueId(0), then_bb: BlockId(1), else_bb: BlockId(2) }.is_branch());
        assert!(!Op::Jump(BlockId(0)).is_branch());
    }

    #[test]
    fn successors_of_terminators() {
        let br = Op::Br { cond: ValueId(0), then_bb: BlockId(1), else_bb: BlockId(2) };
        assert_eq!(br.successors(), vec![BlockId(1), BlockId(2)]);
        assert_eq!(Op::Jump(BlockId(7)).successors(), vec![BlockId(7)]);
        assert!(Op::Ret(None).successors().is_empty());
    }

    #[test]
    fn operand_lists() {
        let bin = Op::Bin { op: BinOp::Add, lhs: ValueId(1), rhs: ValueId(2) };
        assert_eq!(bin.operands(), vec![ValueId(1), ValueId(2)]);
        let call = Op::Call { func: FuncId(0), args: vec![ValueId(3)], site: CallSiteId(0) };
        assert_eq!(call.operands(), vec![ValueId(3)]);
        let ci = Op::CallIndirect {
            table: TableId(0),
            selector: ValueId(9),
            args: vec![ValueId(1)],
            site: CallSiteId(1),
        };
        assert_eq!(ci.operands(), vec![ValueId(9), ValueId(1)]);
    }

    #[test]
    fn cmp_op_swapped_and_negated() {
        assert_eq!(CmpOp::Lt.swapped(), CmpOp::Gt);
        assert_eq!(CmpOp::Eq.swapped(), CmpOp::Eq);
        assert_eq!(CmpOp::Le.negated(), CmpOp::Gt);
        assert_eq!(CmpOp::Ne.negated(), CmpOp::Eq);
    }

    #[test]
    fn result_types() {
        assert_eq!(Op::Const(Val::I64(1)).result_type(), Some(Type::I64));
        assert_eq!(
            Op::Cmp { op: CmpOp::Eq, lhs: ValueId(0), rhs: ValueId(1) }.result_type(),
            Some(Type::Bool)
        );
        assert_eq!(Op::ThreadId.result_type(), Some(Type::I64));
        assert_eq!(Op::Trap.result_type(), None);
    }
}
