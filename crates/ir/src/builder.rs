//! Convenience builder for constructing SSA functions.
//!
//! The builder tracks the "current block" and appends instructions to it,
//! allocating result values and recording definition sites. It performs
//! local type inference for arithmetic (result type = lhs type) and checks
//! simple invariants eagerly so mistakes surface at construction time rather
//! than in the verifier.
//!
//! # Examples
//!
//! ```
//! use bw_ir::{Module, FunctionBuilder, Type, Val, BinOp, CmpOp};
//!
//! let mut module = Module::new("demo");
//! let mut b = FunctionBuilder::new("slave", vec![], None);
//! let tid = b.thread_id();
//! let zero = b.const_i64(0);
//! let is_leader = b.cmp(CmpOp::Eq, tid, zero);
//! let then_bb = b.add_block("leader");
//! let join_bb = b.add_block("join");
//! b.br(is_leader, then_bb, join_bb);
//! b.switch_to(then_bb);
//! b.jump(join_bb);
//! b.switch_to(join_bb);
//! b.ret(None);
//! let func = b.finish();
//! module.add_func(func);
//! ```

use crate::ids::{BarrierId, BlockId, FuncId, GlobalId, MutexId, TableId, ValueId};
use crate::function::{Function, ValueDef};
use crate::inst::{BinOp, CmpOp, Inst, Op, PhiIncoming, UnOp};
use crate::module::Module;
use crate::value::{Type, Val};

/// Incremental builder for one [`Function`].
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: BlockId,
    sealed: bool,
}

impl FunctionBuilder {
    /// Starts building a function with the given signature. The current
    /// block is the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Option<Type>) -> Self {
        FunctionBuilder { func: Function::new(name, params, ret), current: BlockId(0), sealed: false }
    }

    /// The `n`-th parameter as an SSA value.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn param(&self, n: usize) -> ValueId {
        assert!(n < self.func.params.len(), "parameter index out of range");
        ValueId::from_index(n)
    }

    /// Creates a new (empty) block.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(Some(name.into()))
    }

    /// Makes `block` the current insertion point.
    pub fn switch_to(&mut self, block: BlockId) {
        self.current = block;
    }

    /// The current insertion block.
    pub fn current_block(&self) -> BlockId {
        self.current
    }

    /// Whether the current block already ends in a terminator.
    pub fn current_is_terminated(&self) -> bool {
        self.func.block(self.current).terminator().is_some()
    }

    fn push(&mut self, op: Op, ty: Option<Type>) -> Option<ValueId> {
        assert!(
            !self.current_is_terminated(),
            "appending to already-terminated block {} in `{}`",
            self.current,
            self.func.name
        );
        let block = self.current;
        let inst_index = self.func.block(block).insts.len();
        let result = ty.map(|t| self.func.new_value(t, ValueDef::Inst { block, inst_index }));
        self.func.block_mut(block).insts.push(Inst { op, result, ty });
        result
    }

    fn push_value(&mut self, op: Op, ty: Type) -> ValueId {
        self.push(op, Some(ty)).expect("value-producing op")
    }

    /// An `i64` constant.
    pub fn const_i64(&mut self, v: i64) -> ValueId {
        self.push_value(Op::Const(Val::I64(v)), Type::I64)
    }

    /// An `f64` constant.
    pub fn const_f64(&mut self, v: f64) -> ValueId {
        self.push_value(Op::Const(Val::F64(v)), Type::F64)
    }

    /// A `bool` constant.
    pub fn const_bool(&mut self, v: bool) -> ValueId {
        self.push_value(Op::Const(Val::Bool(v)), Type::Bool)
    }

    /// A binary operation; the result type is the lhs type.
    pub fn bin(&mut self, op: BinOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        let ty = self.func.value_type(lhs);
        self.push_value(Op::Bin { op, lhs, rhs }, ty)
    }

    /// `lhs + rhs`.
    pub fn add(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`.
    pub fn sub(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`.
    pub fn mul(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Mul, lhs, rhs)
    }

    /// `lhs / rhs`.
    pub fn div(&mut self, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.bin(BinOp::Div, lhs, rhs)
    }

    /// A comparison producing `bool`.
    pub fn cmp(&mut self, op: CmpOp, lhs: ValueId, rhs: ValueId) -> ValueId {
        self.push_value(Op::Cmp { op, lhs, rhs }, Type::Bool)
    }

    /// A unary operation.
    pub fn un(&mut self, op: UnOp, operand: ValueId) -> ValueId {
        let ty = match op {
            UnOp::IntToFloat | UnOp::Sqrt => Type::F64,
            UnOp::FloatToInt => Type::I64,
            UnOp::Neg | UnOp::Abs | UnOp::Not => self.func.value_type(operand),
        };
        self.push_value(Op::Un { op, operand }, ty)
    }

    /// A phi node. Must be inserted before any non-phi instruction of the
    /// current block.
    ///
    /// # Panics
    ///
    /// Panics if the current block already contains a non-phi instruction.
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, ValueId)>) -> ValueId {
        assert!(
            self.func.block(self.current).insts.iter().all(|inst| inst.op.is_phi()),
            "phi after non-phi instruction in {}",
            self.current
        );
        let incomings =
            incomings.into_iter().map(|(block, value)| PhiIncoming { block, value }).collect();
        self.push_value(Op::Phi { incomings, ty }, ty)
    }

    /// Inserts an empty phi at the head of `block` (after any existing
    /// phis) and returns its value. Used by incremental SSA construction;
    /// incomings must be added with [`FunctionBuilder::add_phi_incoming`]
    /// before the function is verified.
    pub fn insert_phi_at_head(&mut self, block: BlockId, ty: Type) -> ValueId {
        let pos = self.func.block(block).insts.iter().take_while(|i| i.op.is_phi()).count();
        // Shift definition records of the instructions the insert displaces.
        for def in &mut self.func.defs {
            if let ValueDef::Inst { block: b, inst_index } = def {
                if *b == block && *inst_index >= pos {
                    *inst_index += 1;
                }
            }
        }
        let result = self.func.new_value(ty, ValueDef::Inst { block, inst_index: pos });
        self.func.block_mut(block).insts.insert(
            pos,
            Inst { op: Op::Phi { incomings: Vec::new(), ty }, result: Some(result), ty: Some(ty) },
        );
        result
    }

    /// Adds an incoming edge to an existing phi (used when building loops,
    /// where the back-edge value is only known after the body is built).
    ///
    /// # Panics
    ///
    /// Panics if `phi` does not name a phi instruction.
    pub fn add_phi_incoming(&mut self, phi: ValueId, block: BlockId, value: ValueId) {
        let def = self.func.defs[phi.index()];
        let ValueDef::Inst { block: phi_block, inst_index } = def else {
            panic!("{phi} is a parameter, not a phi");
        };
        let inst = &mut self.func.block_mut(phi_block).insts[inst_index];
        let Op::Phi { incomings, .. } = &mut inst.op else {
            panic!("{phi} is not a phi instruction");
        };
        incomings.push(PhiIncoming { block, value });
    }

    /// Address of a global.
    pub fn global_addr(&mut self, global: GlobalId) -> ValueId {
        self.push_value(Op::GlobalAddr(global), Type::Ptr)
    }

    /// Pointer displaced by `offset` (i64) words.
    pub fn gep(&mut self, base: ValueId, offset: ValueId) -> ValueId {
        self.push_value(Op::Gep { base, offset }, Type::Ptr)
    }

    /// Load a `ty` word from `addr`.
    pub fn load(&mut self, addr: ValueId, ty: Type) -> ValueId {
        self.push_value(Op::Load { addr, ty }, ty)
    }

    /// Store `value` to `addr`.
    pub fn store(&mut self, addr: ValueId, value: ValueId) {
        self.push(Op::Store { addr, value }, None);
    }

    /// Loads a scalar global: `global_addr` + `load` in one call.
    pub fn load_global(&mut self, module: &Module, global: GlobalId) -> ValueId {
        let ty = module.global(global).ty;
        let addr = self.global_addr(global);
        self.load(addr, ty)
    }

    /// Stores to a scalar global.
    pub fn store_global(&mut self, global: GlobalId, value: ValueId) {
        let addr = self.global_addr(global);
        self.store(addr, value);
    }

    /// Loads `global[index]`.
    pub fn load_index(&mut self, module: &Module, global: GlobalId, index: ValueId) -> ValueId {
        let ty = module.global(global).ty;
        let base = self.global_addr(global);
        let addr = self.gep(base, index);
        self.load(addr, ty)
    }

    /// Stores `value` to `global[index]`.
    pub fn store_index(&mut self, global: GlobalId, index: ValueId, value: ValueId) {
        let base = self.global_addr(global);
        let addr = self.gep(base, index);
        self.store(addr, value);
    }

    /// Allocates `size` thread-local words.
    pub fn alloca(&mut self, size: ValueId) -> ValueId {
        self.push_value(Op::Alloca { size }, Type::Ptr)
    }

    /// The executing thread's id.
    pub fn thread_id(&mut self) -> ValueId {
        self.push_value(Op::ThreadId, Type::I64)
    }

    /// The number of threads.
    pub fn num_threads(&mut self) -> ValueId {
        self.push_value(Op::NumThreads, Type::I64)
    }

    /// Atomic fetch-and-add on a global scalar.
    pub fn atomic_fetch_add(&mut self, global: GlobalId, delta: ValueId) -> ValueId {
        self.push_value(Op::AtomicFetchAdd { global, delta }, Type::I64)
    }

    /// Direct call. Requires `&mut Module` to allocate the call-site id and
    /// to read the callee's return type.
    ///
    /// # Panics
    ///
    /// Panics if the callee id is out of range or the argument count does
    /// not match the callee signature.
    pub fn call(&mut self, module: &mut Module, func: FuncId, args: Vec<ValueId>) -> Option<ValueId> {
        let callee = module.func(func);
        assert_eq!(
            callee.params.len(),
            args.len(),
            "call to `{}` with wrong argument count",
            callee.name
        );
        let ret = callee.ret;
        let site = module.new_call_site();
        self.push(Op::Call { func, args, site }, ret)
    }

    /// Indirect call through a function table. All callees in a table must
    /// share a signature; the return type is taken from the first callee.
    ///
    /// # Panics
    ///
    /// Panics if the table is empty.
    pub fn call_indirect(
        &mut self,
        module: &mut Module,
        table: TableId,
        selector: ValueId,
        args: Vec<ValueId>,
    ) -> Option<ValueId> {
        let first = *module.tables[table.index()]
            .funcs
            .first()
            .expect("indirect call through empty table");
        let ret = module.func(first).ret;
        let site = module.new_call_site();
        self.push(Op::CallIndirect { table, selector, args, site }, ret)
    }

    /// Appends `value` to the program output.
    pub fn output(&mut self, value: ValueId) {
        self.push(Op::Output(value), None);
    }

    /// Acquires a mutex.
    pub fn mutex_lock(&mut self, mutex: MutexId) {
        self.push(Op::MutexLock(mutex), None);
    }

    /// Releases a mutex.
    pub fn mutex_unlock(&mut self, mutex: MutexId) {
        self.push(Op::MutexUnlock(mutex), None);
    }

    /// Waits at a barrier.
    pub fn barrier(&mut self, barrier: BarrierId) {
        self.push(Op::Barrier(barrier), None);
    }

    /// Draws a pseudo-random i64 in `[0, bound)`.
    pub fn rand(&mut self, bound: ValueId) -> ValueId {
        self.push_value(Op::Rand { bound }, Type::I64)
    }

    /// Conditional branch terminator.
    pub fn br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        self.push(Op::Br { cond, then_bb, else_bb }, None);
    }

    /// Unconditional jump terminator.
    pub fn jump(&mut self, target: BlockId) {
        self.push(Op::Jump(target), None);
    }

    /// Return terminator.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.push(Op::Ret(value), None);
    }

    /// Trap terminator.
    pub fn trap(&mut self) {
        self.push(Op::Trap, None);
    }

    /// Low-level escape hatch: appends an arbitrary op with an explicit
    /// result type. Used by the front-end lowering, which performs its own
    /// signature resolution; prefer the typed helpers elsewhere.
    pub fn emit(&mut self, op: Op, ty: Option<Type>) -> Option<ValueId> {
        self.push(op, ty)
    }

    /// Finishes building and returns the function.
    ///
    /// # Panics
    ///
    /// Panics if called twice.
    pub fn finish(mut self) -> Function {
        assert!(!self.sealed, "finish called twice");
        self.sealed = true;
        self.func
    }

    /// Read-only view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_straight_line_code() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Some(Type::I64));
        let p = b.param(0);
        let one = b.const_i64(1);
        let sum = b.add(p, one);
        b.ret(Some(sum));
        let f = b.finish();
        assert_eq!(f.num_insts(), 3);
        assert_eq!(f.value_type(sum), Type::I64);
    }

    #[test]
    fn builds_diamond_cfg() {
        let mut b = FunctionBuilder::new("f", vec![Type::Bool], None);
        let cond = b.param(0);
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        b.br(cond, t, e);
        b.switch_to(t);
        let one = b.const_i64(1);
        b.jump(j);
        b.switch_to(e);
        let two = b.const_i64(2);
        b.jump(j);
        b.switch_to(j);
        let phi = b.phi(Type::I64, vec![(t, one), (e, two)]);
        b.output(phi);
        b.ret(None);
        let f = b.finish();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.num_branches(), 1);
    }

    #[test]
    fn add_phi_incoming_extends_loop_phi() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        let zero = b.const_i64(0);
        let entry = b.current_block();
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let ten = b.const_i64(10);
        let cond = b.cmp(CmpOp::Lt, i, ten);
        b.br(cond, body, exit);
        b.switch_to(body);
        let one = b.const_i64(1);
        let next = b.add(i, one);
        b.add_phi_incoming(i, body, next);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let phi_inst = f.def_inst(i).unwrap();
        assert_eq!(phi_inst.op.phi_incomings().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "already-terminated")]
    fn appending_after_terminator_panics() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        b.const_i64(1);
    }

    #[test]
    #[should_panic(expected = "phi after non-phi")]
    fn phi_after_non_phi_panics() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.const_i64(1);
        b.phi(Type::I64, vec![]);
    }

    #[test]
    fn call_uses_unique_sites_and_signature() {
        let mut m = Module::new("t");
        let callee = m.add_func(Function::new("g", vec![Type::I64], Some(Type::I64)));
        let mut b = FunctionBuilder::new("f", vec![], None);
        let one = b.const_i64(1);
        let r1 = b.call(&mut m, callee, vec![one]).unwrap();
        let r2 = b.call(&mut m, callee, vec![one]).unwrap();
        assert_ne!(r1, r2);
        assert_eq!(m.num_call_sites, 2);
        let f = b.func();
        assert_eq!(f.value_type(r1), Type::I64);
    }
}
