//! Recursive-descent parser for the SPMD mini language.
//!
//! Grammar sketch (see the crate docs of [`crate::frontend`] for the full
//! language reference):
//!
//! ```text
//! module   := ("module" IDENT ";")? item*
//! item     := global | "mutex" IDENT ";" | "barrier" IDENT ";"
//!           | "table" IDENT "=" "{" IDENT,* "}" ";" | func
//! global   := ("shared")? ("tid_counter")? type IDENT ("[" INT "]")?
//!             ("=" literal)? ";"
//! func     := attr? "func" IDENT "(" (IDENT ":" type),* ")" ("->" type)? block
//! ```

use std::fmt;

use crate::frontend::ast::*;
use crate::frontend::lexer::{lex, LexError, Pos, Tok, Token};
use crate::inst::{BinOp, CmpOp, UnOp};
use crate::value::Type;

/// A parse error with position information.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, pos: e.pos }
    }
}

/// Parses a source file into an [`AstModule`].
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error.
pub fn parse(source: &str) -> Result<AstModule, ParseError> {
    let tokens = lex(source)?;
    Parser { tokens, index: 0 }.module()
}

struct Parser {
    tokens: Vec<Token>,
    index: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.index]
    }

    fn peek2(&self) -> &Token {
        &self.tokens[(self.index + 1).min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.index].clone();
        if self.index + 1 < self.tokens.len() {
            self.index += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError { message: message.into(), pos: self.peek().pos })
    }

    fn expect(&mut self, tok: Tok) -> Result<Token, ParseError> {
        if self.peek().tok == tok {
            Ok(self.bump())
        } else {
            self.err(format!("expected `{tok}`, found `{}`", self.peek().tok))
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.peek().is_kw(kw) {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found `{}`", self.peek().tok))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.bump();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found `{other}`")),
        }
    }

    fn try_type(&mut self) -> Option<Type> {
        let ty = match &self.peek().tok {
            Tok::Ident(s) => match s.as_str() {
                "int" => Type::I64,
                "float" => Type::F64,
                "bool" => Type::Bool,
                _ => return None,
            },
            _ => return None,
        };
        self.bump();
        Some(ty)
    }

    fn ty(&mut self) -> Result<Type, ParseError> {
        match self.try_type() {
            Some(t) => Ok(t),
            None => self.err(format!("expected type, found `{}`", self.peek().tok)),
        }
    }

    fn module(&mut self) -> Result<AstModule, ParseError> {
        let mut m = AstModule {
            name: "main".to_string(),
            globals: Vec::new(),
            mutexes: Vec::new(),
            barriers: Vec::new(),
            tables: Vec::new(),
            funcs: Vec::new(),
        };
        if self.peek().is_kw("module") {
            self.bump();
            m.name = self.ident()?;
            self.expect(Tok::Semi)?;
        }
        loop {
            let t = self.peek().clone();
            match &t.tok {
                Tok::Eof => break,
                Tok::Attr(attr) => {
                    let role = match attr.as_str() {
                        "init" => FuncRole::Init,
                        "spmd" => FuncRole::Spmd,
                        "fini" => FuncRole::Fini,
                        other => return self.err(format!("unknown attribute `@{other}`")),
                    };
                    self.bump();
                    m.funcs.push(self.func(role)?);
                }
                Tok::Ident(kw) => match kw.as_str() {
                    "func" => m.funcs.push(self.func(FuncRole::Plain)?),
                    "mutex" => {
                        self.bump();
                        m.mutexes.push(self.ident()?);
                        self.expect(Tok::Semi)?;
                    }
                    "barrier" => {
                        self.bump();
                        m.barriers.push(self.ident()?);
                        self.expect(Tok::Semi)?;
                    }
                    "table" => {
                        let pos = t.pos;
                        self.bump();
                        let name = self.ident()?;
                        self.expect(Tok::Assign)?;
                        self.expect(Tok::LBrace)?;
                        let mut funcs = vec![self.ident()?];
                        while self.peek().tok == Tok::Comma {
                            self.bump();
                            funcs.push(self.ident()?);
                        }
                        self.expect(Tok::RBrace)?;
                        self.expect(Tok::Semi)?;
                        m.tables.push(AstTable { name, funcs, pos });
                    }
                    _ => m.globals.push(self.global()?),
                },
                other => return self.err(format!("expected item, found `{other}`")),
            }
        }
        Ok(m)
    }

    fn global(&mut self) -> Result<AstGlobal, ParseError> {
        let pos = self.peek().pos;
        let mut shared = false;
        let mut tid_counter = false;
        loop {
            if self.eat_kw("shared") {
                shared = true;
            } else if self.eat_kw("tid_counter") {
                tid_counter = true;
            } else {
                break;
            }
        }
        let ty = self.ty()?;
        let name = self.ident()?;
        let len = if self.peek().tok == Tok::LBracket {
            self.bump();
            let n = match self.peek().tok {
                Tok::Int(v) if v > 0 => v as u64,
                _ => return self.err("global array length must be a positive integer literal"),
            };
            self.bump();
            self.expect(Tok::RBracket)?;
            Some(n)
        } else {
            None
        };
        let init = if self.peek().tok == Tok::Assign {
            self.bump();
            Some(self.literal()?)
        } else {
            None
        };
        self.expect(Tok::Semi)?;
        Ok(AstGlobal { name, ty, len, init, shared, tid_counter, pos })
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        let t = self.peek().clone();
        let negative = if t.tok == Tok::Minus {
            self.bump();
            true
        } else {
            false
        };
        let t = self.peek().clone();
        let lit = match t.tok {
            Tok::Int(v) => Literal::Int(if negative { -v } else { v }),
            Tok::Float(v) => Literal::Float(if negative { -v } else { v }),
            Tok::Ident(ref s) if s == "true" && !negative => Literal::Bool(true),
            Tok::Ident(ref s) if s == "false" && !negative => Literal::Bool(false),
            ref other => return self.err(format!("expected literal, found `{other}`")),
        };
        self.bump();
        Ok(lit)
    }

    fn func(&mut self, role: FuncRole) -> Result<AstFunc, ParseError> {
        let pos = self.peek().pos;
        self.expect_kw("func")?;
        let name = self.ident()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                let pname = self.ident()?;
                self.expect(Tok::Colon)?;
                let pty = self.ty()?;
                params.push((pname, pty));
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        let ret = if self.peek().tok == Tok::Arrow {
            self.bump();
            Some(self.ty()?)
        } else {
            None
        };
        let body = self.block()?;
        Ok(AstFunc { name, params, ret, body, role, pos })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek().tok != Tok::RBrace {
            if self.peek().tok == Tok::Eof {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        self.bump();
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let t = self.peek().clone();
        let pos = t.pos;
        match &t.tok {
            Tok::Ident(kw) => match kw.as_str() {
                "var" => {
                    let s = self.var_decl()?;
                    self.expect(Tok::Semi)?;
                    Ok(s)
                }
                "if" => self.if_stmt(),
                "while" => {
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let cond = self.expr()?;
                    self.expect(Tok::RParen)?;
                    let body = self.block()?;
                    Ok(Stmt::While { cond, body, pos })
                }
                "for" => self.for_stmt(),
                "return" => {
                    self.bump();
                    let value = if self.peek().tok == Tok::Semi {
                        None
                    } else {
                        Some(self.expr()?)
                    };
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Return { value, pos })
                }
                "break" => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Break { pos })
                }
                "continue" => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Continue { pos })
                }
                "lock" | "unlock" | "barrier" | "output" => {
                    let which = kw.clone();
                    self.bump();
                    self.expect(Tok::LParen)?;
                    let s = match which.as_str() {
                        "lock" => Stmt::Lock { mutex: self.ident()?, pos },
                        "unlock" => Stmt::Unlock { mutex: self.ident()?, pos },
                        "barrier" => Stmt::BarrierWait { barrier: self.ident()?, pos },
                        _ => Stmt::Output { value: self.expr()?, pos },
                    };
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Semi)?;
                    Ok(s)
                }
                "trap" => {
                    self.bump();
                    self.expect(Tok::Semi)?;
                    Ok(Stmt::Trap { pos })
                }
                _ => {
                    // Assignment or expression statement.
                    let s = self.assign_or_expr()?;
                    self.expect(Tok::Semi)?;
                    Ok(s)
                }
            },
            _ => self.err(format!("expected statement, found `{}`", t.tok)),
        }
    }

    /// Parses `var name: ty (= expr | [len])?` without the trailing `;`.
    fn var_decl(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.peek().pos;
        self.expect_kw("var")?;
        let name = self.ident()?;
        self.expect(Tok::Colon)?;
        let ty = self.ty()?;
        let mut len = None;
        let mut init = None;
        if self.peek().tok == Tok::LBracket {
            self.bump();
            len = Some(self.expr()?);
            self.expect(Tok::RBracket)?;
        } else if self.peek().tok == Tok::Assign {
            self.bump();
            init = Some(self.expr()?);
        }
        Ok(Stmt::VarDecl { name, ty, len, init, pos })
    }

    /// Parses an assignment or expression statement, without the `;`.
    fn assign_or_expr(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.peek().pos;
        // Lookahead: IDENT `=` or IDENT `[`…`]` `=` is an assignment;
        // everything else is an expression statement.
        if let Tok::Ident(name) = &self.peek().tok {
            let name = name.clone();
            if self.peek2().tok == Tok::Assign {
                self.bump();
                self.bump();
                let value = self.expr()?;
                return Ok(Stmt::Assign { target: LValue::Name(name), value, pos });
            }
            if self.peek2().tok == Tok::LBracket {
                // Could be `a[i] = e`, `a[i]` in an expression, or an
                // indirect call `t[i](args)`. Parse the index, then decide.
                let save = self.index;
                self.bump(); // name
                self.bump(); // [
                let index = self.expr()?;
                if self.peek().tok == Tok::RBracket && self.peek2().tok == Tok::Assign {
                    self.bump(); // ]
                    self.bump(); // =
                    let value = self.expr()?;
                    return Ok(Stmt::Assign {
                        target: LValue::Index(name, Box::new(index)),
                        value,
                        pos,
                    });
                }
                self.index = save;
            }
        }
        let expr = self.expr()?;
        Ok(Stmt::ExprStmt { expr, pos })
    }

    fn if_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.peek().pos;
        self.expect_kw("if")?;
        self.expect(Tok::LParen)?;
        let cond = self.expr()?;
        self.expect(Tok::RParen)?;
        let then_body = self.block()?;
        let else_body = if self.peek().is_kw("else") {
            self.bump();
            if self.peek().is_kw("if") {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If { cond, then_body, else_body, pos })
    }

    fn for_stmt(&mut self) -> Result<Stmt, ParseError> {
        let pos = self.peek().pos;
        self.expect_kw("for")?;
        self.expect(Tok::LParen)?;
        let init = if self.peek().tok == Tok::Semi {
            None
        } else if self.peek().is_kw("var") {
            Some(Box::new(self.var_decl()?))
        } else {
            Some(Box::new(self.assign_or_expr()?))
        };
        self.expect(Tok::Semi)?;
        let cond = self.expr()?;
        self.expect(Tok::Semi)?;
        let step = if self.peek().tok == Tok::RParen {
            None
        } else {
            Some(Box::new(self.assign_or_expr()?))
        };
        self.expect(Tok::RParen)?;
        let body = self.block()?;
        Ok(Stmt::For { init, cond, step, body, pos })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek().tok == Tok::OrOr {
            let pos = self.bump().pos;
            let rhs = self.and_expr()?;
            lhs = Expr::LogicalOr(Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitor_expr()?;
        while self.peek().tok == Tok::AndAnd {
            let pos = self.bump().pos;
            let rhs = self.bitor_expr()?;
            lhs = Expr::LogicalAnd(Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn bitor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitxor_expr()?;
        while self.peek().tok == Tok::Pipe {
            let pos = self.bump().pos;
            let rhs = self.bitxor_expr()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn bitxor_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.bitand_expr()?;
        while self.peek().tok == Tok::Caret {
            let pos = self.bump().pos;
            let rhs = self.bitand_expr()?;
            lhs = Expr::Bin(BinOp::Xor, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn bitand_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek().tok == Tok::Amp {
            let pos = self.bump().pos;
            let rhs = self.cmp_expr()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.shift_expr()?;
        let op = match self.peek().tok {
            Tok::EqEq => CmpOp::Eq,
            Tok::NotEq => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        let pos = self.bump().pos;
        let rhs = self.shift_expr()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs), pos))
    }

    fn shift_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Shl => BinOp::Shl,
                Tok::Shr => BinOp::Shr,
                _ => return Ok(lhs),
            };
            let pos = self.bump().pos;
            let rhs = self.add_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            let pos = self.bump().pos;
            let rhs = self.mul_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek().tok {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            let pos = self.bump().pos;
            let rhs = self.unary_expr()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().tok {
            Tok::Minus => {
                let pos = self.bump().pos;
                let operand = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Neg, Box::new(operand), pos))
            }
            Tok::Not => {
                let pos = self.bump().pos;
                let operand = self.unary_expr()?;
                Ok(Expr::Un(UnOp::Not, Box::new(operand), pos))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let t = self.peek().clone();
        let pos = t.pos;
        match &t.tok {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(*v), pos))
            }
            Tok::Float(v) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(*v), pos))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) => {
                let name = name.clone();
                match name.as_str() {
                    "true" => {
                        self.bump();
                        return Ok(Expr::Literal(Literal::Bool(true), pos));
                    }
                    "false" => {
                        self.bump();
                        return Ok(Expr::Literal(Literal::Bool(false), pos));
                    }
                    _ => {}
                }
                self.bump();
                match self.peek().tok {
                    Tok::LParen => {
                        let args = self.call_args()?;
                        self.intrinsic_or_call(name, args, pos)
                    }
                    Tok::LBracket => {
                        self.bump();
                        let index = self.expr()?;
                        self.expect(Tok::RBracket)?;
                        if self.peek().tok == Tok::LParen {
                            let args = self.call_args()?;
                            Ok(Expr::CallIndirect(name, Box::new(index), args, pos))
                        } else {
                            Ok(Expr::Index(name, Box::new(index), pos))
                        }
                    }
                    _ => Ok(Expr::Name(name, pos)),
                }
            }
            other => self.err(format!("expected expression, found `{other}`")),
        }
    }

    fn call_args(&mut self) -> Result<Vec<Expr>, ParseError> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                args.push(self.expr()?);
                if self.peek().tok == Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn intrinsic_or_call(
        &mut self,
        name: String,
        mut args: Vec<Expr>,
        pos: Pos,
    ) -> Result<Expr, ParseError> {
        let arity = |n: usize, args: &[Expr]| -> Result<(), ParseError> {
            if args.len() == n {
                Ok(())
            } else {
                Err(ParseError {
                    message: format!("`{name}` expects {n} argument(s), got {}", args.len()),
                    pos,
                })
            }
        };
        match name.as_str() {
            "threadid" => {
                arity(0, &args)?;
                Ok(Expr::ThreadId(pos))
            }
            "numthreads" => {
                arity(0, &args)?;
                Ok(Expr::NumThreads(pos))
            }
            "rand" => {
                arity(1, &args)?;
                Ok(Expr::Rand(Box::new(args.remove(0)), pos))
            }
            "fetch_add" => {
                arity(2, &args)?;
                let delta = args.remove(1);
                let target = args.remove(0);
                let Expr::Name(global, _) = target else {
                    return Err(ParseError {
                        message: "first argument of `fetch_add` must be a global name".into(),
                        pos,
                    });
                };
                Ok(Expr::FetchAdd(global, Box::new(delta), pos))
            }
            "float" => {
                arity(1, &args)?;
                Ok(Expr::Un(UnOp::IntToFloat, Box::new(args.remove(0)), pos))
            }
            "int" => {
                arity(1, &args)?;
                Ok(Expr::Un(UnOp::FloatToInt, Box::new(args.remove(0)), pos))
            }
            "sqrt" => {
                arity(1, &args)?;
                Ok(Expr::Un(UnOp::Sqrt, Box::new(args.remove(0)), pos))
            }
            "abs" => {
                arity(1, &args)?;
                Ok(Expr::Un(UnOp::Abs, Box::new(args.remove(0)), pos))
            }
            "min" => {
                arity(2, &args)?;
                let b = args.remove(1);
                let a = args.remove(0);
                Ok(Expr::Bin(BinOp::Min, Box::new(a), Box::new(b), pos))
            }
            "max" => {
                arity(2, &args)?;
                let b = args.remove(1);
                let a = args.remove(0);
                Ok(Expr::Bin(BinOp::Max, Box::new(a), Box::new(b), pos))
            }
            _ => Ok(Expr::Call(name, args, pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_globals() {
        let m = parse("shared int n = 4; float grid[100]; tid_counter int id = 0;").unwrap();
        assert_eq!(m.globals.len(), 3);
        assert!(m.globals[0].shared);
        assert_eq!(m.globals[0].init, Some(Literal::Int(4)));
        assert_eq!(m.globals[1].len, Some(100));
        assert!(m.globals[2].tid_counter);
    }

    #[test]
    fn parses_module_name_and_sync() {
        let m = parse("module fft; mutex m; barrier b;").unwrap();
        assert_eq!(m.name, "fft");
        assert_eq!(m.mutexes, vec!["m"]);
        assert_eq!(m.barriers, vec!["b"]);
    }

    #[test]
    fn parses_function_with_attr() {
        let m = parse("@spmd func slave() { return; }").unwrap();
        assert_eq!(m.funcs.len(), 1);
        assert_eq!(m.funcs[0].role, FuncRole::Spmd);
        assert_eq!(m.funcs[0].body.len(), 1);
    }

    #[test]
    fn parses_params_and_return_type() {
        let m = parse("func f(a: int, b: float) -> int { return a; }").unwrap();
        let f = &m.funcs[0];
        assert_eq!(f.params, vec![("a".into(), Type::I64), ("b".into(), Type::F64)]);
        assert_eq!(f.ret, Some(Type::I64));
    }

    #[test]
    fn parses_control_flow() {
        let src = r#"
            func f() {
                var i: int = 0;
                for (i = 0; i < 10; i = i + 1) {
                    if (i == 5) { break; } else { continue; }
                }
                while (i > 0) { i = i - 1; }
            }
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.funcs[0].body.len(), 3);
    }

    #[test]
    fn parses_expressions_with_precedence() {
        let m = parse("func f() { var x: int = 1 + 2 * 3; }").unwrap();
        let Stmt::VarDecl { init: Some(e), .. } = &m.funcs[0].body[0] else { panic!() };
        // 1 + (2 * 3)
        let Expr::Bin(BinOp::Add, _, rhs, _) = e else { panic!("{e:?}") };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _, _)));
    }

    #[test]
    fn parses_intrinsics() {
        let src = r#"
            int id = 0;
            func f() {
                var t: int = threadid();
                var n: int = numthreads();
                var r: int = rand(10);
                var p: int = fetch_add(id, 1);
                var x: float = float(t);
                var q: float = sqrt(x);
            }
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.funcs[0].body.len(), 6);
    }

    #[test]
    fn parses_indirect_call_and_table() {
        let src = r#"
            table shaders = { a, b };
            func a(x: int) { return; }
            func b(x: int) { return; }
            func f() { shaders[0](1); var v: int = shaders[1](2); }
        "#;
        let m = parse(src).unwrap();
        assert_eq!(m.tables[0].funcs, vec!["a", "b"]);
        let Stmt::ExprStmt { expr: Expr::CallIndirect(name, _, args, _), .. } = &m.funcs[2].body[0]
        else {
            panic!()
        };
        assert_eq!(name, "shaders");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn parses_array_assign_vs_read() {
        let src = r#"
            float grid[10];
            func f() {
                grid[3] = 1.5;
                var x: float = grid[3];
            }
        "#;
        let m = parse(src).unwrap();
        assert!(matches!(
            m.funcs[0].body[0],
            Stmt::Assign { target: LValue::Index(_, _), .. }
        ));
    }

    #[test]
    fn parses_logical_operators() {
        let m = parse("func f(a: bool, b: bool) { if (a && b || !a) { return; } }").unwrap();
        let Stmt::If { cond, .. } = &m.funcs[0].body[0] else { panic!() };
        assert!(matches!(cond, Expr::LogicalOr(_, _, _)));
    }

    #[test]
    fn error_has_position() {
        let err = parse("func f() { var 5; }").unwrap_err();
        assert_eq!(err.pos.line, 1);
        assert!(err.message.contains("identifier"));
    }

    #[test]
    fn rejects_unknown_attribute() {
        assert!(parse("@bogus func f() {}").is_err());
    }

    #[test]
    fn rejects_bad_table() {
        assert!(parse("table t = { };").is_err());
    }

    #[test]
    fn negative_literal_global_init() {
        let m = parse("shared int x = -5;").unwrap();
        assert_eq!(m.globals[0].init, Some(Literal::Int(-5)));
    }

    #[test]
    fn local_array_decl() {
        let m = parse("func f() { var a: int[16]; a[0] = 1; var x: int = a[0]; }").unwrap();
        let Stmt::VarDecl { len: Some(_), .. } = &m.funcs[0].body[0] else { panic!() };
    }
}
