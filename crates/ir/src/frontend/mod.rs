//! Textual front-end: a C-like mini language for SPMD programs.
//!
//! The language mirrors the pthreads/SPMD structure the paper assumes:
//! globals (optionally `shared`, optionally `tid_counter`), mutexes,
//! barriers, function tables (modelling function pointers), and functions
//! with the roles `@init` (single-threaded setup), `@spmd` (executed by all
//! threads) and `@fini` (single-threaded teardown).
//!
//! # Language reference
//!
//! ```text
//! module fft;                     // optional module name
//! shared int n = 64;              // shared global scalar (seeds `shared`)
//! tid_counter int id = 0;         // thread-ID counter (seeds `threadID`)
//! shared float data[1024];        // shared global array
//! int scratch;                    // non-shared global
//! mutex m;  barrier b;            // sync primitives
//! table shaders = { flat, phong };// function table for indirect calls
//!
//! @spmd func slave() {
//!     var procid: int = threadid();          // or fetch_add(id, 1)
//!     if (procid == 0) { output(1); }
//!     for (var i: int = 0; i < n; i = i + 1) {
//!         data[procid * n + i] = float(i);
//!     }
//!     lock(m);   unlock(m);   barrier(b);
//!     shaders[procid % 2](procid);           // indirect call
//! }
//! ```
//!
//! Types are `int` (i64), `float` (f64) and `bool`. Intrinsics:
//! `threadid()`, `numthreads()`, `rand(bound)`, `fetch_add(global, delta)`,
//! `float(x)`, `int(x)`, `sqrt(x)`, `abs(x)`, `min(a,b)`, `max(a,b)`.
//!
//! # Examples
//!
//! ```
//! let module = bw_ir::frontend::compile(r#"
//!     shared int n = 8;
//!     @spmd func slave() {
//!         var t: int = threadid();
//!         if (t < n) { output(t); }
//!     }
//! "#)?;
//! assert_eq!(module.funcs.len(), 1);
//! # Ok::<(), bw_ir::frontend::FrontendError>(())
//! ```

mod ast;
mod lexer;
mod lower;
mod parser;

pub use ast::{
    AstFunc, AstGlobal, AstModule, AstTable, Expr, FuncRole, LValue, Literal, Stmt,
};
pub use lexer::{lex, LexError, Pos, Tok, Token};
pub use lower::{compile, lower, FrontendError, LowerError};
pub use parser::{parse, ParseError};
