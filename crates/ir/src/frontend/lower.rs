//! AST → SSA lowering.
//!
//! Mutable source-level variables become SSA values with the incremental
//! algorithm of Braun et al. ("Simple and Efficient Construction of Static
//! Single Assignment Form", CC 2013): definitions are recorded per
//! `(variable, block)`, reads recurse through predecessors, loop headers
//! receive *incomplete* phis that are completed when the block is sealed.
//!
//! Trivial phis (all incomings equal, ignoring self-references) are left in
//! place; the similarity analysis treats them as copies, so no precision is
//! lost and no use-rewriting machinery is needed.

use std::collections::HashMap;
use std::fmt;

use crate::builder::FunctionBuilder;
use crate::frontend::ast::*;
use crate::frontend::lexer::Pos;
use crate::frontend::parser::ParseError;
use crate::ids::{BarrierId, BlockId, FuncId, GlobalId, MutexId, TableId, ValueId};
use crate::inst::{BinOp, Op, UnOp};
use crate::module::Module;
use crate::value::{Type, Val};
use crate::verify::{verify_module, VerifyError};

/// An error produced while lowering (type errors, unresolved names, …).
#[derive(Clone, Debug, PartialEq)]
pub struct LowerError {
    /// What went wrong.
    pub message: String,
    /// Source position, when known.
    pub pos: Option<Pos>,
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pos {
            Some(pos) => write!(f, "error at {pos}: {}", self.message),
            None => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for LowerError {}

/// Any front-end failure: parsing, lowering, or final verification.
#[derive(Clone, Debug, PartialEq)]
pub enum FrontendError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error during lowering.
    Lower(LowerError),
    /// The lowered module failed IR verification (an internal bug if the
    /// lowering accepted the input).
    Verify(VerifyError),
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::Parse(e) => e.fmt(f),
            FrontendError::Lower(e) => e.fmt(f),
            FrontendError::Verify(e) => write!(f, "post-lowering verification failed: {e}"),
        }
    }
}

impl std::error::Error for FrontendError {}

impl From<ParseError> for FrontendError {
    fn from(e: ParseError) -> Self {
        FrontendError::Parse(e)
    }
}

impl From<LowerError> for FrontendError {
    fn from(e: LowerError) -> Self {
        FrontendError::Lower(e)
    }
}

/// Parses and lowers a source file into a verified [`Module`].
///
/// # Errors
///
/// Returns a [`FrontendError`] on syntax errors, semantic errors, or (in
/// case of an internal lowering bug) verification failures.
pub fn compile(source: &str) -> Result<Module, FrontendError> {
    let ast = crate::frontend::parser::parse(source)?;
    let module = lower(&ast)?;
    verify_module(&module).map_err(FrontendError::Verify)?;
    Ok(module)
}

fn err<T>(message: impl Into<String>, pos: Pos) -> Result<T, LowerError> {
    Err(LowerError { message: message.into(), pos: Some(pos) })
}

/// Lowers a parsed module.
///
/// # Errors
///
/// Returns a [`LowerError`] on semantic errors (unknown names, type
/// mismatches, misplaced `break`, …).
pub fn lower(ast: &AstModule) -> Result<Module, LowerError> {
    let mut module = Module::new(ast.name.clone());
    let mut globals = HashMap::new();
    let mut mutexes = HashMap::new();
    let mut barriers = HashMap::new();
    let mut tables = HashMap::new();

    for g in &ast.globals {
        let init = match (g.init, g.ty) {
            (None, ty) => Val::zero(ty),
            (Some(Literal::Int(v)), Type::I64) => Val::I64(v),
            (Some(Literal::Float(v)), Type::F64) => Val::F64(v),
            (Some(Literal::Bool(v)), Type::Bool) => Val::Bool(v),
            (Some(_), ty) => {
                return err(format!("initializer of `{}` does not have type {ty}", g.name), g.pos)
            }
        };
        if globals.contains_key(&g.name) {
            return err(format!("duplicate global `{}`", g.name), g.pos);
        }
        let id = module.add_array(g.name.clone(), g.ty, g.len.unwrap_or(1), init, g.shared);
        if g.tid_counter {
            module.mark_tid_counter(id);
        }
        globals.insert(g.name.clone(), (id, g.ty, g.len.is_some()));
    }
    for name in &ast.mutexes {
        mutexes.insert(name.clone(), module.add_mutex());
    }
    for name in &ast.barriers {
        barriers.insert(name.clone(), module.add_barrier());
    }

    // Register signatures up front so calls can be resolved in any order.
    let mut sigs: HashMap<String, (FuncId, Vec<Type>, Option<Type>)> = HashMap::new();
    for (i, f) in ast.funcs.iter().enumerate() {
        let params: Vec<Type> = f.params.iter().map(|(_, t)| *t).collect();
        if sigs
            .insert(f.name.clone(), (FuncId::from_index(i), params, f.ret))
            .is_some()
        {
            return err(format!("duplicate function `{}`", f.name), f.pos);
        }
    }

    let mut table_sigs = HashMap::new();
    for t in &ast.tables {
        let mut funcs = Vec::new();
        for name in &t.funcs {
            let Some((id, _, _)) = sigs.get(name) else {
                return err(format!("table `{}` references unknown function `{name}`", t.name), t.pos);
            };
            funcs.push(*id);
        }
        let first = &t.funcs[0];
        let (_, params, ret) = sigs[first.as_str()].clone();
        let id = module.add_table(t.name.clone(), funcs);
        tables.insert(t.name.clone(), id);
        table_sigs.insert(t.name.clone(), (params, ret));
    }

    let ctx = ModuleCtx { globals, mutexes, barriers, tables, table_sigs, sigs };

    let mut next_call_site = 0u32;
    for f in &ast.funcs {
        if f.role != FuncRole::Plain && (!f.params.is_empty() || f.ret.is_some()) {
            return err(
                format!("`{}` has a role attribute and must take no parameters and return nothing", f.name),
                f.pos,
            );
        }
        let func = FuncLowerer::lower_func(&ctx, f, &mut next_call_site)?;
        module.add_func(func);
        let id = FuncId::from_index(module.funcs.len() - 1);
        let slot = match f.role {
            FuncRole::Plain => None,
            FuncRole::Init => Some(&mut module.init),
            FuncRole::Spmd => Some(&mut module.spmd_entry),
            FuncRole::Fini => Some(&mut module.fini),
        };
        if let Some(slot) = slot {
            if slot.is_some() {
                return err(format!("multiple functions with the role of `{}`", f.name), f.pos);
            }
            *slot = Some(id);
        }
    }
    module.num_call_sites = next_call_site;
    Ok(module)
}

struct ModuleCtx {
    globals: HashMap<String, (GlobalId, Type, bool)>, // (id, elem type, is_array)
    mutexes: HashMap<String, MutexId>,
    barriers: HashMap<String, BarrierId>,
    tables: HashMap<String, TableId>,
    /// Shared signature of each table's callees.
    table_sigs: HashMap<String, (Vec<Type>, Option<Type>)>,
    sigs: HashMap<String, (FuncId, Vec<Type>, Option<Type>)>,
}

/// A source-level variable slot.
#[derive(Clone, Copy, Debug)]
struct Slot {
    index: usize,
    /// For scalars, the value type; for arrays, the element type (the SSA
    /// value bound to the slot is the `Ptr` from its `alloca`).
    ty: Type,
    is_array: bool,
}

struct LoopCtx {
    continue_target: BlockId,
    break_target: BlockId,
}

struct FuncLowerer<'c> {
    ctx: &'c ModuleCtx,
    b: FunctionBuilder,
    ret: Option<Type>,
    /// Per-(slot, block) SSA definitions.
    defs: HashMap<(usize, BlockId), ValueId>,
    slot_types: Vec<(Type, bool)>,
    sealed: Vec<bool>,
    preds: Vec<Vec<BlockId>>,
    incomplete: HashMap<BlockId, Vec<(usize, ValueId)>>,
    scopes: Vec<HashMap<String, Slot>>,
    loops: Vec<LoopCtx>,
    reachable: bool,
    next_call_site: &'c mut u32,
}

impl<'c> FuncLowerer<'c> {
    fn lower_func(
        ctx: &'c ModuleCtx,
        f: &AstFunc,
        next_call_site: &'c mut u32,
    ) -> Result<crate::function::Function, LowerError> {
        let params: Vec<Type> = f.params.iter().map(|(_, t)| *t).collect();
        let b = FunctionBuilder::new(f.name.clone(), params, f.ret);
        let mut fl = FuncLowerer {
            ctx,
            b,
            ret: f.ret,
            defs: HashMap::new(),
            slot_types: Vec::new(),
            sealed: vec![true], // entry block has no predecessors
            preds: vec![Vec::new()],
            incomplete: HashMap::new(),
            scopes: vec![HashMap::new()],
            loops: Vec::new(),
            reachable: true,
            next_call_site,
        };
        // Bind parameters as variables.
        for (i, (name, ty)) in f.params.iter().enumerate() {
            let slot = fl.new_slot(*ty, false);
            fl.scopes
                .last_mut()
                .expect("scope stack never empty")
                .insert(name.clone(), slot);
            let param = fl.b.param(i);
            fl.write_var(slot.index, fl.b.current_block(), param);
        }
        fl.lower_stmts(&f.body)?;
        if fl.reachable {
            match f.ret {
                None => fl.b.ret(None),
                Some(_) => {
                    return err(format!("function `{}` may fall off the end without returning", f.name), f.pos)
                }
            }
        }
        if !fl.incomplete.is_empty() {
            // Internal invariant: all blocks must be sealed by now.
            return Err(LowerError {
                message: format!("internal: unsealed blocks remain in `{}`", f.name),
                pos: None,
            });
        }
        let mut func = fl.b.finish();
        // Unreachable blocks created for dead arms may lack terminators;
        // cap them with traps so the function is structurally complete.
        for block in &mut func.blocks {
            let needs_cap = block.insts.last().is_none_or(|inst| !inst.op.is_terminator());
            if needs_cap {
                block
                    .insts
                    .push(crate::inst::Inst { op: Op::Trap, result: None, ty: None });
            }
        }
        Ok(func)
    }

    // ----- SSA bookkeeping (Braun et al.) -----

    fn new_slot(&mut self, ty: Type, is_array: bool) -> Slot {
        let index = self.slot_types.len();
        self.slot_types.push((ty, is_array));
        Slot { index, ty, is_array }
    }

    fn slot_value_type(&self, slot: usize) -> Type {
        let (ty, is_array) = self.slot_types[slot];
        if is_array {
            Type::Ptr
        } else {
            ty
        }
    }

    fn write_var(&mut self, slot: usize, block: BlockId, value: ValueId) {
        self.defs.insert((slot, block), value);
    }

    fn read_var(&mut self, slot: usize, block: BlockId) -> ValueId {
        if let Some(&v) = self.defs.get(&(slot, block)) {
            return v;
        }
        let value = if !self.sealed[block.index()] {
            let phi = self.b.insert_phi_at_head(block, self.slot_value_type(slot));
            self.incomplete.entry(block).or_default().push((slot, phi));
            phi
        } else if self.preds[block.index()].len() == 1 {
            let pred = self.preds[block.index()][0];
            self.read_var(slot, pred)
        } else if self.preds[block.index()].is_empty() {
            // Unreachable block or genuine use-before-def; lowering
            // default-initializes all variables, so this is internal.
            panic!("read of variable slot {slot} in block {block} with no predecessors");
        } else {
            let phi = self.b.insert_phi_at_head(block, self.slot_value_type(slot));
            self.write_var(slot, block, phi);
            self.add_phi_operands(slot, phi, block);
            phi
        };
        self.write_var(slot, block, value);
        value
    }

    fn add_phi_operands(&mut self, slot: usize, phi: ValueId, block: BlockId) {
        let preds = self.preds[block.index()].clone();
        for pred in preds {
            let v = self.read_var(slot, pred);
            self.b.add_phi_incoming(phi, pred, v);
        }
    }

    fn seal(&mut self, block: BlockId) {
        debug_assert!(!self.sealed[block.index()], "sealing {block} twice");
        self.sealed[block.index()] = true;
        if let Some(pending) = self.incomplete.remove(&block) {
            for (slot, phi) in pending {
                self.add_phi_operands(slot, phi, block);
            }
        }
    }

    fn new_block(&mut self, name: &str) -> BlockId {
        let bb = self.b.add_block(name);
        self.sealed.push(false);
        self.preds.push(Vec::new());
        bb
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.preds[to.index()].push(from);
    }

    fn emit_jump(&mut self, target: BlockId) {
        let from = self.b.current_block();
        self.b.jump(target);
        self.edge(from, target);
    }

    fn emit_br(&mut self, cond: ValueId, then_bb: BlockId, else_bb: BlockId) {
        let from = self.b.current_block();
        self.b.br(cond, then_bb, else_bb);
        self.edge(from, then_bb);
        self.edge(from, else_bb);
    }

    // ----- scopes -----

    fn push_scope(&mut self) {
        self.scopes.push(HashMap::new());
    }

    fn pop_scope(&mut self) {
        self.scopes.pop();
    }

    fn lookup_var(&self, name: &str) -> Option<Slot> {
        self.scopes.iter().rev().find_map(|s| s.get(name).copied())
    }

    fn declare_var(&mut self, name: &str, slot: Slot, pos: Pos) -> Result<(), LowerError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return err(format!("`{name}` already declared in this scope"), pos);
        }
        scope.insert(name.to_string(), slot);
        Ok(())
    }

    // ----- statements -----

    fn lower_stmts(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        for stmt in stmts {
            if !self.reachable {
                break; // dead code after return/break/continue/trap
            }
            self.lower_stmt(stmt)?;
        }
        Ok(())
    }

    fn lower_block(&mut self, stmts: &[Stmt]) -> Result<(), LowerError> {
        self.push_scope();
        let result = self.lower_stmts(stmts);
        self.pop_scope();
        result
    }

    fn lower_stmt(&mut self, stmt: &Stmt) -> Result<(), LowerError> {
        match stmt {
            Stmt::VarDecl { name, ty, len, init, pos } => {
                if let Some(len) = len {
                    let (size, size_ty) = self.lower_expr(len)?;
                    if size_ty != Type::I64 {
                        return err("array length must be an int", *pos);
                    }
                    let ptr = self.b.alloca(size);
                    let slot = self.new_slot(*ty, true);
                    self.declare_var(name, slot, *pos)?;
                    self.write_var(slot.index, self.b.current_block(), ptr);
                } else {
                    let (value, value_ty) = match init {
                        Some(e) => self.lower_expr(e)?,
                        None => (self.const_zero(*ty), *ty),
                    };
                    if value_ty != *ty {
                        return err(
                            format!("`{name}` declared as {ty} but initialized with {value_ty}"),
                            *pos,
                        );
                    }
                    let slot = self.new_slot(*ty, false);
                    self.declare_var(name, slot, *pos)?;
                    self.write_var(slot.index, self.b.current_block(), value);
                }
                Ok(())
            }
            Stmt::Assign { target, value, pos } => self.lower_assign(target, value, *pos),
            Stmt::If { cond, then_body, else_body, pos } => {
                let (c, cty) = self.lower_expr(cond)?;
                if cty != Type::Bool {
                    return err("if condition must be bool", *pos);
                }
                let then_bb = self.new_block("then");
                let else_bb = self.new_block("else");
                let merge_bb = self.new_block("merge");
                self.emit_br(c, then_bb, else_bb);
                self.seal(then_bb);
                self.seal(else_bb);

                self.b.switch_to(then_bb);
                self.reachable = true;
                self.lower_block(then_body)?;
                let then_reaches = self.reachable;
                if then_reaches {
                    self.emit_jump(merge_bb);
                }

                self.b.switch_to(else_bb);
                self.reachable = true;
                self.lower_block(else_body)?;
                let else_reaches = self.reachable;
                if else_reaches {
                    self.emit_jump(merge_bb);
                }

                self.seal(merge_bb);
                self.b.switch_to(merge_bb);
                self.reachable = then_reaches || else_reaches;
                Ok(())
            }
            Stmt::While { cond, body, pos } => {
                let header = self.new_block("while_header");
                let body_bb = self.new_block("while_body");
                let exit = self.new_block("while_exit");
                self.emit_jump(header);

                self.b.switch_to(header);
                let (c, cty) = self.lower_expr(cond)?;
                if cty != Type::Bool {
                    return err("while condition must be bool", *pos);
                }
                self.emit_br(c, body_bb, exit);
                self.seal(body_bb);

                self.loops.push(LoopCtx { continue_target: header, break_target: exit });
                self.b.switch_to(body_bb);
                self.reachable = true;
                self.lower_block(body)?;
                if self.reachable {
                    self.emit_jump(header);
                }
                self.loops.pop();

                self.seal(header);
                self.seal(exit);
                self.b.switch_to(exit);
                self.reachable = true;
                Ok(())
            }
            Stmt::For { init, cond, step, body, pos } => {
                self.push_scope(); // scope for the induction variable
                if let Some(init) = init {
                    self.lower_stmt(init)?;
                }
                let header = self.new_block("for_header");
                let body_bb = self.new_block("for_body");
                let step_bb = self.new_block("for_step");
                let exit = self.new_block("for_exit");
                self.emit_jump(header);

                self.b.switch_to(header);
                let (c, cty) = self.lower_expr(cond)?;
                if cty != Type::Bool {
                    self.pop_scope();
                    return err("for condition must be bool", *pos);
                }
                self.emit_br(c, body_bb, exit);
                self.seal(body_bb);

                self.loops.push(LoopCtx { continue_target: step_bb, break_target: exit });
                self.b.switch_to(body_bb);
                self.reachable = true;
                self.lower_block(body)?;
                if self.reachable {
                    self.emit_jump(step_bb);
                }
                self.loops.pop();

                self.seal(step_bb);
                self.b.switch_to(step_bb);
                self.reachable = true;
                if let Some(step) = step {
                    self.lower_stmt(step)?;
                }
                self.emit_jump(header);
                self.seal(header);
                self.seal(exit);
                self.b.switch_to(exit);
                self.reachable = true;
                self.pop_scope();
                Ok(())
            }
            Stmt::Return { value, pos } => {
                match (value, self.ret) {
                    (None, None) => self.b.ret(None),
                    (Some(e), Some(ret_ty)) => {
                        let (v, vty) = self.lower_expr(e)?;
                        if vty != ret_ty {
                            return err(format!("returning {vty}, function returns {ret_ty}"), *pos);
                        }
                        self.b.ret(Some(v));
                    }
                    (None, Some(_)) => return err("missing return value", *pos),
                    (Some(_), None) => return err("void function returns a value", *pos),
                }
                self.reachable = false;
                Ok(())
            }
            Stmt::Break { pos } => {
                let Some(ctx) = self.loops.last() else {
                    return err("`break` outside a loop", *pos);
                };
                let target = ctx.break_target;
                self.emit_jump(target);
                self.reachable = false;
                Ok(())
            }
            Stmt::Continue { pos } => {
                let Some(ctx) = self.loops.last() else {
                    return err("`continue` outside a loop", *pos);
                };
                let target = ctx.continue_target;
                self.emit_jump(target);
                self.reachable = false;
                Ok(())
            }
            Stmt::Lock { mutex, pos } => {
                let Some(&m) = self.ctx.mutexes.get(mutex) else {
                    return err(format!("unknown mutex `{mutex}`"), *pos);
                };
                self.b.mutex_lock(m);
                Ok(())
            }
            Stmt::Unlock { mutex, pos } => {
                let Some(&m) = self.ctx.mutexes.get(mutex) else {
                    return err(format!("unknown mutex `{mutex}`"), *pos);
                };
                self.b.mutex_unlock(m);
                Ok(())
            }
            Stmt::BarrierWait { barrier, pos } => {
                let Some(&bar) = self.ctx.barriers.get(barrier) else {
                    return err(format!("unknown barrier `{barrier}`"), *pos);
                };
                self.b.barrier(bar);
                Ok(())
            }
            Stmt::Output { value, .. } => {
                let (v, _) = self.lower_expr(value)?;
                self.b.output(v);
                Ok(())
            }
            Stmt::Trap { .. } => {
                self.b.trap();
                self.reachable = false;
                Ok(())
            }
            Stmt::ExprStmt { expr, .. } => {
                self.lower_expr_allow_void(expr)?;
                Ok(())
            }
        }
    }

    fn lower_assign(&mut self, target: &LValue, value: &Expr, pos: Pos) -> Result<(), LowerError> {
        match target {
            LValue::Name(name) => {
                if let Some(slot) = self.lookup_var(name) {
                    if slot.is_array {
                        return err(format!("cannot assign to array `{name}` as a whole"), pos);
                    }
                    let (v, vty) = self.lower_expr(value)?;
                    if vty != slot.ty {
                        return err(format!("assigning {vty} to `{name}` of type {}", slot.ty), pos);
                    }
                    self.write_var(slot.index, self.b.current_block(), v);
                    Ok(())
                } else if let Some(&(gid, gty, is_array)) = self.ctx.globals.get(name) {
                    if is_array {
                        return err(format!("global array `{name}` needs an index"), pos);
                    }
                    let (v, vty) = self.lower_expr(value)?;
                    if vty != gty {
                        return err(format!("assigning {vty} to global `{name}` of type {gty}"), pos);
                    }
                    self.b.store_global(gid, v);
                    Ok(())
                } else {
                    err(format!("unknown variable `{name}`"), pos)
                }
            }
            LValue::Index(name, index) => {
                let (idx, idx_ty) = self.lower_expr(index)?;
                if idx_ty != Type::I64 {
                    return err("array index must be an int", pos);
                }
                if let Some(slot) = self.lookup_var(name) {
                    if !slot.is_array {
                        return err(format!("`{name}` is not an array"), pos);
                    }
                    let (v, vty) = self.lower_expr(value)?;
                    if vty != slot.ty {
                        return err(format!("storing {vty} into `{name}` of element type {}", slot.ty), pos);
                    }
                    let base = self.read_var(slot.index, self.b.current_block());
                    let addr = self.b.gep(base, idx);
                    self.b.store(addr, v);
                    Ok(())
                } else if let Some(&(gid, gty, _)) = self.ctx.globals.get(name) {
                    let (v, vty) = self.lower_expr(value)?;
                    if vty != gty {
                        return err(format!("storing {vty} into `{name}` of element type {gty}"), pos);
                    }
                    self.b.store_index(gid, idx, v);
                    Ok(())
                } else {
                    err(format!("unknown array `{name}`"), pos)
                }
            }
        }
    }

    // ----- expressions -----

    fn const_zero(&mut self, ty: Type) -> ValueId {
        match ty {
            Type::I64 => self.b.const_i64(0),
            Type::F64 => self.b.const_f64(0.0),
            Type::Bool => self.b.const_bool(false),
            Type::Ptr => {
                let z = self.b.const_i64(0);
                self.b.alloca(z)
            }
        }
    }

    fn lower_expr(&mut self, e: &Expr) -> Result<(ValueId, Type), LowerError> {
        match self.lower_expr_allow_void(e)? {
            Some(v) => Ok(v),
            None => err("void value used in an expression", e.pos()),
        }
    }

    fn lower_expr_allow_void(&mut self, e: &Expr) -> Result<Option<(ValueId, Type)>, LowerError> {
        let result = match e {
            Expr::Literal(lit, _) => match lit {
                Literal::Int(v) => (self.b.const_i64(*v), Type::I64),
                Literal::Float(v) => (self.b.const_f64(*v), Type::F64),
                Literal::Bool(v) => (self.b.const_bool(*v), Type::Bool),
            },
            Expr::Name(name, pos) => {
                if let Some(slot) = self.lookup_var(name) {
                    let v = self.read_var(slot.index, self.b.current_block());
                    let ty = if slot.is_array { Type::Ptr } else { slot.ty };
                    (v, ty)
                } else if let Some(&(gid, gty, is_array)) = self.ctx.globals.get(name) {
                    if is_array {
                        return err(format!("global array `{name}` needs an index"), *pos);
                    }
                    let addr = self.b.global_addr(gid);
                    (self.b.load(addr, gty), gty)
                } else {
                    return err(format!("unknown variable `{name}`"), *pos);
                }
            }
            Expr::Index(name, index, pos) => {
                let (idx, idx_ty) = self.lower_expr(index)?;
                if idx_ty != Type::I64 {
                    return err("array index must be an int", *pos);
                }
                if let Some(slot) = self.lookup_var(name) {
                    if !slot.is_array {
                        return err(format!("`{name}` is not an array"), *pos);
                    }
                    let base = self.read_var(slot.index, self.b.current_block());
                    let addr = self.b.gep(base, idx);
                    (self.b.load(addr, slot.ty), slot.ty)
                } else if let Some(&(gid, gty, _)) = self.ctx.globals.get(name) {
                    let base = self.b.global_addr(gid);
                    let addr = self.b.gep(base, idx);
                    (self.b.load(addr, gty), gty)
                } else {
                    return err(format!("unknown array `{name}`"), *pos);
                }
            }
            Expr::Bin(op, lhs, rhs, pos) => {
                let (l, lty) = self.lower_expr(lhs)?;
                let (r, rty) = self.lower_expr(rhs)?;
                if lty != rty {
                    return err(format!("operands of `{}` have types {lty} and {rty}", op.mnemonic()), *pos);
                }
                let numeric = matches!(lty, Type::I64 | Type::F64);
                let ok = match op {
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem => numeric,
                    BinOp::Min | BinOp::Max => numeric,
                    BinOp::And | BinOp::Or | BinOp::Xor => matches!(lty, Type::I64 | Type::Bool),
                    BinOp::Shl | BinOp::Shr => lty == Type::I64,
                };
                if !ok {
                    return err(format!("`{}` cannot be applied to {lty}", op.mnemonic()), *pos);
                }
                (self.b.bin(*op, l, r), lty)
            }
            Expr::Cmp(op, lhs, rhs, pos) => {
                let (l, lty) = self.lower_expr(lhs)?;
                let (r, rty) = self.lower_expr(rhs)?;
                if lty != rty {
                    return err(format!("comparing {lty} with {rty}"), *pos);
                }
                (self.b.cmp(*op, l, r), Type::Bool)
            }
            Expr::LogicalAnd(lhs, rhs, pos) | Expr::LogicalOr(lhs, rhs, pos) => {
                let is_and = matches!(e, Expr::LogicalAnd(..));
                let (l, lty) = self.lower_expr(lhs)?;
                if lty != Type::Bool {
                    return err("logical operand must be bool", *pos);
                }
                let lhs_block = self.b.current_block();
                let rhs_bb = self.new_block(if is_and { "and_rhs" } else { "or_rhs" });
                let merge = self.new_block("logic_merge");
                if is_and {
                    self.emit_br(l, rhs_bb, merge);
                } else {
                    self.emit_br(l, merge, rhs_bb);
                }
                self.seal(rhs_bb);
                self.b.switch_to(rhs_bb);
                let (r, rty) = self.lower_expr(rhs)?;
                if rty != Type::Bool {
                    return err("logical operand must be bool", *pos);
                }
                let rhs_end = self.b.current_block();
                self.emit_jump(merge);
                self.seal(merge);
                self.b.switch_to(merge);
                let phi = self.b.phi(Type::Bool, vec![(lhs_block, l), (rhs_end, r)]);
                (phi, Type::Bool)
            }
            Expr::Un(op, operand, pos) => {
                let (v, vty) = self.lower_expr(operand)?;
                let ok = match op {
                    UnOp::Neg | UnOp::Abs => matches!(vty, Type::I64 | Type::F64),
                    UnOp::Not => matches!(vty, Type::I64 | Type::Bool),
                    UnOp::IntToFloat => vty == Type::I64,
                    UnOp::FloatToInt | UnOp::Sqrt => vty == Type::F64,
                };
                if !ok {
                    return err(format!("`{}` cannot be applied to {vty}", op.mnemonic()), *pos);
                }
                let result_ty = match op {
                    UnOp::IntToFloat | UnOp::Sqrt => Type::F64,
                    UnOp::FloatToInt => Type::I64,
                    _ => vty,
                };
                let r = self.b.un(*op, v);
                debug_assert_eq!(self.b.func().value_type(r), result_ty);
                (r, result_ty)
            }
            Expr::Call(name, args, pos) => {
                let Some((fid, params, ret)) = self.ctx.sigs.get(name).cloned() else {
                    return err(format!("unknown function `{name}`"), *pos);
                };
                let vals = self.lower_args(name, args, &params, *pos)?;
                let site = self.alloc_site();
                let result = self.b.emit(Op::Call { func: fid, args: vals, site }, ret);
                return Ok(result.map(|v| (v, ret.expect("result implies return type"))));
            }
            Expr::CallIndirect(table, selector, args, pos) => {
                let Some(&tid) = self.ctx.tables.get(table) else {
                    return err(format!("unknown table `{table}`"), *pos);
                };
                let (sel, sel_ty) = self.lower_expr(selector)?;
                if sel_ty != Type::I64 {
                    return err("table selector must be an int", *pos);
                }
                // Signature shared by the table's callees (the verifier
                // checks that the whole table agrees).
                let (params, ret) = self.ctx.table_sigs[table.as_str()].clone();
                let vals = self.lower_args(table, args, &params, *pos)?;
                let site = self.alloc_site();
                let result = self
                    .b
                    .emit(Op::CallIndirect { table: tid, selector: sel, args: vals, site }, ret);
                return Ok(result.map(|v| (v, ret.expect("result implies return type"))));
            }
            Expr::ThreadId(_) => (self.b.thread_id(), Type::I64),
            Expr::NumThreads(_) => (self.b.num_threads(), Type::I64),
            Expr::Rand(bound, pos) => {
                let (v, vty) = self.lower_expr(bound)?;
                if vty != Type::I64 {
                    return err("rand bound must be an int", *pos);
                }
                (self.b.rand(v), Type::I64)
            }
            Expr::FetchAdd(global, delta, pos) => {
                let Some(&(gid, gty, is_array)) = self.ctx.globals.get(global) else {
                    return err(format!("unknown global `{global}`"), *pos);
                };
                if gty != Type::I64 || is_array {
                    return err("fetch_add target must be a scalar int global", *pos);
                }
                let (d, dty) = self.lower_expr(delta)?;
                if dty != Type::I64 {
                    return err("fetch_add delta must be an int", *pos);
                }
                (self.b.atomic_fetch_add(gid, d), Type::I64)
            }
        };
        Ok(Some(result))
    }

    fn lower_args(
        &mut self,
        name: &str,
        args: &[Expr],
        params: &[Type],
        pos: Pos,
    ) -> Result<Vec<ValueId>, LowerError> {
        if args.len() != params.len() {
            return err(
                format!("`{name}` expects {} argument(s), got {}", params.len(), args.len()),
                pos,
            );
        }
        let mut vals = Vec::with_capacity(args.len());
        for (arg, expected) in args.iter().zip(params) {
            let (v, vty) = self.lower_expr(arg)?;
            if vty != *expected {
                return err(format!("argument of type {vty} where {expected} expected"), arg.pos());
            }
            vals.push(v);
        }
        Ok(vals)
    }

    fn alloc_site(&mut self) -> crate::ids::CallSiteId {
        let site = crate::ids::CallSiteId(*self.next_call_site);
        *self.next_call_site += 1;
        site
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfg::Cfg;
    use crate::dom::DomTree;
    use crate::loops::LoopForest;
    use crate::print::ModulePrinter;

    fn compile_ok(src: &str) -> Module {
        match compile(src) {
            Ok(m) => m,
            Err(e) => panic!("compile failed: {e}"),
        }
    }

    #[test]
    fn lowers_empty_spmd_function() {
        let m = compile_ok("@spmd func slave() { }");
        assert_eq!(m.spmd_entry, Some(FuncId(0)));
        assert_eq!(m.funcs[0].blocks.len(), 1);
    }

    #[test]
    fn lowers_figure1_style_program() {
        let m = compile_ok(
            r#"
            module figure1;
            tid_counter int id = 0;
            shared int im = 16;
            int gp[64];
            mutex l;
            @init func main() {
                for (var i: int = 0; i < 64; i = i + 1) { gp[i] = rand(100); }
            }
            @spmd func slave() {
                lock(l);
                var procid: int = fetch_add(id, 1);
                unlock(l);
                // Branch 1: threadID
                if (procid == 0) { output(procid); }
                // Branch 2: shared
                var private: int = 0;
                for (var i: int = 0; i <= im - 1; i = i + 1) {
                    // Branch 3: none
                    if (gp[procid] > im - 1) {
                        private = 1;
                    } else {
                        private = 0 - 1;
                    }
                    // Branch 4: partial
                    if (private > 0) { output(private); }
                }
            }
            "#,
        );
        assert_eq!(m.name, "figure1");
        assert!(m.init.is_some());
        assert!(m.spmd_entry.is_some());
        assert!(m.global_by_name("id").is_some());
        assert!(m.globals[m.global_by_name("id").unwrap().index()].tid_counter);
        // slave has 4 conditional branches from the ifs plus 1 loop branch.
        let slave = m.func(m.func_by_name("slave").unwrap());
        assert_eq!(slave.num_branches(), 4);
    }

    #[test]
    fn loop_phi_has_two_incomings() {
        let m = compile_ok(
            r#"
            shared int n = 10;
            @spmd func f() {
                var acc: int = 0;
                for (var i: int = 0; i < n; i = i + 1) { acc = acc + i; }
                output(acc);
            }
            "#,
        );
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg, f.entry());
        let loops = LoopForest::new(&cfg, &dom);
        assert_eq!(loops.loops().len(), 1);
        // The loop header holds phis for i and acc, each with 2 incomings.
        let header = loops.loops()[0].header;
        let phis: Vec<_> = f.block(header).phis().collect();
        assert_eq!(phis.len(), 2, "{}", ModulePrinter(&m));
        for phi in phis {
            assert_eq!(phi.op.phi_incomings().unwrap().len(), 2);
        }
    }

    #[test]
    fn if_else_merges_with_phi() {
        let m = compile_ok(
            r#"
            @spmd func f() {
                var x: int = 0;
                if (threadid() == 0) { x = 1; } else { x = 2; }
                output(x);
            }
            "#,
        );
        let f = &m.funcs[0];
        let has_phi = f.blocks.iter().any(|b| b.phis().next().is_some());
        assert!(has_phi, "{}", ModulePrinter(&m));
    }

    #[test]
    fn unmodified_variable_through_if_needs_no_merge_value_change() {
        // x is not assigned in either arm: reading it after the if must see
        // the original value (possibly through a trivial phi).
        let m = compile_ok(
            r#"
            @spmd func f() {
                var x: int = 7;
                if (threadid() == 0) { output(1); }
                output(x);
            }
            "#,
        );
        assert_eq!(m.funcs[0].num_branches(), 1);
    }

    #[test]
    fn while_with_break_and_continue() {
        let m = compile_ok(
            r#"
            @spmd func f() {
                var i: int = 0;
                while (true) {
                    i = i + 1;
                    if (i > 100) { break; }
                    if (i - i / 2 * 2 == 0) { continue; }
                    output(i);
                }
            }
            "#,
        );
        assert!(m.funcs[0].num_branches() >= 3);
    }

    #[test]
    fn nested_loops_lower_and_verify() {
        let m = compile_ok(
            r#"
            shared int n = 4;
            @spmd func f() {
                for (var i: int = 0; i < n; i = i + 1) {
                    for (var j: int = 0; j < n; j = j + 1) {
                        for (var k: int = 0; k < n; k = k + 1) {
                            output(i * n * n + j * n + k);
                        }
                    }
                }
            }
            "#,
        );
        let f = &m.funcs[0];
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg, f.entry());
        let loops = LoopForest::new(&cfg, &dom);
        assert_eq!(loops.loops().len(), 3);
        let max_depth = loops.loops().iter().map(|l| l.depth).max().unwrap();
        assert_eq!(max_depth, 3);
    }

    #[test]
    fn short_circuit_lowering_produces_branches() {
        let m = compile_ok(
            r#"
            @spmd func f() {
                var a: int = threadid();
                if (a > 0 && a < 8) { output(a); }
                if (a == 0 || a == 7) { output(a); }
            }
            "#,
        );
        // each && / || introduces an extra conditional branch
        assert!(m.funcs[0].num_branches() >= 4);
    }

    #[test]
    fn local_arrays_allocate_and_index() {
        let m = compile_ok(
            r#"
            @spmd func f() {
                var a: int[8];
                for (var i: int = 0; i < 8; i = i + 1) { a[i] = i * i; }
                output(a[3]);
            }
            "#,
        );
        let f = &m.funcs[0];
        let has_alloca =
            f.blocks.iter().flat_map(|b| &b.insts).any(|i| matches!(i.op, Op::Alloca { .. }));
        assert!(has_alloca);
    }

    #[test]
    fn calls_and_returns() {
        let m = compile_ok(
            r#"
            func square(x: int) -> int { return x * x; }
            @spmd func f() { output(square(5)); }
            "#,
        );
        assert_eq!(m.num_call_sites, 1);
    }

    #[test]
    fn multiple_call_sites_get_distinct_ids() {
        let m = compile_ok(
            r#"
            func foo(arg: int) {
                for (var i: int = 0; i < 5; i = i + 1) {
                    if (i < arg) { output(i); }
                }
            }
            shared bool test = true;
            @spmd func slave() {
                foo(1);
                if (test) { foo(2); }
            }
            "#,
        );
        assert_eq!(m.num_call_sites, 2);
    }

    #[test]
    fn indirect_calls_through_table() {
        let m = compile_ok(
            r#"
            table ops = { inc, dec };
            func inc(x: int) -> int { return x + 1; }
            func dec(x: int) -> int { return x - 1; }
            @spmd func f() {
                var t: int = threadid();
                output(ops[t - t / 2 * 2](t));
            }
            "#,
        );
        assert_eq!(m.tables.len(), 1);
        assert_eq!(m.tables[0].funcs.len(), 2);
    }

    #[test]
    fn early_return_in_branch() {
        let m = compile_ok(
            r#"
            func f(x: int) -> int {
                if (x > 0) { return 1; }
                return 0;
            }
            @spmd func g() { output(f(threadid())); }
            "#,
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn both_arms_return_makes_merge_unreachable() {
        let m = compile_ok(
            r#"
            func f(x: int) -> int {
                if (x > 0) { return 1; } else { return 0; }
            }
            @spmd func g() { output(f(threadid())); }
            "#,
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let e = compile("@spmd func f() { var x: int = 1.5; }").unwrap_err();
        assert!(matches!(e, FrontendError::Lower(_)), "{e}");
    }

    #[test]
    fn rejects_break_outside_loop() {
        let e = compile("@spmd func f() { break; }").unwrap_err();
        let FrontendError::Lower(le) = e else { panic!("{e}") };
        assert!(le.message.contains("break"));
    }

    #[test]
    fn rejects_unknown_variable() {
        let e = compile("@spmd func f() { output(nope); }").unwrap_err();
        let FrontendError::Lower(le) = e else { panic!("{e}") };
        assert!(le.message.contains("unknown variable"));
    }

    #[test]
    fn rejects_missing_return_value_path() {
        let e = compile("func f() -> int { if (true) { return 1; } }").unwrap_err();
        let FrontendError::Lower(le) = e else { panic!("{e}") };
        assert!(le.message.contains("fall off"), "{le}");
    }

    #[test]
    fn rejects_two_spmd_functions() {
        let e = compile("@spmd func a() {} @spmd func b() {}").unwrap_err();
        let FrontendError::Lower(le) = e else { panic!("{e}") };
        assert!(le.message.contains("multiple"), "{le}");
    }

    #[test]
    fn rejects_spmd_with_params() {
        let e = compile("@spmd func a(x: int) {}").unwrap_err();
        let FrontendError::Lower(le) = e else { panic!("{e}") };
        assert!(le.message.contains("role"), "{le}");
    }

    #[test]
    fn rejects_non_bool_condition() {
        let e = compile("@spmd func f() { if (1) { } }").unwrap_err();
        assert!(matches!(e, FrontendError::Lower(_)));
    }

    #[test]
    fn rejects_void_in_expression() {
        let e = compile(
            "func v() { } @spmd func f() { var x: int = v(); }",
        )
        .unwrap_err();
        let FrontendError::Lower(le) = e else { panic!("{e}") };
        assert!(le.message.contains("void"), "{le}");
    }

    #[test]
    fn rejects_shadowing_in_same_scope() {
        let e = compile("@spmd func f() { var x: int = 1; var x: int = 2; }").unwrap_err();
        let FrontendError::Lower(le) = e else { panic!("{e}") };
        assert!(le.message.contains("already declared"), "{le}");
    }

    #[test]
    fn allows_shadowing_in_inner_scope() {
        compile_ok("@spmd func f() { var x: int = 1; if (true) { var x: int = 2; output(x); } output(x); }");
    }

    #[test]
    fn variable_modified_in_loop_body_flows_out() {
        let m = compile_ok(
            r#"
            shared int n = 5;
            @spmd func f() {
                var sum: int = 0;
                var i: int = 0;
                while (i < n) {
                    sum = sum + i;
                    i = i + 1;
                }
                output(sum);
            }
            "#,
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn global_reads_and_writes_lower_to_memory_ops() {
        let m = compile_ok(
            r#"
            shared int n = 2;
            int counter = 0;
            @spmd func f() { counter = counter + n; }
            "#,
        );
        let f = &m.funcs[0];
        let loads =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i.op, Op::Load { .. })).count();
        let stores =
            f.blocks.iter().flat_map(|b| &b.insts).filter(|i| matches!(i.op, Op::Store { .. })).count();
        assert_eq!(loads, 2);
        assert_eq!(stores, 1);
    }
}
