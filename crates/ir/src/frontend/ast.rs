//! Abstract syntax tree of the SPMD mini language.

use crate::frontend::lexer::Pos;
use crate::inst::{BinOp, CmpOp, UnOp};
use crate::value::Type;

/// A whole parsed source file.
#[derive(Clone, Debug, PartialEq)]
pub struct AstModule {
    /// Module name (from `module NAME;`, defaults to `"main"`).
    pub name: String,
    /// Global variable declarations.
    pub globals: Vec<AstGlobal>,
    /// Mutex names.
    pub mutexes: Vec<String>,
    /// Barrier names.
    pub barriers: Vec<String>,
    /// Function tables.
    pub tables: Vec<AstTable>,
    /// Function definitions.
    pub funcs: Vec<AstFunc>,
}

/// A global variable declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct AstGlobal {
    /// Variable name.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Array length, or `None` for scalars.
    pub len: Option<u64>,
    /// Initializer literal (scalar value applied to every element).
    pub init: Option<Literal>,
    /// Declared with `shared`.
    pub shared: bool,
    /// Declared with `tid_counter`.
    pub tid_counter: bool,
    /// Source position of the declaration.
    pub pos: Pos,
}

/// A function-table declaration: `table name = { f, g, h };`
#[derive(Clone, Debug, PartialEq)]
pub struct AstTable {
    /// Table name.
    pub name: String,
    /// Callee function names.
    pub funcs: Vec<String>,
    /// Source position.
    pub pos: Pos,
}

/// Role attribute attached to a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FuncRole {
    /// No attribute: a plain helper function.
    Plain,
    /// `@init`: single-threaded setup.
    Init,
    /// `@spmd`: the parallel-section entry run by all threads.
    Spmd,
    /// `@fini`: single-threaded teardown.
    Fini,
}

/// A function definition.
#[derive(Clone, Debug, PartialEq)]
pub struct AstFunc {
    /// Function name.
    pub name: String,
    /// Parameters (name, type).
    pub params: Vec<(String, Type)>,
    /// Return type, if any.
    pub ret: Option<Type>,
    /// Body.
    pub body: Vec<Stmt>,
    /// Role.
    pub role: FuncRole,
    /// Source position.
    pub pos: Pos,
}

/// Literal values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Literal {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Boolean literal.
    Bool(bool),
}

/// Statements.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// `var name: ty = expr;` or `var name: ty[len];` (local array).
    VarDecl {
        /// Variable name.
        name: String,
        /// Element type.
        ty: Type,
        /// Array length expression (local array) or `None` for scalars.
        len: Option<Expr>,
        /// Scalar initializer.
        init: Option<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `lvalue = expr;`
    Assign {
        /// Assignment target.
        target: LValue,
        /// Right-hand side.
        value: Expr,
        /// Position.
        pos: Pos,
    },
    /// `if (cond) { .. } else { .. }`
    If {
        /// Condition.
        cond: Expr,
        /// Then-arm.
        then_body: Vec<Stmt>,
        /// Else-arm (empty if absent).
        else_body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
    /// `while (cond) { .. }`
    While {
        /// Condition.
        cond: Expr,
        /// Body.
        body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
    /// `for (init; cond; step) { .. }`
    For {
        /// Init statement (var decl or assignment), if any.
        init: Option<Box<Stmt>>,
        /// Condition.
        cond: Expr,
        /// Step statement (assignment), if any.
        step: Option<Box<Stmt>>,
        /// Body.
        body: Vec<Stmt>,
        /// Position.
        pos: Pos,
    },
    /// `return expr?;`
    Return {
        /// Returned value, if any.
        value: Option<Expr>,
        /// Position.
        pos: Pos,
    },
    /// `break;`
    Break {
        /// Position.
        pos: Pos,
    },
    /// `continue;`
    Continue {
        /// Position.
        pos: Pos,
    },
    /// `lock(m);`
    Lock {
        /// Mutex name.
        mutex: String,
        /// Position.
        pos: Pos,
    },
    /// `unlock(m);`
    Unlock {
        /// Mutex name.
        mutex: String,
        /// Position.
        pos: Pos,
    },
    /// `barrier(b);`
    BarrierWait {
        /// Barrier name.
        barrier: String,
        /// Position.
        pos: Pos,
    },
    /// `output(expr);`
    Output {
        /// Emitted value.
        value: Expr,
        /// Position.
        pos: Pos,
    },
    /// `trap;`
    Trap {
        /// Position.
        pos: Pos,
    },
    /// An expression evaluated for its side effects (typically a call).
    ExprStmt {
        /// The expression.
        expr: Expr,
        /// Position.
        pos: Pos,
    },
}

/// Assignment targets.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// A local variable or global scalar.
    Name(String),
    /// `name[index]` — a global array element, or an element of a local
    /// array variable holding a pointer.
    Index(String, Box<Expr>),
}

/// Expressions.
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A literal.
    Literal(Literal, Pos),
    /// A variable or global scalar read.
    Name(String, Pos),
    /// `name[index]` — array element read.
    Index(String, Box<Expr>, Pos),
    /// Binary arithmetic / bitwise operation.
    Bin(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>, Pos),
    /// Short-circuit `&&`.
    LogicalAnd(Box<Expr>, Box<Expr>, Pos),
    /// Short-circuit `||`.
    LogicalOr(Box<Expr>, Box<Expr>, Pos),
    /// Unary operation.
    Un(UnOp, Box<Expr>, Pos),
    /// Direct call `f(args)`.
    Call(String, Vec<Expr>, Pos),
    /// Indirect call `table[selector](args)`.
    CallIndirect(String, Box<Expr>, Vec<Expr>, Pos),
    /// `threadid()`
    ThreadId(Pos),
    /// `numthreads()`
    NumThreads(Pos),
    /// `rand(bound)`
    Rand(Box<Expr>, Pos),
    /// `fetch_add(global, delta)`
    FetchAdd(String, Box<Expr>, Pos),
}

impl Expr {
    /// The source position of this expression.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Literal(_, p)
            | Expr::Name(_, p)
            | Expr::Index(_, _, p)
            | Expr::Bin(_, _, _, p)
            | Expr::Cmp(_, _, _, p)
            | Expr::LogicalAnd(_, _, p)
            | Expr::LogicalOr(_, _, p)
            | Expr::Un(_, _, p)
            | Expr::Call(_, _, p)
            | Expr::CallIndirect(_, _, _, p)
            | Expr::ThreadId(p)
            | Expr::NumThreads(p)
            | Expr::Rand(_, p)
            | Expr::FetchAdd(_, _, p) => *p,
        }
    }
}
