//! Lexer for the SPMD mini language.

use std::fmt;

/// Source position (1-based line and column) for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Lexical token kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Identifier or keyword (keywords are distinguished by the parser via
    /// [`Token::is_kw`]).
    Ident(String),
    /// `@`-prefixed attribute (`@spmd`, `@init`, `@fini`).
    Attr(String),
    /// Punctuation and operators.
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `!`
    Not,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Attr(s) => write!(f, "@{s}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Colon => f.write_str(":"),
            Tok::Assign => f.write_str("="),
            Tok::Arrow => f.write_str("->"),
            Tok::Plus => f.write_str("+"),
            Tok::Minus => f.write_str("-"),
            Tok::Star => f.write_str("*"),
            Tok::Slash => f.write_str("/"),
            Tok::Percent => f.write_str("%"),
            Tok::EqEq => f.write_str("=="),
            Tok::NotEq => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::Amp => f.write_str("&"),
            Tok::Pipe => f.write_str("|"),
            Tok::Caret => f.write_str("^"),
            Tok::Shl => f.write_str("<<"),
            Tok::Shr => f.write_str(">>"),
            Tok::Not => f.write_str("!"),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// The token kind.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

impl Token {
    /// Whether this token is the identifier/keyword `kw`.
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(&self.tok, Tok::Ident(s) if s == kw)
    }
}

/// A lexing error.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub pos: Pos,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at {}: {}", self.pos, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `source` into a vector ending with an [`Tok::Eof`] token.
///
/// # Errors
///
/// Returns a [`LexError`] on unrecognized characters or malformed literals.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut tokens = Vec::new();
    let bytes = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };

        // Skip whitespace.
        if c.is_ascii_whitespace() {
            bump!();
            continue;
        }
        // Skip line comments.
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                bump!();
            }
            continue;
        }
        // Skip block comments.
        if c == b'/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            bump!();
            bump!();
            loop {
                if i + 1 >= bytes.len() {
                    return Err(LexError { message: "unterminated block comment".into(), pos });
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    bump!();
                    bump!();
                    break;
                }
                bump!();
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                bump!();
            }
            let mut is_float = false;
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                is_float = true;
                bump!();
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
            }
            // Exponent.
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    is_float = true;
                    while i < j {
                        bump!();
                    }
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
            }
            let text = &source[start..i];
            let tok = if is_float {
                Tok::Float(text.parse().map_err(|_| LexError {
                    message: format!("malformed float literal `{text}`"),
                    pos,
                })?)
            } else {
                Tok::Int(text.parse().map_err(|_| LexError {
                    message: format!("integer literal `{text}` out of range"),
                    pos,
                })?)
            };
            tokens.push(Token { tok, pos });
            continue;
        }

        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                bump!();
            }
            tokens.push(Token { tok: Tok::Ident(source[start..i].to_string()), pos });
            continue;
        }

        // Attributes.
        if c == b'@' {
            bump!();
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                bump!();
            }
            if start == i {
                return Err(LexError { message: "empty attribute after `@`".into(), pos });
            }
            tokens.push(Token { tok: Tok::Attr(source[start..i].to_string()), pos });
            continue;
        }

        // Operators and punctuation.
        let two = if i + 1 < bytes.len() { &source[i..i + 2] } else { "" };
        let tok2 = match two {
            "->" => Some(Tok::Arrow),
            "==" => Some(Tok::EqEq),
            "!=" => Some(Tok::NotEq),
            "<=" => Some(Tok::Le),
            ">=" => Some(Tok::Ge),
            "&&" => Some(Tok::AndAnd),
            "||" => Some(Tok::OrOr),
            "<<" => Some(Tok::Shl),
            ">>" => Some(Tok::Shr),
            _ => None,
        };
        if let Some(tok) = tok2 {
            bump!();
            bump!();
            tokens.push(Token { tok, pos });
            continue;
        }
        let tok1 = match c {
            b'(' => Tok::LParen,
            b')' => Tok::RParen,
            b'{' => Tok::LBrace,
            b'}' => Tok::RBrace,
            b'[' => Tok::LBracket,
            b']' => Tok::RBracket,
            b',' => Tok::Comma,
            b';' => Tok::Semi,
            b':' => Tok::Colon,
            b'=' => Tok::Assign,
            b'+' => Tok::Plus,
            b'-' => Tok::Minus,
            b'*' => Tok::Star,
            b'/' => Tok::Slash,
            b'%' => Tok::Percent,
            b'<' => Tok::Lt,
            b'>' => Tok::Gt,
            b'&' => Tok::Amp,
            b'|' => Tok::Pipe,
            b'^' => Tok::Caret,
            b'!' => Tok::Not,
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{}`", other as char),
                    pos,
                })
            }
        };
        bump!();
        tokens.push(Token { tok: tok1, pos });
    }

    tokens.push(Token { tok: Tok::Eof, pos: Pos { line, col } });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(toks("42"), vec![Tok::Int(42), Tok::Eof]);
        assert_eq!(toks("3.5"), vec![Tok::Float(3.5), Tok::Eof]);
        assert_eq!(toks("1e3"), vec![Tok::Float(1000.0), Tok::Eof]);
        assert_eq!(toks("2.5e-1"), vec![Tok::Float(0.25), Tok::Eof]);
    }

    #[test]
    fn dot_without_digit_is_not_float() {
        // `1.` is not a float in this language; the dot is an error char.
        assert!(lex("1.").is_err());
    }

    #[test]
    fn lexes_identifiers_and_attrs() {
        assert_eq!(
            toks("@spmd func f_1"),
            vec![
                Tok::Attr("spmd".into()),
                Tok::Ident("func".into()),
                Tok::Ident("f_1".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_two_char_operators() {
        assert_eq!(
            toks("== != <= >= && || << >> ->"),
            vec![
                Tok::EqEq,
                Tok::NotEq,
                Tok::Le,
                Tok::Ge,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Shl,
                Tok::Shr,
                Tok::Arrow,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        assert_eq!(toks("a // comment\n b /* x\ny */ c"), vec![
            Tok::Ident("a".into()),
            Tok::Ident("b".into()),
            Tok::Ident("c".into()),
            Tok::Eof
        ]);
    }

    #[test]
    fn tracks_positions() {
        let tokens = lex("a\n  b").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn unterminated_block_comment_errors() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("a $ b").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.pos.col, 3);
    }

    #[test]
    fn int_out_of_range_errors() {
        assert!(lex("99999999999999999999999999").is_err());
    }
}
