//! # bw-ir — SSA intermediate representation for BLOCKWATCH
//!
//! This crate provides the compiler substrate that the BLOCKWATCH
//! reproduction is built on: a small SSA-form intermediate representation
//! for SPMD shared-memory parallel programs, together with
//!
//! * a [`FunctionBuilder`] for programmatic construction,
//! * a textual front-end (a C-like mini language) that lowers to SSA
//!   ([`frontend`]),
//! * CFG utilities ([`Cfg`]), dominators ([`DomTree`]) and natural-loop
//!   analysis ([`LoopForest`]),
//! * a structural + SSA [verifier](verify_module), and
//! * a [printer](ModulePrinter) for diagnostics.
//!
//! The instruction set mirrors what the paper's LLVM-based analysis
//! consumes: branches (including loop branches), phi nodes, shared vs.
//! thread-local memory, the thread-ID intrinsic, pthread-style mutexes and
//! barriers, and table-indirect calls (to model `raytrace`'s function
//! pointers).
//!
//! # Examples
//!
//! Build the paper's Figure 1 "branch 1" (`if (procid == 0)`) and verify it:
//!
//! ```
//! use bw_ir::{Module, FunctionBuilder, CmpOp, verify_module};
//!
//! let mut module = Module::new("figure1");
//! let mut b = FunctionBuilder::new("slave", vec![], None);
//! let tid = b.thread_id();
//! let zero = b.const_i64(0);
//! let is_leader = b.cmp(CmpOp::Eq, tid, zero);
//! let leader = b.add_block("leader");
//! let join = b.add_block("join");
//! b.br(is_leader, leader, join);
//! b.switch_to(leader);
//! b.jump(join);
//! b.switch_to(join);
//! b.ret(None);
//! let slave = module.add_func(b.finish());
//! module.spmd_entry = Some(slave);
//! verify_module(&module)?;
//! # Ok::<(), bw_ir::VerifyError>(())
//! ```

#![warn(missing_docs)]

mod builder;
mod cfg;
mod dom;
mod function;
mod ids;
mod inst;
mod loops;
mod module;
mod print;
mod scc;
mod text;
mod value;
mod verify;

pub mod frontend;

pub use builder::FunctionBuilder;
pub use cfg::Cfg;
pub use dom::DomTree;
pub use function::{Block, Function, ValueDef};
pub use ids::{
    BarrierId, BlockId, BranchId, CallSiteId, FuncId, GlobalId, LoopId, MutexId, TableId, ValueId,
};
pub use inst::{BinOp, CmpOp, Inst, Op, PhiIncoming, UnOp};
pub use loops::{Loop, LoopForest};
pub use module::{FuncTable, Global, Module};
pub use print::{format_block, format_inst, FunctionPrinter, ModulePrinter};
pub use scc::{Condensation, ValueGraph};
pub use text::{parse_module, TextError};
pub use value::{Ptr, Space, Type, Val};
pub use verify::{verify_function, verify_module, VerifyError};
