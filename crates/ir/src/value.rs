//! Runtime value representation and IR-level types.
//!
//! The IR is dynamically checked: every SSA value carries a [`Type`], and the
//! verifier enforces consistency, but the interpreter operates on tagged
//! [`Val`]s.
//!
//! Pointers are *region-based*: a pointer names an address space (shared
//! memory vs. the executing thread's local memory), a region within it (a
//! global variable, or one local allocation), and a word offset inside the
//! region. Accesses are bounds-checked against the region, so an
//! out-of-bounds index — e.g. one produced by an injected fault — traps
//! instead of silently reading a neighbouring object. This mirrors how
//! wild accesses on real hardware are often caught by OS memory protection,
//! which the paper counts on for its crash-vs-SDC breakdown.

use std::fmt;

use serde::{Deserialize, Serialize};

/// IR-level type of an SSA value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Type {
    /// 64-bit signed integer.
    I64,
    /// 64-bit IEEE-754 float.
    F64,
    /// Boolean (branch conditions, comparison results).
    Bool,
    /// Pointer into shared or thread-local memory.
    Ptr,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Bool => "bool",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

/// Address space a pointer refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Space {
    /// Globally shared memory (visible to all threads). Regions are global
    /// variables, identified by their `GlobalId` index.
    Shared,
    /// The executing thread's private memory. Regions are individual
    /// allocations made by `alloca`.
    Local,
}

/// A region-based pointer: address space, region, and word offset.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ptr {
    /// Address space this pointer refers to.
    pub space: Space,
    /// Region index: the `GlobalId` index for shared pointers, the
    /// allocation index for local pointers.
    pub region: u32,
    /// Word offset within the region. Kept signed so that transiently
    /// negative intermediate offsets (`p + i - 1` evaluated left to right)
    /// round-trip; any access with a negative offset traps.
    pub offset: i64,
}

impl Ptr {
    /// A shared-memory pointer at the start of global region `region`.
    pub fn shared(region: u32) -> Self {
        Ptr { space: Space::Shared, region, offset: 0 }
    }

    /// A thread-local pointer at the start of allocation `region`.
    pub fn local(region: u32) -> Self {
        Ptr { space: Space::Local, region, offset: 0 }
    }

    /// Returns this pointer displaced by `delta` words.
    pub fn offset_by(self, delta: i64) -> Self {
        Ptr { space: self.space, region: self.region, offset: self.offset.wrapping_add(delta) }
    }
}

impl fmt::Display for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.space {
            Space::Shared => write!(f, "&shared[{}+{}]", self.region, self.offset),
            Space::Local => write!(f, "&local[{}+{}]", self.region, self.offset),
        }
    }
}

/// A dynamically tagged runtime value.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Val {
    /// 64-bit signed integer.
    I64(i64),
    /// 64-bit float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Pointer.
    Ptr(Ptr),
}

impl Val {
    /// The [`Type`] of this value.
    pub fn ty(&self) -> Type {
        match self {
            Val::I64(_) => Type::I64,
            Val::F64(_) => Type::F64,
            Val::Bool(_) => Type::Bool,
            Val::Ptr(_) => Type::Ptr,
        }
    }

    /// The integer payload, if this is an `I64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Val::I64(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is an `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Val::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The pointer payload, if this is a `Ptr`.
    pub fn as_ptr(&self) -> Option<Ptr> {
        match self {
            Val::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// A canonical 64-bit encoding of this value, used as the "condition
    /// witness" sent to the runtime monitor and as the target of
    /// condition-bit-flip fault injection.
    ///
    /// The pointer encoding packs space (1 bit), region (23 bits) and offset
    /// (40 bits, two's complement); pointers outside that range do not
    /// round-trip exactly, which is acceptable for witness hashing and makes
    /// flipped high bits land in the offset field.
    pub fn bits(&self) -> u64 {
        match self {
            Val::I64(v) => *v as u64,
            Val::F64(v) => v.to_bits(),
            Val::Bool(v) => *v as u64,
            Val::Ptr(p) => {
                let space = match p.space {
                    Space::Shared => 0u64,
                    Space::Local => 1u64 << 63,
                };
                let region = ((p.region as u64) & 0x7f_ffff) << 40;
                let offset = (p.offset as u64) & 0xff_ffff_ffff;
                space | region | offset
            }
        }
    }

    /// Reconstructs a value of type `ty` from a 64-bit encoding produced by
    /// [`Val::bits`] (possibly with bits flipped by fault injection).
    pub fn from_bits(ty: Type, bits: u64) -> Val {
        match ty {
            Type::I64 => Val::I64(bits as i64),
            Type::F64 => Val::F64(f64::from_bits(bits)),
            Type::Bool => Val::Bool(bits & 1 != 0),
            Type::Ptr => {
                let space = if bits & (1u64 << 63) != 0 { Space::Local } else { Space::Shared };
                let region = ((bits >> 40) & 0x7f_ffff) as u32;
                // Sign-extend the 40-bit offset.
                let offset = ((bits & 0xff_ffff_ffff) as i64) << 24 >> 24;
                Val::Ptr(Ptr { space, region, offset })
            }
        }
    }

    /// The default (zero) value of a type.
    pub fn zero(ty: Type) -> Val {
        match ty {
            Type::I64 => Val::I64(0),
            Type::F64 => Val::F64(0.0),
            Type::Bool => Val::Bool(false),
            Type::Ptr => Val::Ptr(Ptr::shared(0)),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::I64(v) => write!(f, "{v}"),
            Val::F64(v) => write!(f, "{v:?}"),
            Val::Bool(v) => write!(f, "{v}"),
            Val::Ptr(p) => write!(f, "{p}"),
        }
    }
}

impl From<i64> for Val {
    fn from(v: i64) -> Self {
        Val::I64(v)
    }
}

impl From<f64> for Val {
    fn from(v: f64) -> Self {
        Val::F64(v)
    }
}

impl From<bool> for Val {
    fn from(v: bool) -> Self {
        Val::Bool(v)
    }
}

impl From<Ptr> for Val {
    fn from(v: Ptr) -> Self {
        Val::Ptr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_display() {
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::Ptr.to_string(), "ptr");
    }

    #[test]
    fn val_accessors() {
        assert_eq!(Val::I64(5).as_i64(), Some(5));
        assert_eq!(Val::I64(5).as_f64(), None);
        assert_eq!(Val::Bool(true).as_bool(), Some(true));
        assert_eq!(Val::F64(1.5).as_f64(), Some(1.5));
        assert_eq!(Val::Ptr(Ptr::shared(9)).as_ptr(), Some(Ptr::shared(9)));
    }

    #[test]
    fn bits_roundtrip_i64() {
        for v in [0i64, 1, -1, i64::MAX, i64::MIN, 123456789] {
            let val = Val::I64(v);
            assert_eq!(Val::from_bits(Type::I64, val.bits()), val);
        }
    }

    #[test]
    fn bits_roundtrip_f64() {
        for v in [0.0f64, -1.5, f64::INFINITY, 2.25e10] {
            let val = Val::F64(v);
            assert_eq!(Val::from_bits(Type::F64, val.bits()), val);
        }
    }

    #[test]
    fn bits_roundtrip_bool() {
        assert_eq!(Val::from_bits(Type::Bool, Val::Bool(true).bits()), Val::Bool(true));
        assert_eq!(Val::from_bits(Type::Bool, Val::Bool(false).bits()), Val::Bool(false));
    }

    #[test]
    fn bits_roundtrip_ptr() {
        let cases = [
            Ptr::shared(0),
            Ptr::shared(12345),
            Ptr::local(0),
            Ptr::local(999),
            Ptr { space: Space::Shared, region: 3, offset: -5 },
            Ptr { space: Space::Local, region: 7, offset: 1 << 30 },
        ];
        for p in cases {
            let val = Val::Ptr(p);
            assert_eq!(Val::from_bits(Type::Ptr, val.bits()), val, "{p}");
        }
    }

    #[test]
    fn ptr_offset_moves_offset_only() {
        let p = Ptr::shared(10);
        assert_eq!(p.offset_by(5).offset, 5);
        assert_eq!(p.offset_by(5).region, 10);
        assert_eq!(p.offset_by(-3).offset, -3);
        assert_eq!(p.offset_by(0), p);
    }

    #[test]
    fn zero_values() {
        assert_eq!(Val::zero(Type::I64), Val::I64(0));
        assert_eq!(Val::zero(Type::Bool), Val::Bool(false));
    }

    #[test]
    fn bit_flip_changes_value() {
        let val = Val::I64(0);
        let flipped = Val::from_bits(Type::I64, val.bits() ^ (1 << 7));
        assert_eq!(flipped, Val::I64(128));
    }

    #[test]
    fn ptr_bit_flip_can_change_region() {
        let p = Val::Ptr(Ptr::shared(0));
        let flipped = Val::from_bits(Type::Ptr, p.bits() ^ (1 << 40));
        assert_eq!(flipped.as_ptr().unwrap().region, 1);
    }
}
