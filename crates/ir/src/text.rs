//! Parser for the textual IR format produced by [`crate::print::ModulePrinter`].
//!
//! `parse_module(&ModulePrinter(&m).to_string())` reconstructs a module that
//! is structurally equal (`==`) to `m`, including resource counts and role
//! bindings, which the printer emits as `mutexes`/`barriers`/`callsites` and
//! `init`/`spmd`/`fini` directives. This is what makes `.bwir` repro files
//! emitted by the fuzzer loadable by the `bw` CLI.
//!
//! The grammar is line-oriented and deliberately strict: it accepts exactly
//! the printer's output (plus blank lines), so a file that parses here and
//! passes [`crate::verify::verify_module`] round-trips bit-for-bit.

use std::fmt;

use crate::function::{Block, Function, ValueDef};
use crate::ids::{
    BarrierId, BlockId, CallSiteId, FuncId, GlobalId, MutexId, TableId, ValueId,
};
use crate::inst::{BinOp, CmpOp, Inst, Op, PhiIncoming, UnOp};
use crate::module::{FuncTable, Global, Module};
use crate::value::{Ptr, Space, Type, Val};

/// A syntax error with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl fmt::Display for TextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TextError {}

/// Parses a module from the textual form emitted by [`crate::ModulePrinter`].
///
/// The result is not verified; run [`crate::verify_module`] on it before
/// executing. Structural round-trip holds: printing a module and parsing the
/// text yields an equal module.
pub fn parse_module(input: &str) -> Result<Module, TextError> {
    Parser::new(input).module()
}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, TextError> {
    Err(TextError { line, message: message.into() })
}

struct Parser<'a> {
    /// `(1-based line number, trimmed text)` for every non-blank line.
    lines: Vec<(usize, &'a str)>,
    pos: usize,
    /// Highest referenced resource ids, for count inference when the
    /// corresponding directive is absent (hand-written files).
    used_mutexes: u32,
    used_barriers: u32,
    used_call_sites: u32,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        let lines = input
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty())
            .collect();
        Parser { lines, pos: 0, used_mutexes: 0, used_barriers: 0, used_call_sites: 0 }
    }

    fn next(&mut self) -> Option<(usize, &'a str)> {
        let item = self.lines.get(self.pos).copied();
        if item.is_some() {
            self.pos += 1;
        }
        item
    }

    fn module(&mut self) -> Result<Module, TextError> {
        let (line, header) = match self.next() {
            Some(l) => l,
            None => return err(1, "empty input; expected `module NAME {`"),
        };
        let name = header
            .strip_prefix("module ")
            .and_then(|r| r.strip_suffix(" {"))
            .ok_or_else(|| TextError {
                line,
                message: format!("expected `module NAME {{`, found `{header}`"),
            })?
            .to_string();

        let mut globals = Vec::new();
        let mut funcs: Vec<Function> = Vec::new();
        // Tables and roles name functions that may not be parsed yet, so they
        // are recorded textually here and resolved after the closing brace.
        let mut pending_tables: Vec<(usize, String, Vec<String>)> = Vec::new();
        let mut pending_roles: Vec<(usize, &'a str, String)> = Vec::new();
        let mut counts: [Option<u32>; 3] = [None, None, None];
        let mut closed = false;

        while let Some((line, text)) = self.next() {
            if text == "}" {
                closed = true;
                break;
            } else if let Some(rest) = text.strip_prefix("global ") {
                globals.push(parse_global(line, rest)?);
            } else if let Some(rest) = text.strip_prefix("table ") {
                let (name, list) = rest.split_once(" = ").ok_or_else(|| TextError {
                    line,
                    message: "expected `table NAME = [..]`".into(),
                })?;
                let inner = list
                    .strip_prefix('[')
                    .and_then(|l| l.strip_suffix(']'))
                    .ok_or_else(|| TextError {
                        line,
                        message: "table list must be bracketed".into(),
                    })?;
                let names = if inner.is_empty() {
                    Vec::new()
                } else {
                    inner.split(", ").map(str::to_string).collect()
                };
                pending_tables.push((line, name.to_string(), names));
            } else if let Some(rest) = text.strip_prefix("mutexes ") {
                counts[0] = Some(parse_count(line, rest, "mutexes")?);
            } else if let Some(rest) = text.strip_prefix("barriers ") {
                counts[1] = Some(parse_count(line, rest, "barriers")?);
            } else if let Some(rest) = text.strip_prefix("callsites ") {
                counts[2] = Some(parse_count(line, rest, "callsites")?);
            } else if let Some(rest) = text.strip_prefix("init ") {
                pending_roles.push((line, "init", rest.to_string()));
            } else if let Some(rest) = text.strip_prefix("spmd ") {
                pending_roles.push((line, "spmd", rest.to_string()));
            } else if let Some(rest) = text.strip_prefix("fini ") {
                pending_roles.push((line, "fini", rest.to_string()));
            } else if text.starts_with("func ") {
                funcs.push(self.function(line, text)?);
            } else {
                return err(line, format!("unexpected module-level line `{text}`"));
            }
        }
        if !closed {
            let last = self.lines.last().map_or(1, |&(n, _)| n);
            return err(last, "unexpected end of input; missing closing `}`");
        }
        if let Some((line, text)) = self.next() {
            return err(line, format!("trailing input after module: `{text}`"));
        }

        let lookup = |line: usize, name: &str| -> Result<FuncId, TextError> {
            funcs
                .iter()
                .position(|f| f.name == name)
                .map(FuncId::from_index)
                .ok_or_else(|| TextError {
                    line,
                    message: format!("unknown function `{name}`"),
                })
        };
        let mut tables = Vec::new();
        for (line, name, names) in pending_tables {
            let funcs = names
                .iter()
                .map(|n| lookup(line, n))
                .collect::<Result<Vec<_>, _>>()?;
            tables.push(FuncTable { name, funcs });
        }
        let mut init = None;
        let mut spmd_entry = None;
        let mut fini = None;
        for (line, role, name) in pending_roles {
            let fid = Some(lookup(line, &name)?);
            match role {
                "init" => init = fid,
                "spmd" => spmd_entry = fid,
                _ => fini = fid,
            }
        }

        Ok(Module {
            name,
            funcs,
            globals,
            num_mutexes: counts[0].unwrap_or(self.used_mutexes),
            num_barriers: counts[1].unwrap_or(self.used_barriers),
            tables,
            init,
            spmd_entry,
            fini,
            num_call_sites: counts[2].unwrap_or(self.used_call_sites),
        })
    }

    fn function(&mut self, line: usize, header: &str) -> Result<Function, TextError> {
        let rest = header
            .strip_prefix("func ")
            .and_then(|r| r.strip_suffix(" {"))
            .ok_or_else(|| TextError {
                line,
                message: "expected `func NAME(..) [-> TY] {`".into(),
            })?;
        let (name, rest) = rest.split_once('(').ok_or_else(|| TextError {
            line,
            message: "missing `(` in function header".into(),
        })?;
        let (params_s, tail) = rest.rsplit_once(')').ok_or_else(|| TextError {
            line,
            message: "missing `)` in function header".into(),
        })?;
        let ret = if tail.is_empty() {
            None
        } else {
            let ty = tail.strip_prefix(" -> ").ok_or_else(|| TextError {
                line,
                message: format!("expected ` -> TY` after params, found `{tail}`"),
            })?;
            Some(parse_type(line, ty)?)
        };

        let mut params = Vec::new();
        if !params_s.is_empty() {
            for (i, p) in params_s.split(", ").enumerate() {
                let (v, ty) = p.split_once(": ").ok_or_else(|| TextError {
                    line,
                    message: format!("expected `vN: TY` parameter, found `{p}`"),
                })?;
                let id = parse_ref(line, v, "v")?;
                if id as usize != i {
                    return err(line, format!("parameter {i} is named v{id}; expected v{i}"));
                }
                params.push(parse_type(line, ty)?);
            }
        }

        // Dense SSA value table: slot v_i holds its type and definition.
        let mut slots: Vec<Option<(Type, ValueDef)>> = params
            .iter()
            .enumerate()
            .map(|(i, &ty)| Some((ty, ValueDef::Param(i))))
            .collect();

        let mut blocks: Vec<Block> = Vec::new();
        loop {
            let (line, text) = match self.next() {
                Some(l) => l,
                None => return err(line, "unexpected end of input inside function body"),
            };
            if text == "}" {
                break;
            }
            if let Some(label) = parse_block_label(text) {
                let (id, name) = label;
                if id as usize != blocks.len() {
                    return err(
                        line,
                        format!("block bb{id} out of order; expected bb{}", blocks.len()),
                    );
                }
                blocks.push(Block { insts: Vec::new(), name });
                continue;
            }
            if blocks.is_empty() {
                return err(line, "instruction before any block label");
            }
            let bb = BlockId::from_index(blocks.len() - 1);
            let inst = self.inst(line, text)?;
            if let (Some(r), Some(ty)) = (inst.result, inst.ty) {
                let idx = r.index();
                if idx >= slots.len() {
                    slots.resize(idx + 1, None);
                }
                if slots[idx].is_some() {
                    return err(line, format!("value {r} defined more than once"));
                }
                let def = ValueDef::Inst {
                    block: bb,
                    inst_index: blocks[bb.index()].insts.len(),
                };
                slots[idx] = Some((ty, def));
            }
            blocks[bb.index()].insts.push(inst);
        }

        let mut defs = Vec::with_capacity(slots.len());
        let mut value_types = Vec::with_capacity(slots.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some((ty, def)) => {
                    value_types.push(ty);
                    defs.push(def);
                }
                None => {
                    return err(line, format!("in `{name}`: value v{i} is never defined"))
                }
            }
        }

        Ok(Function { name: name.to_string(), params, ret, blocks, defs, value_types })
    }

    fn inst(&mut self, line: usize, text: &str) -> Result<Inst, TextError> {
        // `vN: TY = OP` defines a result; anything else is a bare op (no op
        // mnemonic contains ` = `, so the split is unambiguous).
        let (result, ty, op_text) = match text.split_once(" = ") {
            Some((lhs, rhs)) => {
                let (v, ty) = lhs.split_once(": ").ok_or_else(|| TextError {
                    line,
                    message: format!("expected `vN: TY = ..`, found `{text}`"),
                })?;
                let id = ValueId(parse_ref(line, v, "v")?);
                (Some(id), Some(parse_type(line, ty)?), rhs)
            }
            None => (None, None, text),
        };
        let op = self.op(line, op_text, ty)?;
        Ok(Inst { op, result, ty })
    }

    fn op(&mut self, line: usize, text: &str, ty: Option<Type>) -> Result<Op, TextError> {
        let (head, rest) = text.split_once(' ').unwrap_or((text, ""));
        let value = |s: &str| parse_ref(line, s, "v").map(ValueId);
        let block = |s: &str| parse_ref(line, s, "bb").map(BlockId);
        let two = |s: &str| -> Result<(ValueId, ValueId), TextError> {
            let (a, b) = s.split_once(", ").ok_or_else(|| TextError {
                line,
                message: format!("expected two operands, found `{s}`"),
            })?;
            Ok((value(a)?, value(b)?))
        };
        let bin = |op: BinOp| two(rest).map(|(lhs, rhs)| Op::Bin { op, lhs, rhs });
        let un = |op: UnOp| value(rest).map(|operand| Op::Un { op, operand });

        Ok(match head {
            "const" => {
                let ty = ty.ok_or_else(|| TextError {
                    line,
                    message: "`const` requires a typed result".into(),
                })?;
                Op::Const(parse_val(line, rest, ty)?)
            }
            "add" => bin(BinOp::Add)?,
            "sub" => bin(BinOp::Sub)?,
            "mul" => bin(BinOp::Mul)?,
            "div" => bin(BinOp::Div)?,
            "rem" => bin(BinOp::Rem)?,
            "and" => bin(BinOp::And)?,
            "or" => bin(BinOp::Or)?,
            "xor" => bin(BinOp::Xor)?,
            "shl" => bin(BinOp::Shl)?,
            "shr" => bin(BinOp::Shr)?,
            "min" => bin(BinOp::Min)?,
            "max" => bin(BinOp::Max)?,
            "neg" => un(UnOp::Neg)?,
            "not" => un(UnOp::Not)?,
            "i2f" => un(UnOp::IntToFloat)?,
            "f2i" => un(UnOp::FloatToInt)?,
            "sqrt" => un(UnOp::Sqrt)?,
            "abs" => un(UnOp::Abs)?,
            _ if head.starts_with("cmp.") => {
                let op = match &head[4..] {
                    "eq" => CmpOp::Eq,
                    "ne" => CmpOp::Ne,
                    "lt" => CmpOp::Lt,
                    "le" => CmpOp::Le,
                    "gt" => CmpOp::Gt,
                    "ge" => CmpOp::Ge,
                    other => {
                        return err(line, format!("unknown comparison `cmp.{other}`"))
                    }
                };
                let (lhs, rhs) = two(rest)?;
                Op::Cmp { op, lhs, rhs }
            }
            "phi" => {
                let ty = ty.ok_or_else(|| TextError {
                    line,
                    message: "`phi` requires a typed result".into(),
                })?;
                let mut incomings = Vec::new();
                for part in rest.split("], ") {
                    let inner =
                        part.trim_start_matches('[').trim_end_matches(']');
                    let (bb, v) = inner.split_once(", ").ok_or_else(|| TextError {
                        line,
                        message: format!("expected `[bbN, vM]` incoming, found `{part}`"),
                    })?;
                    incomings.push(PhiIncoming { block: block(bb)?, value: value(v)? });
                }
                Op::Phi { incomings, ty }
            }
            "globaladdr" => Op::GlobalAddr(GlobalId(parse_ref(line, rest, "g")?)),
            _ if head.starts_with("load.") => {
                let ty = parse_type(line, &head[5..])?;
                Op::Load { addr: value(rest)?, ty }
            }
            "gep" => {
                let (base, offset) = two(rest)?;
                Op::Gep { base, offset }
            }
            "store" => {
                let (v, addr) = rest.split_once(" -> ").ok_or_else(|| TextError {
                    line,
                    message: "expected `store vV -> vA`".into(),
                })?;
                Op::Store { addr: value(addr)?, value: value(v)? }
            }
            "alloca" => Op::Alloca { size: value(rest)? },
            "threadid" => Op::ThreadId,
            "numthreads" => Op::NumThreads,
            "fetchadd" => {
                let (g, delta) = rest.split_once(", ").ok_or_else(|| TextError {
                    line,
                    message: "expected `fetchadd gN, vD`".into(),
                })?;
                Op::AtomicFetchAdd {
                    global: GlobalId(parse_ref(line, g, "g")?),
                    delta: value(delta)?,
                }
            }
            "call" => {
                let (callee, tail) = rest.split_once('(').ok_or_else(|| TextError {
                    line,
                    message: "expected `call fnN(..) @csM`".into(),
                })?;
                let (args, site) = parse_call_tail(line, tail)?;
                self.used_call_sites = self.used_call_sites.max(site.0 + 1);
                Op::Call {
                    func: FuncId(parse_ref(line, callee, "fn")?),
                    args: args.iter().map(|a| value(a)).collect::<Result<_, _>>()?,
                    site,
                }
            }
            "icall" => {
                let (table, tail) = rest.split_once('[').ok_or_else(|| TextError {
                    line,
                    message: "expected `icall tblN[vS](..) @csM`".into(),
                })?;
                let (selector, tail) = tail.split_once("](").ok_or_else(|| TextError {
                    line,
                    message: "expected `](` after icall selector".into(),
                })?;
                let (args, site) = parse_call_tail(line, tail)?;
                self.used_call_sites = self.used_call_sites.max(site.0 + 1);
                Op::CallIndirect {
                    table: TableId(parse_ref(line, table, "tbl")?),
                    selector: value(selector)?,
                    args: args.iter().map(|a| value(a)).collect::<Result<_, _>>()?,
                    site,
                }
            }
            "output" => Op::Output(value(rest)?),
            "lock" => {
                let m = MutexId(parse_ref(line, rest, "mtx")?);
                self.used_mutexes = self.used_mutexes.max(m.0 + 1);
                Op::MutexLock(m)
            }
            "unlock" => {
                let m = MutexId(parse_ref(line, rest, "mtx")?);
                self.used_mutexes = self.used_mutexes.max(m.0 + 1);
                Op::MutexUnlock(m)
            }
            "barrier" => {
                let b = BarrierId(parse_ref(line, rest, "bar")?);
                self.used_barriers = self.used_barriers.max(b.0 + 1);
                Op::Barrier(b)
            }
            "rand" => Op::Rand { bound: value(rest)? },
            "br" => {
                let mut parts = rest.split(", ");
                let (c, t, e) = match (parts.next(), parts.next(), parts.next(), parts.next())
                {
                    (Some(c), Some(t), Some(e), None) => (c, t, e),
                    _ => return err(line, "expected `br vC, bbT, bbE`"),
                };
                Op::Br { cond: value(c)?, then_bb: block(t)?, else_bb: block(e)? }
            }
            "jump" => Op::Jump(block(rest)?),
            "ret" => {
                if rest.is_empty() {
                    Op::Ret(None)
                } else {
                    Op::Ret(Some(value(rest)?))
                }
            }
            "trap" => Op::Trap,
            other => return err(line, format!("unknown instruction `{other}`")),
        })
    }
}

/// Parses `bbN:` or `bbN: ; comment`, returning `None` for non-label lines.
fn parse_block_label(text: &str) -> Option<(u32, Option<String>)> {
    let rest = text.strip_prefix("bb")?;
    let (digits, tail) = match rest.find(':') {
        Some(i) => (&rest[..i], &rest[i + 1..]),
        None => return None,
    };
    let id: u32 = digits.parse().ok()?;
    if tail.is_empty() {
        Some((id, None))
    } else {
        let name = tail.strip_prefix(" ; ")?;
        Some((id, Some(name.to_string())))
    }
}

fn parse_global(line: usize, rest: &str) -> Result<Global, TextError> {
    let (name, rest) = rest.split_once(" : ").ok_or_else(|| TextError {
        line,
        message: "expected `global NAME : TY xLEN [shared] [tid_counter] = INIT`".into(),
    })?;
    let (head, init_s) = rest.split_once(" = ").ok_or_else(|| TextError {
        line,
        message: "missing ` = INIT` in global".into(),
    })?;
    let mut parts = head.split_whitespace();
    let ty = parse_type(line, parts.next().unwrap_or(""))?;
    let len_s = parts.next().unwrap_or("");
    let len = len_s
        .strip_prefix('x')
        .and_then(|s| s.parse::<u64>().ok())
        .ok_or_else(|| TextError {
            line,
            message: format!("expected `xLEN` after global type, found `{len_s}`"),
        })?;
    let (mut shared, mut tid_counter) = (false, false);
    for flag in parts {
        match flag {
            "shared" => shared = true,
            "tid_counter" => tid_counter = true,
            other => return err(line, format!("unknown global flag `{other}`")),
        }
    }
    let init = parse_val(line, init_s, ty)?;
    Ok(Global { name: name.to_string(), ty, len, init, shared, tid_counter })
}

fn parse_call_tail(
    line: usize,
    tail: &str,
) -> Result<(Vec<&str>, CallSiteId), TextError> {
    let (args_s, site_s) = tail.rsplit_once(") @").ok_or_else(|| TextError {
        line,
        message: "expected `) @csM` closing a call".into(),
    })?;
    let args =
        if args_s.is_empty() { Vec::new() } else { args_s.split(", ").collect() };
    Ok((args, CallSiteId(parse_ref(line, site_s, "cs")?)))
}

fn parse_count(line: usize, s: &str, what: &str) -> Result<u32, TextError> {
    s.parse().map_err(|_| TextError {
        line,
        message: format!("invalid `{what}` count `{s}`"),
    })
}

fn parse_ref(line: usize, s: &str, prefix: &str) -> Result<u32, TextError> {
    s.strip_prefix(prefix)
        .and_then(|d| d.parse::<u32>().ok())
        .ok_or_else(|| TextError {
            line,
            message: format!("expected `{prefix}N`, found `{s}`"),
        })
}

fn parse_type(line: usize, s: &str) -> Result<Type, TextError> {
    match s {
        "i64" => Ok(Type::I64),
        "f64" => Ok(Type::F64),
        "bool" => Ok(Type::Bool),
        "ptr" => Ok(Type::Ptr),
        other => err(line, format!("unknown type `{other}`")),
    }
}

fn parse_val(line: usize, s: &str, ty: Type) -> Result<Val, TextError> {
    let bad = || TextError { line, message: format!("invalid {ty} literal `{s}`") };
    match ty {
        Type::I64 => s.parse().map(Val::I64).map_err(|_| bad()),
        Type::F64 => s.parse().map(Val::F64).map_err(|_| bad()),
        Type::Bool => match s {
            "true" => Ok(Val::Bool(true)),
            "false" => Ok(Val::Bool(false)),
            _ => Err(bad()),
        },
        Type::Ptr => {
            let (space, rest) = if let Some(r) = s.strip_prefix("&shared[") {
                (Space::Shared, r)
            } else if let Some(r) = s.strip_prefix("&local[") {
                (Space::Local, r)
            } else {
                return Err(bad());
            };
            let inner = rest.strip_suffix(']').ok_or_else(bad)?;
            let (region, offset) = inner.split_once('+').ok_or_else(bad)?;
            Ok(Val::Ptr(Ptr {
                space,
                region: region.parse().map_err(|_| bad())?,
                offset: offset.parse().map_err(|_| bad())?,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::print::ModulePrinter;
    use crate::verify::verify_module;

    fn roundtrip(m: &Module) {
        let text = ModulePrinter(m).to_string();
        let parsed = parse_module(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(&parsed, m, "round-trip mismatch for:\n{text}");
        // And the reparse is stable: printing the parsed module is identical.
        assert_eq!(ModulePrinter(&parsed).to_string(), text);
    }

    #[test]
    fn roundtrips_empty_module() {
        roundtrip(&Module::new("empty"));
    }

    #[test]
    fn roundtrips_module_with_all_features() {
        let mut m = Module::new("kitchen_sink");
        let n = m.add_global("n", Type::I64, Val::I64(8), true);
        let id = m.add_global("id", Type::I64, Val::I64(0), false);
        m.mark_tid_counter(id);
        m.add_array("data", Type::F64, 16, Val::F64(0.5), true);
        let mtx = m.add_mutex();
        let bar = m.add_barrier();

        let mut helper = FunctionBuilder::new("helper", vec![Type::I64], Some(Type::I64));
        let p = helper.param(0);
        let one = helper.const_i64(1);
        let r = helper.add(p, one);
        helper.ret(Some(r));
        let helper_id = m.add_func(helper.finish());

        let mut b = FunctionBuilder::new("slave", vec![], None);
        let tid = b.thread_id();
        let bound = b.load_global(&m, n);
        let c = b.cmp(CmpOp::Lt, tid, bound);
        let then_bb = b.add_block("then");
        let else_bb = b.add_block("else");
        b.br(c, then_bb, else_bb);
        b.switch_to(then_bb);
        b.mutex_lock(mtx);
        let bumped = b.call(&mut m, helper_id, vec![tid]).unwrap();
        b.output(bumped);
        b.mutex_unlock(mtx);
        b.jump(else_bb);
        b.switch_to(else_bb);
        b.barrier(bar);
        b.ret(None);
        let slave = m.add_func(b.finish());

        m.spmd_entry = Some(slave);
        m.add_table("jump_table", vec![helper_id]);
        verify_module(&m).unwrap();
        roundtrip(&m);
    }

    #[test]
    fn roundtrips_phi_loops_and_negative_values() {
        let mut m = Module::new("loopy");
        let mut b = FunctionBuilder::new("count", vec![], Some(Type::I64));
        let zero = b.const_i64(-3);
        let header = b.add_block("header");
        let body = b.add_block("body");
        let exit = b.add_block("exit");
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(BlockId(0), zero)]);
        let five = b.const_i64(5);
        let c = b.cmp(CmpOp::Lt, i, five);
        b.br(c, body, exit);
        b.switch_to(body);
        let one = b.const_i64(1);
        let next = b.add(i, one);
        b.add_phi_incoming(i, body, next);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i));
        m.add_func(b.finish());
        verify_module(&m).unwrap();
        roundtrip(&m);
    }

    #[test]
    fn reports_line_numbers_on_errors() {
        let bad = "module m {\n  func f() {\n  bb0:\n    bogus v0\n  }\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.to_string().contains("bogus"), "{e}");
    }

    #[test]
    fn rejects_sparse_value_numbering() {
        let bad = "module m {\n  func f() -> i64 {\n  bb0:\n    v1: i64 = const 4\n    ret v1\n  }\n}\n";
        let e = parse_module(bad).unwrap_err();
        assert!(e.to_string().contains("never defined"), "{e}");
    }

    #[test]
    fn infers_resource_counts_without_directives() {
        let src = "module m {\n  func f() {\n  bb0:\n    lock mtx2\n    unlock mtx2\n    barrier bar0\n    ret\n  }\n}\n";
        let m = parse_module(src).unwrap();
        assert_eq!(m.num_mutexes, 3);
        assert_eq!(m.num_barriers, 1);
    }
}
