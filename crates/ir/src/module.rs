//! Modules: the top-level IR container for an SPMD program.

use serde::{Deserialize, Serialize};

use crate::ids::{BarrierId, FuncId, GlobalId, MutexId, TableId};
use crate::function::Function;
use crate::value::{Type, Val};

/// A global variable: a scalar or a fixed-size array in shared memory.
///
/// The `shared` flag drives the similarity analysis: loads from a shared
/// global seed the `shared` category (the paper's "constants or global
/// variables that are shared among all threads"). Globals written
/// concurrently with data-dependent values should be declared with
/// `shared = false`; loads from them are classified `none`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Global {
    /// Name for diagnostics and the textual front-end.
    pub name: String,
    /// Element type.
    pub ty: Type,
    /// Number of words (1 for scalars).
    pub len: u64,
    /// Initial value for every element.
    pub init: Val,
    /// Whether the similarity analysis may treat loads from this global as
    /// `shared` operands.
    pub shared: bool,
    /// Whether this global is a thread-ID counter: the target of the
    /// `procid = id++` pattern. Atomic fetch-adds on such a global seed the
    /// `threadID` category.
    pub tid_counter: bool,
}

/// A function table used by indirect calls (models function pointers; all
/// potential callees must share a signature).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FuncTable {
    /// Name for diagnostics.
    pub name: String,
    /// Callees, indexed by the runtime selector.
    pub funcs: Vec<FuncId>,
}

/// A whole SPMD program.
///
/// Execution model (mirrors the paper's Figure 1 structure):
/// 1. `init`, if present, runs once single-threaded (the `main()` setup).
/// 2. `spmd_entry` runs concurrently in every thread (the `slave()`).
/// 3. `fini`, if present, runs once single-threaded after the join and
///    typically emits outputs for golden-run comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module name (benchmark name).
    pub name: String,
    /// All functions.
    pub funcs: Vec<Function>,
    /// All globals.
    pub globals: Vec<Global>,
    /// Number of mutexes the program uses.
    pub num_mutexes: u32,
    /// Number of barriers the program uses.
    pub num_barriers: u32,
    /// Function tables for indirect calls.
    pub tables: Vec<FuncTable>,
    /// Single-threaded setup function.
    pub init: Option<FuncId>,
    /// The function every thread executes in the parallel section.
    pub spmd_entry: Option<FuncId>,
    /// Single-threaded teardown / output function.
    pub fini: Option<FuncId>,
    /// Number of call sites assigned so far (module-wide counter).
    pub num_call_sites: u32,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: impl Into<String>) -> Self {
        Module {
            name: name.into(),
            funcs: Vec::new(),
            globals: Vec::new(),
            num_mutexes: 0,
            num_barriers: 0,
            tables: Vec::new(),
            init: None,
            spmd_entry: None,
            fini: None,
            num_call_sites: 0,
        }
    }

    /// Adds a function and returns its id.
    pub fn add_func(&mut self, func: Function) -> FuncId {
        let id = FuncId::from_index(self.funcs.len());
        self.funcs.push(func);
        id
    }

    /// The function with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.funcs[id.index()]
    }

    /// Mutable access to a function.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.funcs[id.index()]
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.funcs.iter().position(|f| f.name == name).map(FuncId::from_index)
    }

    /// Iterates over `(FuncId, &Function)` pairs.
    pub fn iter_funcs(&self) -> impl Iterator<Item = (FuncId, &Function)> {
        self.funcs.iter().enumerate().map(|(i, f)| (FuncId::from_index(i), f))
    }

    /// Declares a scalar global and returns its id.
    pub fn add_global(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        init: Val,
        shared: bool,
    ) -> GlobalId {
        self.add_array(name, ty, 1, init, shared)
    }

    /// Declares an array global of `len` elements and returns its id.
    pub fn add_array(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        len: u64,
        init: Val,
        shared: bool,
    ) -> GlobalId {
        let id = GlobalId::from_index(self.globals.len());
        self.globals.push(Global { name: name.into(), ty, len, init, shared, tid_counter: false });
        id
    }

    /// Marks a global as a thread-ID counter (the `procid = id++` pattern).
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn mark_tid_counter(&mut self, id: GlobalId) {
        self.globals[id.index()].tid_counter = true;
    }

    /// The global with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Looks up a global by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals.iter().position(|g| g.name == name).map(GlobalId::from_index)
    }

    /// Declares a mutex and returns its id.
    pub fn add_mutex(&mut self) -> MutexId {
        let id = MutexId(self.num_mutexes);
        self.num_mutexes += 1;
        id
    }

    /// Declares a barrier and returns its id.
    pub fn add_barrier(&mut self) -> BarrierId {
        let id = BarrierId(self.num_barriers);
        self.num_barriers += 1;
        id
    }

    /// Declares a function table and returns its id.
    pub fn add_table(&mut self, name: impl Into<String>, funcs: Vec<FuncId>) -> TableId {
        let id = TableId::from_index(self.tables.len());
        self.tables.push(FuncTable { name: name.into(), funcs });
        id
    }

    /// Allocates a fresh module-unique call-site id.
    pub fn new_call_site(&mut self) -> crate::ids::CallSiteId {
        let id = crate::ids::CallSiteId(self.num_call_sites);
        self.num_call_sites += 1;
        id
    }

    /// Total number of instructions across all functions.
    pub fn num_insts(&self) -> usize {
        self.funcs.iter().map(Function::num_insts).sum()
    }

    /// Total number of conditional branches across all functions.
    pub fn num_branches(&self) -> usize {
        self.funcs.iter().map(Function::num_branches).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn globals_are_separate_regions() {
        let mut m = Module::new("t");
        let a = m.add_global("a", Type::I64, Val::I64(0), true);
        let b = m.add_array("b", Type::F64, 10, Val::F64(0.0), false);
        assert_eq!(m.global(a).len, 1);
        assert_eq!(m.global(b).len, 10);
        assert_ne!(a, b);
    }

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("t");
        let g = m.add_global("counter", Type::I64, Val::I64(0), false);
        m.mark_tid_counter(g);
        assert_eq!(m.global_by_name("counter"), Some(g));
        assert!(m.global(g).tid_counter);
        assert_eq!(m.global_by_name("missing"), None);

        let f = m.add_func(Function::new("slave", vec![], None));
        assert_eq!(m.func_by_name("slave"), Some(f));
        assert_eq!(m.func_by_name("nope"), None);
    }

    #[test]
    fn sync_primitive_ids_are_sequential() {
        let mut m = Module::new("t");
        assert_eq!(m.add_mutex(), MutexId(0));
        assert_eq!(m.add_mutex(), MutexId(1));
        assert_eq!(m.add_barrier(), BarrierId(0));
        assert_eq!(m.num_mutexes, 2);
        assert_eq!(m.num_barriers, 1);
    }

    #[test]
    fn call_sites_are_module_unique() {
        let mut m = Module::new("t");
        let a = m.new_call_site();
        let b = m.new_call_site();
        assert_ne!(a, b);
        assert_eq!(m.num_call_sites, 2);
    }
}
