//! Dominator tree computation (Cooper–Harvey–Kennedy iterative algorithm).

use crate::cfg::Cfg;
use crate::ids::BlockId;

/// A dominator tree over the blocks of one function.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Immediate dominator of each block (`None` for the entry and for
    /// unreachable blocks).
    idom: Vec<Option<BlockId>>,
    /// Reverse postorder used during construction (reachable blocks only).
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` if unreachable).
    rpo_pos: Vec<usize>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `cfg` rooted at `entry`.
    pub fn new(cfg: &Cfg, entry: BlockId) -> Self {
        let n = cfg.len();
        let rpo = cfg.reverse_postorder(entry);
        let mut rpo_pos = vec![usize::MAX; n];
        for (i, &bb) in rpo.iter().enumerate() {
            rpo_pos[bb.index()] = i;
        }

        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry); // sentinel; cleared at the end

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                // First processed predecessor with a known idom.
                let mut new_idom: Option<BlockId> = None;
                for &pred in cfg.preds(bb) {
                    if idom[pred.index()].is_some() {
                        new_idom = Some(match new_idom {
                            None => pred,
                            Some(cur) => Self::intersect(&idom, &rpo_pos, pred, cur),
                        });
                    }
                }
                if let Some(nd) = new_idom {
                    if idom[bb.index()] != Some(nd) {
                        idom[bb.index()] = Some(nd);
                        changed = true;
                    }
                }
            }
        }

        idom[entry.index()] = None;
        DomTree { idom, rpo, rpo_pos, entry }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_pos: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_pos[a.index()] > rpo_pos[b.index()] {
                a = idom[a.index()].expect("intersect walked past entry");
            }
            while rpo_pos[b.index()] > rpo_pos[a.index()] {
                b = idom[b.index()].expect("intersect walked past entry");
            }
        }
        a
    }

    /// The entry block the tree is rooted at.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// The immediate dominator of `block` (`None` for the entry or an
    /// unreachable block).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        self.idom[block.index()]
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    /// Returns `false` if either block is unreachable.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_pos[a.index()] == usize::MAX || self.rpo_pos[b.index()] == usize::MAX {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        block == self.entry || self.idom[block.index()].is_some()
    }

    /// The reverse postorder of reachable blocks used by the computation.
    pub fn reverse_postorder(&self) -> &[BlockId] {
        &self.rpo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::value::Type;

    /// entry → {t, e} → join → exit, with a loop on top of join.
    fn build_cfg() -> (Cfg, Vec<BlockId>) {
        let mut b = FunctionBuilder::new("f", vec![Type::Bool], None);
        let cond = b.param(0);
        let t = b.add_block("t");
        let e = b.add_block("e");
        let j = b.add_block("j");
        let exit = b.add_block("exit");
        b.br(cond, t, e);
        b.switch_to(t);
        b.jump(j);
        b.switch_to(e);
        b.jump(j);
        b.switch_to(j);
        b.br(cond, j, exit); // self-loop on j
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        (Cfg::new(&f), vec![BlockId(0), t, e, j, exit])
    }

    #[test]
    fn diamond_idoms() {
        let (cfg, blocks) = build_cfg();
        let dom = DomTree::new(&cfg, BlockId(0));
        let [entry, t, e, j, exit] = blocks[..] else { unreachable!() };
        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(t), Some(entry));
        assert_eq!(dom.idom(e), Some(entry));
        assert_eq!(dom.idom(j), Some(entry)); // join dominated by entry, not t/e
        assert_eq!(dom.idom(exit), Some(j));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let (cfg, blocks) = build_cfg();
        let dom = DomTree::new(&cfg, BlockId(0));
        let [entry, t, _e, j, exit] = blocks[..] else { unreachable!() };
        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(j, exit));
        assert!(dom.dominates(j, j));
        assert!(!dom.dominates(t, j));
        assert!(!dom.dominates(exit, j));
    }

    #[test]
    fn unreachable_blocks_have_no_idom() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let dead = b.add_block("dead");
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&cfg, BlockId(0));
        assert_eq!(dom.idom(dead), None);
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(BlockId(0), dead));
    }
}
