//! Functions and basic blocks.

use serde::{Deserialize, Serialize};

use crate::ids::{BlockId, ValueId};
use crate::inst::{Inst, Op};
use crate::value::Type;

/// A basic block: a straight-line sequence of instructions ending in a
/// terminator. Phi nodes, if any, must come first.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Instructions in execution order. The last one must be a terminator
    /// once the function is complete (the verifier enforces this).
    pub insts: Vec<Inst>,
    /// Optional human-readable label for diagnostics and printing.
    pub name: Option<String>,
}

impl Block {
    /// The terminator instruction, if the block has one.
    pub fn terminator(&self) -> Option<&Inst> {
        self.insts.last().filter(|inst| inst.op.is_terminator())
    }

    /// Iterates over the phi instructions at the head of the block.
    pub fn phis(&self) -> impl Iterator<Item = &Inst> {
        self.insts.iter().take_while(|inst| inst.op.is_phi())
    }
}

/// Where a value was defined, for diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)] // variant fields are self-describing; variants are documented
pub enum ValueDef {
    /// The value is the `n`-th function parameter.
    Param(usize),
    /// The value is defined by the `inst_index`-th instruction of `block`.
    Inst { block: BlockId, inst_index: usize },
}

/// A function: parameters, a return type, and a CFG of basic blocks.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name (unique within the module).
    pub name: String,
    /// Parameter types. Parameter `i` is SSA value `ValueId(i)`.
    pub params: Vec<Type>,
    /// Return type, or `None` for a void function.
    pub ret: Option<Type>,
    /// Basic blocks. `BlockId(0)` is the entry block.
    pub blocks: Vec<Block>,
    /// Definition site of every SSA value, indexed by `ValueId`.
    pub defs: Vec<ValueDef>,
    /// Type of every SSA value, indexed by `ValueId`.
    pub value_types: Vec<Type>,
}

impl Function {
    /// Creates an empty function with the given signature. The entry block
    /// is created; parameters become values `0..params.len()`.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Option<Type>) -> Self {
        let defs = (0..params.len()).map(ValueDef::Param).collect();
        let value_types = params.clone();
        Function {
            name: name.into(),
            params,
            ret,
            blocks: vec![Block::default()],
            defs,
            value_types,
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        BlockId(0)
    }

    /// The block with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutable access to a block.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Iterates over `(BlockId, &Block)` pairs in id order.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks.iter().enumerate().map(|(i, b)| (BlockId::from_index(i), b))
    }

    /// The number of SSA values defined in this function.
    pub fn num_values(&self) -> usize {
        self.defs.len()
    }

    /// The type of an SSA value.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn value_type(&self, value: ValueId) -> Type {
        self.value_types[value.index()]
    }

    /// The instruction that defines `value`, or `None` for parameters.
    pub fn def_inst(&self, value: ValueId) -> Option<&Inst> {
        match self.defs.get(value.index())? {
            ValueDef::Param(_) => None,
            ValueDef::Inst { block, inst_index } => {
                self.blocks.get(block.index())?.insts.get(*inst_index)
            }
        }
    }

    /// Allocates a fresh SSA value of the given type (used by the builder).
    pub(crate) fn new_value(&mut self, ty: Type, def: ValueDef) -> ValueId {
        let id = ValueId::from_index(self.defs.len());
        self.defs.push(def);
        self.value_types.push(ty);
        id
    }

    /// Appends a new empty block and returns its id.
    pub fn add_block(&mut self, name: Option<String>) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(Block { insts: Vec::new(), name });
        id
    }

    /// Total number of instructions across all blocks.
    pub fn num_insts(&self) -> usize {
        self.blocks.iter().map(|b| b.insts.len()).sum()
    }

    /// Number of conditional branch instructions in this function.
    pub fn num_branches(&self) -> usize {
        self.blocks
            .iter()
            .flat_map(|b| b.insts.iter())
            .filter(|inst| matches!(inst.op, Op::Br { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::Op;
    use crate::value::Val;

    #[test]
    fn new_function_has_entry_and_params() {
        let f = Function::new("f", vec![Type::I64, Type::Bool], Some(Type::I64));
        assert_eq!(f.entry(), BlockId(0));
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.num_values(), 2);
        assert_eq!(f.value_type(ValueId(0)), Type::I64);
        assert_eq!(f.value_type(ValueId(1)), Type::Bool);
        assert_eq!(f.defs[0], ValueDef::Param(0));
    }

    #[test]
    fn add_block_returns_sequential_ids() {
        let mut f = Function::new("f", vec![], None);
        assert_eq!(f.add_block(None), BlockId(1));
        assert_eq!(f.add_block(Some("loop".into())), BlockId(2));
        assert_eq!(f.block(BlockId(2)).name.as_deref(), Some("loop"));
    }

    #[test]
    fn def_inst_for_params_is_none() {
        let f = Function::new("f", vec![Type::I64], None);
        assert!(f.def_inst(ValueId(0)).is_none());
    }

    #[test]
    fn counts_insts_and_branches() {
        let mut f = Function::new("f", vec![], None);
        let bb1 = f.add_block(None);
        f.block_mut(BlockId(0)).insts.push(Inst {
            op: Op::Const(Val::Bool(true)),
            result: Some(ValueId(0)),
            ty: Some(Type::Bool),
        });
        f.defs.push(ValueDef::Inst { block: BlockId(0), inst_index: 0 });
        f.value_types.push(Type::Bool);
        f.block_mut(BlockId(0)).insts.push(Inst {
            op: Op::Br { cond: ValueId(0), then_bb: bb1, else_bb: bb1 },
            result: None,
            ty: None,
        });
        f.block_mut(bb1).insts.push(Inst { op: Op::Ret(None), result: None, ty: None });
        assert_eq!(f.num_insts(), 3);
        assert_eq!(f.num_branches(), 1);
        assert!(f.block(BlockId(0)).terminator().is_some());
        assert!(f.def_inst(ValueId(0)).is_some());
    }
}
