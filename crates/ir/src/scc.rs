//! Strongly connected components, graph condensation, and the
//! interprocedural value-dependency graph.
//!
//! The similarity analysis in `bw-analysis` is a whole-module fixpoint over
//! SSA values. Its dependency structure — "the category of `v` is computed
//! from the categories of `u₁..uₙ`" — forms a directed graph whose cycles
//! (loop-carried phis, recursive calls, mutually-recursive functions) are
//! exactly the places iteration is needed. Condensing that graph into its
//! DAG of strongly connected components turns the global fixpoint into a
//! topological schedule of small local fixpoints, which is what the
//! parallel analysis executes across a worker pool.
//!
//! [`ValueGraph`] numbers every SSA value of every function into one dense
//! global index space and records the dependency edges the analysis
//! actually follows: operand → result within a function, call argument →
//! callee parameter, and callee return operand → call result.
//! [`Condensation`] is the generic Tarjan pass over any such adjacency
//! list, emitting components in dependencies-first topological order.

use crate::ids::{FuncId, ValueId};
use crate::inst::Op;
use crate::module::Module;

/// The condensation of a directed graph: its strongly connected components
/// in dependencies-first topological order.
///
/// Edges are interpreted as `u → v` meaning "`v` depends on `u`" (data
/// flows from `u` to `v`). Components are numbered so that every edge of
/// the condensation goes from a lower-numbered component to a
/// higher-numbered one; processing components in index order therefore
/// sees every dependency finalized before its dependents.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// `comp_of[node]` is the component index of `node`.
    pub comp_of: Vec<u32>,
    /// Component members, in topological order (dependencies first).
    /// Members of each component are sorted ascending, so the layout is
    /// fully determined by the input graph.
    pub comps: Vec<Vec<u32>>,
    /// Deduplicated successor components of each component (edges of the
    /// condensation DAG), sorted ascending.
    pub comp_succs: Vec<Vec<u32>>,
}

impl Condensation {
    /// Condenses the graph whose node `u` has successor list `succs[u]`
    /// (iterative Tarjan — no recursion, safe on million-node graphs).
    pub fn build(succs: &[Vec<u32>]) -> Condensation {
        let n = succs.len();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;

        // Tarjan pops each SCC only once all components reachable from it
        // are already popped, i.e. in reverse topological order of the
        // condensation. Collect in pop order, then reverse.
        let mut comps: Vec<Vec<u32>> = Vec::new();
        let mut comp_of = vec![u32::MAX; n];

        for start in 0..n {
            if index[start] != u32::MAX {
                continue;
            }
            // Explicit work stack of (node, next child position).
            let mut work: Vec<(u32, usize)> = vec![(start as u32, 0)];
            while let Some(&mut (v, ref mut ci)) = work.last_mut() {
                let vi = v as usize;
                if *ci == 0 {
                    index[vi] = next_index;
                    low[vi] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[vi] = true;
                }
                if *ci < succs[vi].len() {
                    let w = succs[vi][*ci];
                    *ci += 1;
                    let wi = w as usize;
                    if index[wi] == u32::MAX {
                        work.push((w, 0));
                    } else if on_stack[wi] {
                        low[vi] = low[vi].min(index[wi]);
                    }
                } else {
                    work.pop();
                    if let Some(&(parent, _)) = work.last() {
                        let pi = parent as usize;
                        low[pi] = low[pi].min(low[vi]);
                    }
                    if low[vi] == index[vi] {
                        let mut comp = Vec::new();
                        while let Some(w) = stack.pop() {
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort_unstable();
                        comps.push(comp);
                    }
                }
            }
        }

        // Reverse pop order → dependencies-first topological order.
        comps.reverse();
        for (ci, comp) in comps.iter().enumerate() {
            for &m in comp {
                comp_of[m as usize] = ci as u32;
            }
        }

        let mut comp_succs: Vec<Vec<u32>> = vec![Vec::new(); comps.len()];
        for (u, list) in succs.iter().enumerate() {
            let cu = comp_of[u];
            for &w in list {
                let cw = comp_of[w as usize];
                if cw != cu {
                    comp_succs[cu as usize].push(cw);
                }
            }
        }
        for list in &mut comp_succs {
            list.sort_unstable();
            list.dedup();
        }

        Condensation { comp_of, comps, comp_succs }
    }

    /// Number of components.
    pub fn num_comps(&self) -> usize {
        self.comps.len()
    }

    /// In-degree of each component in the condensation DAG (number of
    /// distinct predecessor components) — the ready counters a DAG
    /// scheduler decrements.
    pub fn in_degrees(&self) -> Vec<u32> {
        let mut deg = vec![0u32; self.comps.len()];
        for list in &self.comp_succs {
            for &s in list {
                deg[s as usize] += 1;
            }
        }
        deg
    }
}

/// The interprocedural dependency graph over every SSA value in a module.
///
/// Values are numbered densely: function `f`'s value `v` gets global index
/// `offset(f) + v`, in module function order. An edge `u → v` records that
/// the similarity (or provenance) transfer function of `v` reads the state
/// of `u`:
///
/// * instruction operand → instruction result (SSA def-use, including phi
///   incomings),
/// * call argument → callee parameter (direct and table-indirect calls),
/// * callee return operand → call result.
#[derive(Clone, Debug)]
pub struct ValueGraph {
    /// Per-function offset into the global index space (`funcs.len() + 1`
    /// entries; the last is the total).
    offsets: Vec<usize>,
    /// Dense global-index → owning-function map.
    func_of: Vec<u32>,
    /// Successor lists (deduplicated, sorted).
    succs: Vec<Vec<u32>>,
}

impl ValueGraph {
    /// Builds the dependency graph of `module`.
    pub fn build(module: &Module) -> ValueGraph {
        let nfuncs = module.funcs.len();
        let mut offsets = Vec::with_capacity(nfuncs + 1);
        let mut total = 0usize;
        for func in &module.funcs {
            offsets.push(total);
            total += func.num_values();
        }
        offsets.push(total);

        let mut func_of = vec![0u32; total];
        for (fi, w) in offsets.windows(2).enumerate() {
            for slot in &mut func_of[w[0]..w[1]] {
                *slot = fi as u32;
            }
        }

        // Return-site operands per function, needed for ret → call-result
        // edges.
        let ret_values: Vec<Vec<ValueId>> = module
            .funcs
            .iter()
            .map(|func| {
                let mut rets = Vec::new();
                for (_, block) in func.iter_blocks() {
                    if let Some(inst) = block.terminator() {
                        if let Op::Ret(Some(v)) = inst.op {
                            rets.push(v);
                        }
                    }
                }
                rets
            })
            .collect();

        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); total];
        let mut edge = |from: usize, to: usize| succs[from].push(to as u32);

        for (fid, func) in module.iter_funcs() {
            let base = offsets[fid.index()];
            for (_, block) in func.iter_blocks() {
                for inst in &block.insts {
                    // Calls contribute argument → parameter edges even when
                    // the call itself defines no value (void calls).
                    let result = inst.result.map(|res| base + res.index());
                    match &inst.op {
                        Op::Bin { lhs, rhs, .. } | Op::Cmp { lhs, rhs, .. } => {
                            let r = result.expect("bin/cmp defines a value");
                            edge(base + lhs.index(), r);
                            edge(base + rhs.index(), r);
                        }
                        Op::Un { operand, .. } => {
                            edge(base + operand.index(), result.expect("un defines a value"));
                        }
                        Op::Gep { base: b, offset } => {
                            let r = result.expect("gep defines a value");
                            edge(base + b.index(), r);
                            edge(base + offset.index(), r);
                        }
                        Op::Load { addr, .. } => {
                            edge(base + addr.index(), result.expect("load defines a value"));
                        }
                        Op::Phi { incomings, .. } => {
                            let r = result.expect("phi defines a value");
                            for inc in incomings {
                                if base + inc.value.index() != r {
                                    edge(base + inc.value.index(), r);
                                }
                            }
                        }
                        Op::Call { func: callee, args, .. } => {
                            let co = offsets[callee.index()];
                            let nparams = module.func(*callee).params.len();
                            for (i, arg) in args.iter().enumerate().take(nparams) {
                                edge(base + arg.index(), co + i);
                            }
                            if let Some(r) = result {
                                for &rv in &ret_values[callee.index()] {
                                    edge(co + rv.index(), r);
                                }
                            }
                        }
                        Op::CallIndirect { table, args, .. } => {
                            for &callee in &module.tables[table.index()].funcs {
                                let co = offsets[callee.index()];
                                let nparams = module.func(callee).params.len();
                                for (i, arg) in args.iter().enumerate().take(nparams) {
                                    edge(base + arg.index(), co + i);
                                }
                                if let Some(r) = result {
                                    for &rv in &ret_values[callee.index()] {
                                        edge(co + rv.index(), r);
                                    }
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
        }

        for list in &mut succs {
            list.sort_unstable();
            list.dedup();
        }

        ValueGraph { offsets, func_of, succs }
    }

    /// Total number of values across all functions.
    pub fn num_values(&self) -> usize {
        self.func_of.len()
    }

    /// Global index of `(func, value)`.
    pub fn index(&self, func: FuncId, value: ValueId) -> usize {
        self.offsets[func.index()] + value.index()
    }

    /// Inverse of [`ValueGraph::index`].
    pub fn split(&self, global: usize) -> (FuncId, ValueId) {
        let fi = self.func_of[global] as usize;
        (FuncId::from_index(fi), ValueId::from_index(global - self.offsets[fi]))
    }

    /// Successor (dependent) lists, indexed by global value index.
    pub fn succs(&self) -> &[Vec<u32>] {
        &self.succs
    }

    /// Condenses the graph into its SCC DAG.
    pub fn condense(&self) -> Condensation {
        Condensation::build(&self.succs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn condensation_of_a_diamond_with_a_cycle() {
        // 0 → 1 ⇄ 2 → 3, 0 → 3: comps {0}, {1,2}, {3} in that order.
        let succs = vec![vec![1, 3], vec![2], vec![1, 3], vec![]];
        let c = Condensation::build(&succs);
        assert_eq!(c.num_comps(), 3);
        assert_eq!(c.comps[0], vec![0]);
        assert_eq!(c.comps[1], vec![1, 2]);
        assert_eq!(c.comps[2], vec![3]);
        assert_eq!(c.comp_of, vec![0, 1, 1, 2]);
        assert_eq!(c.comp_succs[0], vec![1, 2]);
        assert_eq!(c.comp_succs[1], vec![2]);
        assert!(c.comp_succs[2].is_empty());
        assert_eq!(c.in_degrees(), vec![0, 1, 2]);
    }

    #[test]
    fn topological_order_is_dependencies_first() {
        // A long chain with a back-edge cycle in the middle.
        let succs = vec![vec![1], vec![2], vec![3], vec![1, 4], vec![]];
        let c = Condensation::build(&succs);
        // {0}, {1,2,3}, {4}.
        assert_eq!(c.num_comps(), 3);
        for (ci, list) in c.comp_succs.iter().enumerate() {
            for &s in list {
                assert!(
                    (s as usize) > ci,
                    "edge {ci} → {s} violates dependencies-first order"
                );
            }
        }
    }

    #[test]
    fn empty_graph() {
        let c = Condensation::build(&[]);
        assert_eq!(c.num_comps(), 0);
        assert!(c.in_degrees().is_empty());
    }

    #[test]
    fn value_graph_links_calls_interprocedurally() {
        use crate::builder::FunctionBuilder;
        use crate::module::Module;

        let mut module = Module::new("vg");
        // callee(x) { return x + 1 }
        let mut b = FunctionBuilder::new("callee", vec![crate::value::Type::I64], Some(crate::value::Type::I64));
        let x = ValueId::from_index(0);
        let one = b.const_i64(1);
        let sum = b.add(x, one);
        b.ret(Some(sum));
        let callee = module.add_func(b.finish());

        // caller() { return callee(7) }
        let mut b = FunctionBuilder::new("caller", vec![], Some(crate::value::Type::I64));
        let seven = b.const_i64(7);
        let call = b.call(&mut module, callee, vec![seven]);
        b.ret(call);
        let caller = module.add_func(b.finish());

        let g = ValueGraph::build(&module);
        assert_eq!(g.num_values(), module.funcs.iter().map(|f| f.num_values()).sum::<usize>());

        // Argument feeds the callee parameter; the callee's return operand
        // feeds the call result.
        let arg = g.index(caller, seven);
        let param = g.index(callee, x);
        assert!(g.succs()[arg].contains(&(param as u32)));
        let ret_op = g.index(callee, sum);
        let result = g.index(caller, call.unwrap());
        assert!(g.succs()[ret_op].contains(&(result as u32)));

        // Round-trip of the numbering.
        assert_eq!(g.split(param), (callee, x));
        assert_eq!(g.split(result), (caller, call.unwrap()));

        // The condensation respects interprocedural dependency order: the
        // callee's add must be scheduled before the caller's call result.
        let c = g.condense();
        assert!(c.comp_of[ret_op] < c.comp_of[result]);
    }
}
