//! Natural-loop detection and the loop nesting forest.
//!
//! BLOCKWATCH needs loop structure for two things:
//! * the runtime branch key includes the iteration numbers of all enclosing
//!   loops (up to the paper's nesting cutoff of six), and
//! * the paper folds loop back-edge decisions into its definition of
//!   "branches".
//!
//! Loops are discovered as natural loops of back edges (`tail → header`
//! where `header` dominates `tail`); back edges sharing a header are merged
//! into one loop, matching the classical definition.

use std::collections::BTreeMap;

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::ids::{BlockId, LoopId};

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (target of the back edges).
    pub header: BlockId,
    /// Blocks belonging to the loop (including the header), sorted.
    pub blocks: Vec<BlockId>,
    /// The innermost enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth: 1 for outermost loops, 2 for loops inside them, …
    pub depth: u32,
}

/// The loop nesting forest of one function.
#[derive(Clone, Debug)]
pub struct LoopForest {
    loops: Vec<Loop>,
    /// Innermost loop containing each block (`None` if the block is in no
    /// loop), indexed by block.
    innermost: Vec<Option<LoopId>>,
}

impl LoopForest {
    /// Discovers all natural loops of the function with CFG `cfg` and
    /// dominator tree `dom`.
    pub fn new(cfg: &Cfg, dom: &DomTree) -> Self {
        let n = cfg.len();

        // 1. Find back edges, grouped by header (BTreeMap for determinism).
        let mut back_edges: BTreeMap<BlockId, Vec<BlockId>> = BTreeMap::new();
        for bb_index in 0..n {
            let bb = BlockId::from_index(bb_index);
            if !dom.is_reachable(bb) {
                continue;
            }
            for &succ in cfg.succs(bb) {
                if dom.dominates(succ, bb) {
                    back_edges.entry(succ).or_default().push(bb);
                }
            }
        }

        // 2. For each header, collect the loop body: header plus all blocks
        //    that reach a back-edge tail without passing through the header.
        let mut loops = Vec::new();
        for (&header, tails) in &back_edges {
            let mut in_loop = vec![false; n];
            in_loop[header.index()] = true;
            let mut work: Vec<BlockId> = Vec::new();
            for &tail in tails {
                if !in_loop[tail.index()] {
                    in_loop[tail.index()] = true;
                    work.push(tail);
                }
            }
            while let Some(bb) = work.pop() {
                for &pred in cfg.preds(bb) {
                    if dom.is_reachable(pred) && !in_loop[pred.index()] {
                        in_loop[pred.index()] = true;
                        work.push(pred);
                    }
                }
            }
            let blocks: Vec<BlockId> = (0..n)
                .filter(|&i| in_loop[i])
                .map(BlockId::from_index)
                .collect();
            loops.push(Loop { header, blocks, parent: None, depth: 0 });
        }

        // 3. Establish nesting: loop A is nested in loop B iff A's header is
        //    in B's body and A ≠ B. The parent is the smallest such B.
        let ids: Vec<LoopId> = (0..loops.len()).map(LoopId::from_index).collect();
        for i in 0..loops.len() {
            let mut best: Option<(usize, usize)> = None; // (size, index)
            for j in 0..loops.len() {
                if i == j {
                    continue;
                }
                let contains = loops[j].blocks.binary_search(&loops[i].header).is_ok();
                // Two distinct natural loops either nest or are disjoint,
                // except same-header merges which step 1 already unified.
                if contains {
                    let size = loops[j].blocks.len();
                    if best.is_none_or(|(s, _)| size < s) {
                        best = Some((size, j));
                    }
                }
            }
            loops[i].parent = best.map(|(_, j)| ids[j]);
        }

        // 4. Depths by walking parent chains.
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = depth;
        }

        // 5. Innermost loop per block: the containing loop with the fewest
        //    blocks.
        let mut innermost: Vec<Option<LoopId>> = vec![None; n];
        for (bb_index, slot) in innermost.iter_mut().enumerate() {
            let bb = BlockId::from_index(bb_index);
            let mut best: Option<(usize, LoopId)> = None;
            for (li, l) in loops.iter().enumerate() {
                if l.blocks.binary_search(&bb).is_ok() {
                    let size = l.blocks.len();
                    if best.is_none_or(|(s, _)| size < s) {
                        best = Some((size, ids[li]));
                    }
                }
            }
            *slot = best.map(|(_, id)| id);
        }

        LoopForest { loops, innermost }
    }

    /// All loops, indexed by [`LoopId`].
    pub fn loops(&self) -> &[Loop] {
        &self.loops
    }

    /// The loop with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// The innermost loop containing `block`, if any.
    pub fn innermost(&self, block: BlockId) -> Option<LoopId> {
        self.innermost[block.index()]
    }

    /// Nesting depth of `block`: 0 outside loops, 1 in an outermost loop, …
    pub fn depth(&self, block: BlockId) -> u32 {
        self.innermost(block).map_or(0, |l| self.get(l).depth)
    }

    /// The loop whose header is `block`, if any.
    pub fn loop_with_header(&self, block: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .position(|l| l.header == block)
            .map(LoopId::from_index)
    }

    /// The chain of loops containing `block`, outermost first.
    pub fn loop_chain(&self, block: BlockId) -> Vec<LoopId> {
        let mut chain = Vec::new();
        let mut cur = self.innermost(block);
        while let Some(id) = cur {
            chain.push(id);
            cur = self.get(id).parent;
        }
        chain.reverse();
        chain
    }

    /// Whether `block` belongs to loop `id`.
    pub fn contains(&self, id: LoopId, block: BlockId) -> bool {
        self.get(id).blocks.binary_search(&block).is_ok()
    }

    /// Whether the edge `from → to` is a back edge of some loop (i.e. `to`
    /// is a loop header and `from` is inside that loop).
    pub fn is_back_edge(&self, from: BlockId, to: BlockId) -> bool {
        self.loop_with_header(to)
            .is_some_and(|l| self.contains(l, from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Function;

    /// Two nested while loops:
    /// entry → outer_h; outer_h → {inner_h, exit}; inner_h → {body, outer_latch};
    /// body → inner_h; outer_latch → outer_h.
    fn nested_loops() -> (Function, BlockId, BlockId, BlockId, BlockId) {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let outer_h = b.add_block("outer_h");
        let inner_h = b.add_block("inner_h");
        let body = b.add_block("body");
        let outer_latch = b.add_block("outer_latch");
        let exit = b.add_block("exit");
        let c = b.const_bool(true);
        b.jump(outer_h);
        b.switch_to(outer_h);
        b.br(c, inner_h, exit);
        b.switch_to(inner_h);
        b.br(c, body, outer_latch);
        b.switch_to(body);
        b.jump(inner_h);
        b.switch_to(outer_latch);
        b.jump(outer_h);
        b.switch_to(exit);
        b.ret(None);
        (b.finish(), outer_h, inner_h, body, exit)
    }

    fn forest(f: &Function) -> LoopForest {
        let cfg = Cfg::new(f);
        let dom = DomTree::new(&cfg, f.entry());
        LoopForest::new(&cfg, &dom)
    }

    #[test]
    fn finds_two_nested_loops() {
        let (f, outer_h, inner_h, body, exit) = nested_loops();
        let lf = forest(&f);
        assert_eq!(lf.loops().len(), 2);
        let outer = lf.loop_with_header(outer_h).unwrap();
        let inner = lf.loop_with_header(inner_h).unwrap();
        assert_eq!(lf.get(inner).parent, Some(outer));
        assert_eq!(lf.get(outer).parent, None);
        assert_eq!(lf.get(outer).depth, 1);
        assert_eq!(lf.get(inner).depth, 2);
        assert_eq!(lf.depth(body), 2);
        assert_eq!(lf.depth(exit), 0);
        assert_eq!(lf.innermost(body), Some(inner));
    }

    #[test]
    fn loop_chain_is_outermost_first() {
        let (f, outer_h, inner_h, body, _) = nested_loops();
        let lf = forest(&f);
        let outer = lf.loop_with_header(outer_h).unwrap();
        let inner = lf.loop_with_header(inner_h).unwrap();
        assert_eq!(lf.loop_chain(body), vec![outer, inner]);
        assert_eq!(lf.loop_chain(BlockId(0)), vec![]);
    }

    #[test]
    fn back_edge_detection() {
        let (f, outer_h, inner_h, body, exit) = nested_loops();
        let lf = forest(&f);
        assert!(lf.is_back_edge(body, inner_h));
        assert!(!lf.is_back_edge(inner_h, body));
        assert!(!lf.is_back_edge(BlockId(0), outer_h));
        assert!(!lf.is_back_edge(exit, outer_h));
    }

    #[test]
    fn straight_line_code_has_no_loops() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        b.ret(None);
        let f = b.finish();
        let lf = forest(&f);
        assert!(lf.loops().is_empty());
        assert_eq!(lf.depth(BlockId(0)), 0);
    }

    #[test]
    fn two_back_edges_one_header_merge() {
        // header with two latches: header → {a, exit}; a → {header via l1, header via l2}
        let mut b = FunctionBuilder::new("f", vec![], None);
        let header = b.add_block("header");
        let a = b.add_block("a");
        let l1 = b.add_block("l1");
        let l2 = b.add_block("l2");
        let exit = b.add_block("exit");
        let c = b.const_bool(true);
        b.jump(header);
        b.switch_to(header);
        b.br(c, a, exit);
        b.switch_to(a);
        b.br(c, l1, l2);
        b.switch_to(l1);
        b.jump(header);
        b.switch_to(l2);
        b.jump(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let lf = forest(&f);
        assert_eq!(lf.loops().len(), 1);
        let l = lf.loop_with_header(header).unwrap();
        assert!(lf.contains(l, l1));
        assert!(lf.contains(l, l2));
        assert!(lf.contains(l, a));
        assert!(!lf.contains(l, exit));
    }
}
