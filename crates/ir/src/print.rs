//! Textual dump of IR modules and functions, for diagnostics and tests.

use std::fmt::{self, Write as _};

use crate::function::Function;
use crate::ids::BlockId;
use crate::inst::{Inst, Op};
use crate::module::Module;

/// Wrapper that displays a function as readable pseudo-assembly.
pub struct FunctionPrinter<'a>(pub &'a Function);

/// Wrapper that displays a whole module.
pub struct ModulePrinter<'a>(pub &'a Module);

impl fmt::Display for FunctionPrinter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_function(f, self.0)
    }
}

impl fmt::Display for ModulePrinter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.0;
        writeln!(f, "module {} {{", m.name)?;
        for g in &m.globals {
            writeln!(
                f,
                "  global {} : {} x{}{}{} = {}",
                g.name,
                g.ty,
                g.len,
                if g.shared { " shared" } else { "" },
                if g.tid_counter { " tid_counter" } else { "" },
                g.init
            )?;
        }
        for t in &m.tables {
            let funcs: Vec<String> =
                t.funcs.iter().map(|&fid| m.func(fid).name.clone()).collect();
            writeln!(f, "  table {} = [{}]", t.name, funcs.join(", "))?;
        }
        // Resource counts and role bindings. Emitted so the textual form is
        // lossless: `crate::text::parse_module` reads these back. Zero counts
        // and absent roles are omitted (the parser defaults them).
        if m.num_mutexes > 0 {
            writeln!(f, "  mutexes {}", m.num_mutexes)?;
        }
        if m.num_barriers > 0 {
            writeln!(f, "  barriers {}", m.num_barriers)?;
        }
        if m.num_call_sites > 0 {
            writeln!(f, "  callsites {}", m.num_call_sites)?;
        }
        for (role, fid) in
            [("init", m.init), ("spmd", m.spmd_entry), ("fini", m.fini)]
        {
            if let Some(fid) = fid {
                writeln!(f, "  {role} {}", m.func(fid).name)?;
            }
        }
        for func in &m.funcs {
            let mut body = String::new();
            write_function_into(&mut body, func).map_err(|_| fmt::Error)?;
            for line in body.lines() {
                writeln!(f, "  {line}")?;
            }
        }
        writeln!(f, "}}")
    }
}

fn write_function(f: &mut fmt::Formatter<'_>, func: &Function) -> fmt::Result {
    let mut s = String::new();
    write_function_into(&mut s, func).map_err(|_| fmt::Error)?;
    f.write_str(&s)
}

fn write_function_into(out: &mut String, func: &Function) -> fmt::Result {
    let params: Vec<String> =
        func.params.iter().enumerate().map(|(i, ty)| format!("v{i}: {ty}")).collect();
    let ret = func.ret.map(|t| format!(" -> {t}")).unwrap_or_default();
    writeln!(out, "func {}({}){} {{", func.name, params.join(", "), ret)?;
    for (bb, block) in func.iter_blocks() {
        let name = block.name.as_deref().unwrap_or("");
        if name.is_empty() {
            writeln!(out, "{bb}:")?;
        } else {
            writeln!(out, "{bb}: ; {name}")?;
        }
        for inst in &block.insts {
            writeln!(out, "  {}", format_inst(func, inst))?;
        }
    }
    writeln!(out, "}}")
}

/// Formats one instruction as text.
pub fn format_inst(func: &Function, inst: &Inst) -> String {
    let lhs = match inst.result {
        Some(r) => format!("{r}: {} = ", func.value_type(r)),
        None => String::new(),
    };
    let rhs = format_op(&inst.op);
    format!("{lhs}{rhs}")
}

fn format_op(op: &Op) -> String {
    match op {
        Op::Const(v) => format!("const {v}"),
        Op::Bin { op, lhs, rhs } => format!("{} {lhs}, {rhs}", op.mnemonic()),
        Op::Cmp { op, lhs, rhs } => format!("cmp.{} {lhs}, {rhs}", op.mnemonic()),
        Op::Un { op, operand } => format!("{} {operand}", op.mnemonic()),
        Op::Phi { incomings, .. } => {
            let parts: Vec<String> =
                incomings.iter().map(|inc| format!("[{}, {}]", inc.block, inc.value)).collect();
            format!("phi {}", parts.join(", "))
        }
        Op::GlobalAddr(g) => format!("globaladdr {g}"),
        Op::Gep { base, offset } => format!("gep {base}, {offset}"),
        Op::Load { addr, ty } => format!("load.{ty} {addr}"),
        Op::Store { addr, value } => format!("store {value} -> {addr}"),
        Op::Alloca { size } => format!("alloca {size}"),
        Op::ThreadId => "threadid".to_string(),
        Op::NumThreads => "numthreads".to_string(),
        Op::AtomicFetchAdd { global, delta } => format!("fetchadd {global}, {delta}"),
        Op::Call { func, args, site } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("call {func}({}) @{site}", args.join(", "))
        }
        Op::CallIndirect { table, selector, args, site } => {
            let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
            format!("icall {table}[{selector}]({}) @{site}", args.join(", "))
        }
        Op::Output(v) => format!("output {v}"),
        Op::MutexLock(m) => format!("lock {m}"),
        Op::MutexUnlock(m) => format!("unlock {m}"),
        Op::Barrier(b) => format!("barrier {b}"),
        Op::Rand { bound } => format!("rand {bound}"),
        Op::Br { cond, then_bb, else_bb } => format!("br {cond}, {then_bb}, {else_bb}"),
        Op::Jump(bb) => format!("jump {bb}"),
        Op::Ret(Some(v)) => format!("ret {v}"),
        Op::Ret(None) => "ret".to_string(),
        Op::Trap => "trap".to_string(),
    }
}

/// Formats an entire block for diagnostics.
pub fn format_block(func: &Function, bb: BlockId) -> String {
    let mut out = String::new();
    for inst in &func.block(bb).insts {
        let _ = writeln!(out, "{}", format_inst(func, inst));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;
    use crate::value::{Type, Val};

    #[test]
    fn prints_function_with_all_shapes() {
        let mut m = Module::new("demo");
        let g = m.add_global("n", Type::I64, Val::I64(4), true);
        let mut b = FunctionBuilder::new("slave", vec![], None);
        let tid = b.thread_id();
        let n = b.load_global(&m, g);
        let c = b.cmp(CmpOp::Lt, tid, n);
        let t = b.add_block("t");
        let e = b.add_block("e");
        b.br(c, t, e);
        b.switch_to(t);
        b.output(tid);
        b.jump(e);
        b.switch_to(e);
        b.ret(None);
        m.add_func(b.finish());
        let text = ModulePrinter(&m).to_string();
        assert!(text.contains("module demo"), "{text}");
        assert!(text.contains("global n : i64 x1 shared = 4"), "{text}");
        assert!(text.contains("threadid"), "{text}");
        assert!(text.contains("cmp.lt"), "{text}");
        assert!(text.contains("br "), "{text}");
        assert!(text.contains("output"), "{text}");
    }

    #[test]
    fn debug_representation_is_never_empty() {
        let f = Function::new("empty_fn", vec![], None);
        let text = FunctionPrinter(&f).to_string();
        assert!(!text.is_empty());
        assert!(text.contains("func empty_fn"));
    }
}
