//! Property tests for the front-end: generated sources compile to verified
//! IR, the printer never panics, and the lexer is total on printable ASCII.

use bw_ir::frontend::{compile, lex, parse};
use bw_ir::ModulePrinter;
use proptest::prelude::*;

/// A tiny expression grammar rendered to source text.
fn expr_source() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (0i32..100).prop_map(|v| v.to_string()),
        Just("x".to_string()),
        Just("threadid()".to_string()),
        Just("numthreads()".to_string()),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (inner.clone(), prop_oneof![Just("+"), Just("*"), Just("-")], inner)
            .prop_map(|(a, op, b)| format!("({a} {op} {b})"))
    })
}

proptest! {
    /// The lexer is total: it either tokenizes or reports an error, but
    /// never panics, on arbitrary printable input.
    #[test]
    fn lexer_never_panics(input in "[ -~]{0,200}") {
        let _ = lex(&input);
    }

    /// The parser is total on arbitrary token-ish input.
    #[test]
    fn parser_never_panics(input in "[a-z0-9(){};=<>+*,: ]{0,200}") {
        let _ = parse(&input);
    }

    /// Generated single-function programs compile, verify, and print.
    #[test]
    fn generated_sources_compile_and_print(
        exprs in proptest::collection::vec(expr_source(), 1..5),
        bound in 1u8..20,
    ) {
        let mut body = String::new();
        for (i, e) in exprs.iter().enumerate() {
            body.push_str(&format!("        var y{i}: int = {e};\n"));
            body.push_str(&format!("        x = x + y{i};\n"));
        }
        let source = format!(
            r#"
            shared int lim = {bound};
            @spmd func slave() {{
                var x: int = 0;
                for (var i: int = 0; i < lim; i = i + 1) {{
{body}
                    if (x > 50) {{ x = x / 2; }}
                }}
                output(x);
            }}
            "#,
        );
        let module = compile(&source).expect("generated source compiles");
        // The printer must produce non-empty output for every function.
        let printed = ModulePrinter(&module).to_string();
        prop_assert!(printed.contains("func slave"));
        // And the module must re-verify (compile already verified; this
        // guards against printer-side mutation bugs).
        prop_assert!(bw_ir::verify_module(&module).is_ok());
    }

    /// Compiling is deterministic: same source, same IR.
    #[test]
    fn compilation_is_deterministic(bound in 1u8..20) {
        let source = format!(
            r#"
            shared int n = {bound};
            @spmd func f() {{
                var acc: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {{
                    if (i % 2 == 0) {{ acc = acc + i; }} else {{ acc = acc - 1; }}
                }}
                output(acc);
            }}
            "#,
        );
        let a = compile(&source).expect("compiles");
        let b = compile(&source).expect("compiles");
        prop_assert_eq!(
            ModulePrinter(&a).to_string(),
            ModulePrinter(&b).to_string()
        );
    }
}
