//! Developer tool: category histograms and clean-run statistics for all
//! seven benchmark ports at several thread counts.
//!
//! Usage: `cargo run --release -p bw-splash --example inspect`

use bw_analysis::ModuleAnalysis;
use bw_splash::{Benchmark, Size};
use bw_vm::{run_sim, ProgramImage, RunOutcome, SimConfig};

fn main() {
    for bench in Benchmark::ALL {
        let module = bench.module(Size::Test).expect("port compiles");
        let analysis = ModuleAnalysis::run(&module);
        let h = analysis.category_histogram();
        let t = h.total() as f64;
        println!(
            "{:22} total {:3} | shared {:2} ({:4.0}%) tid {:2} ({:4.0}%) partial {:2} ({:4.0}%) none {:2} ({:4.0}%) | iters {}",
            bench.name(),
            h.total(),
            h.shared,
            100.0 * h.shared as f64 / t,
            h.thread_id,
            100.0 * h.thread_id as f64 / t,
            h.partial,
            100.0 * h.partial as f64 / t,
            h.none,
            100.0 * h.none as f64 / t,
            analysis.iterations,
        );
        let image = ProgramImage::prepare_default(bench.module(Size::Test).expect("compiles"));
        for n in [1u32, 2, 4, 8] {
            let r = run_sim(&image, &SimConfig::new(n));
            let status = match r.outcome {
                RunOutcome::Completed => "ok",
                _ => "BAD",
            };
            print!(
                "  n={n}: {status} steps={} cyc={} ev={} viol={}",
                r.total_steps,
                r.parallel_cycles,
                r.events_sent,
                r.violations.len()
            );
            if !r.violations.is_empty() {
                print!(" FP! {:?}", &r.violations[..r.violations.len().min(2)]);
            }
            println!();
        }
    }
}
