//! Developer tool: dump the per-branch similarity classification of one
//! benchmark port.
//!
//! Usage: `cargo run -p bw-splash --example cats [name-substring]`

use bw_analysis::{ConditionInfo, ModuleAnalysis};
use bw_splash::{Benchmark, Size};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "radix".into());
    let bench = Benchmark::ALL
        .iter()
        .find(|b| b.name().to_lowercase().contains(&which.to_lowercase()))
        .copied()
        .unwrap_or(Benchmark::Radix);
    println!("{}:", bench.name());
    let module = bench.module(Size::Test).expect("port compiles");
    let analysis = ModuleAnalysis::run(&module);
    for b in analysis.parallel_branches() {
        let f = module.func(b.func);
        let info = ConditionInfo::extract(f, b.cond);
        println!(
            "{:10} func {:14} block {:4} depth {} cmp {:?}",
            b.category.to_string(),
            f.name,
            b.block.to_string(),
            b.loop_depth,
            info.cmp.map(|(op, ..)| op),
        );
    }
}
