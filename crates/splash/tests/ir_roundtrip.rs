//! Textual round-trip coverage over every shipped benchmark: printing a
//! module and re-parsing the text must reproduce a structurally equal module.
//! This is the guarantee that makes fuzzer-emitted `.bwir` repro files
//! loadable — if any construct a real benchmark uses failed to round-trip,
//! generated programs built from the same IR vocabulary could not be saved.

use bw_ir::{parse_module, verify_module, ModulePrinter};
use bw_splash::{Benchmark, Size};

fn assert_roundtrip(bench: Benchmark, size: Size) {
    let module = bench.module(size).expect("benchmark compiles");
    let text = ModulePrinter(&module).to_string();
    let parsed = parse_module(&text)
        .unwrap_or_else(|e| panic!("{} ({size:?}) failed to re-parse: {e}", bench.name()));
    assert_eq!(parsed, module, "{} ({size:?}) round-trip mismatch", bench.name());
    verify_module(&parsed)
        .unwrap_or_else(|e| panic!("{} ({size:?}) re-parse fails verify: {e}", bench.name()));
    // Printing the parsed module reproduces the exact same text.
    assert_eq!(ModulePrinter(&parsed).to_string(), text);
}

#[test]
fn every_benchmark_roundtrips_at_test_size() {
    for bench in Benchmark::ALL {
        assert_roundtrip(bench, Size::Test);
    }
}

#[test]
fn every_benchmark_roundtrips_at_small_size() {
    for bench in Benchmark::ALL {
        assert_roundtrip(bench, Size::Small);
    }
}
