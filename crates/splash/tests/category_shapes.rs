//! Regression net for the ports' similarity-category mixes: each port must
//! keep the qualitative Table V shape the paper reports for its original.
//! (Exact counts may drift when ports are edited; these bounds are the
//! properties the evaluation depends on.)

use bw_analysis::ModuleAnalysis;
use bw_splash::{Benchmark, Size};

fn fractions(bench: Benchmark) -> (f64, f64, f64, f64) {
    let module = bench.module(Size::Reference).expect("port compiles");
    let h = ModuleAnalysis::run(&module).category_histogram();
    let t = h.total().max(1) as f64;
    (
        h.shared as f64 / t,
        h.thread_id as f64 / t,
        h.partial as f64 / t,
        h.none as f64 / t,
    )
}

#[test]
fn ocean_contig_is_partial_dominated() {
    let (_, _, partial, none) = fractions(Benchmark::OceanContig);
    assert!(partial >= 0.7, "paper: 92% partial; got {partial}");
    assert!(none <= 0.1, "paper: 2.5% none; got {none}");
}

#[test]
fn ocean_noncontig_has_the_most_threadid() {
    let (_, tid_nc, partial, _) = fractions(Benchmark::OceanNoncontig);
    assert!(tid_nc >= 0.2, "paper: 24% threadID; got {tid_nc}");
    assert!(partial >= 0.4, "paper: 69% partial; got {partial}");
    for other in [Benchmark::OceanContig, Benchmark::Fmm, Benchmark::WaterNsquared] {
        let (_, tid_other, _, _) = fractions(other);
        assert!(tid_nc > tid_other, "{}: {tid_other} >= {tid_nc}", other.name());
    }
}

#[test]
fn fmm_and_raytrace_are_none_heaviest() {
    let (_, _, _, fmm_none) = fractions(Benchmark::Fmm);
    let (_, _, _, ray_none) = fractions(Benchmark::Raytrace);
    assert!(fmm_none >= 0.4, "paper: 51% none; got {fmm_none}");
    assert!(ray_none >= 0.3, "paper: 50% none; got {ray_none}");
    let max_other = [
        Benchmark::OceanContig,
        Benchmark::Fft,
        Benchmark::OceanNoncontig,
        Benchmark::Radix,
    ]
    .into_iter()
    .map(|b| fractions(b).3)
    .fold(0.0f64, f64::max);
    assert!(fmm_none > max_other && ray_none > max_other);
}

#[test]
fn fft_and_radix_are_balanced_with_strong_shared() {
    for bench in [Benchmark::Fft, Benchmark::Radix] {
        let (shared, tid, _, _) = fractions(bench);
        assert!(shared >= 0.2, "{}: paper ~31% shared; got {shared}", bench.name());
        assert!(tid >= 0.15, "{}: paper ~25% threadID; got {tid}", bench.name());
    }
}

#[test]
fn every_port_is_at_least_half_similar_except_fmm() {
    // Paper: 49–98% similar; FMM is the minimum at 48.9%.
    for bench in Benchmark::ALL {
        let (shared, tid, partial, _) = fractions(bench);
        let similar = shared + tid + partial;
        let floor = if bench == Benchmark::Fmm { 0.45 } else { 0.5 };
        assert!(similar >= floor, "{}: similar {similar}", bench.name());
    }
}

#[test]
fn raytrace_has_deep_loops_beyond_the_cutoff() {
    let module = Benchmark::Raytrace.module(Size::Test).expect("compiles");
    let analysis = ModuleAnalysis::run(&module);
    let deepest = analysis.branches.iter().map(|b| b.loop_depth).max().unwrap();
    assert!(deepest >= 6, "raytrace must exercise the nesting cutoff; deepest {deepest}");
}

#[test]
fn table_iv_sanity() {
    for bench in Benchmark::ALL {
        let module = bench.module(Size::Small).expect("compiles");
        let analysis = ModuleAnalysis::run(&module);
        let parallel = analysis.parallel_branches().count();
        assert!(parallel >= 10, "{}: {parallel} parallel branches", bench.name());
        assert!(module.num_branches() >= parallel);
    }
}
