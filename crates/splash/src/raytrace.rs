//! Port of SPLASH-2 **raytrace**.
//!
//! The original renders a scene by tracing rays through a spatial grid,
//! dispatching per-object intersection and shading code through *function
//! pointers*, inside loop nests well over six levels deep. Those two
//! features make it the paper's outlier: function pointers mean different
//! threads execute different functions (few cross-thread reporters), and
//! the loop-nesting cutoff leaves the deepest branches unchecked — its
//! coverage with BLOCKWATCH (~85 %) barely beats the unprotected program.
//! Statically, half its branches are `none` (intersection tests on scene
//! data) and most of the rest `partial` (tile tables, material indices).
//!
//! The port keeps the deep nest (tile → row → column → sample → bounce →
//! object → shadow = 7 loop levels), a shader function table indexed by
//! the hit object's type, and per-thread tile partitions.

use crate::size::Size;

/// Image dimension (square) per size.
fn image_dim(size: Size) -> u64 {
    match size {
        Size::Test => 8,
        Size::Small => 12,
        Size::Reference => 20,
    }
}

/// Number of scene objects.
const NOBJECTS: u64 = 6;

/// Returns the mini-language source of the port.
pub fn source(size: Size) -> String {
    let dim = image_dim(size);
    let pixels = dim * dim;
    format!(
        r#"
module raytrace;

shared int dim = {dim};
shared int nobjects = {NOBJECTS};
// Per-thread rendering options (antialiasing samples, bounce depth,
// shadow rays), as the original's per-process ray options structure.
shared int nsamples[33];
shared int nbounces[33];
shared int nshadow[33];
shared int tilebeg[33];
shared int tileend[33];
// Material table: read-only shader parameters per material id.
shared float matdiffuse[4];
shared float matspec[4];

// Scene arrays are rebuilt per frame by worker threads elsewhere in the
// original; they are not statically shared.
float objx[{NOBJECTS}];
float objy[{NOBJECTS}];
float objr[{NOBJECTS}];
int objtype[{NOBJECTS}];
int objmat[{NOBJECTS}];
int gridocc[16];
float image[{pixels}];

table shaders = {{ shade_flat, shade_phong, shade_mirror }};

barrier frame;

@init func setup() {{
    for (var p: int = 0; p < numthreads(); p = p + 1) {{
        tilebeg[p] = p * dim / numthreads();
        tileend[p] = (p + 1) * dim / numthreads();
        nsamples[p] = 2;
        nbounces[p] = 2;
        nshadow[p] = 2;
    }}
    matdiffuse[0] = 0.4; matdiffuse[1] = 0.6; matdiffuse[2] = 0.8; matdiffuse[3] = 0.2;
    matspec[0] = 0.1; matspec[1] = 0.3; matspec[2] = 0.7; matspec[3] = 0.9;
    for (var o: int = 0; o < nobjects; o = o + 1) {{
        objx[o] = float(rand(1000)) / 100.0;
        objy[o] = float(rand(1000)) / 100.0;
        objr[o] = 0.5 + float(rand(200)) / 100.0;
        objtype[o] = rand(3);
        objmat[o] = rand(4);
    }}
    for (var c: int = 0; c < 16; c = c + 1) {{
        gridocc[c] = rand(3);
    }}
}}

// Shaders share a signature: (object, intensity) -> contribution.
func shade_flat(obj: int, intensity: float) -> float {{
    var m: int = objmat[obj];
    return matdiffuse[m] * intensity;
}}

func shade_phong(obj: int, intensity: float) -> float {{
    var m: int = objmat[obj];
    var s: float = matspec[m];
    var d: float = matdiffuse[m];
    if (s > 0.5) {{
        return (d + s * s) * intensity;
    }}
    return d * intensity + s * 0.1;
}}

func shade_mirror(obj: int, intensity: float) -> float {{
    var m: int = objmat[obj];
    if (matspec[m] > 0.2) {{
        return matspec[m] * intensity * 0.9;
    }}
    return 0.05 * intensity;
}}

@spmd func slave() {{
    var procid: int = threadid();
    var tfirst: int = tilebeg[procid];
    var tlast: int = tileend[procid];
    var samples: int = nsamples[procid];
    var bounces: int = nbounces[procid];
    var shadows: int = nshadow[procid];

    // 7-deep loop nest: tile rows / rows / cols / samples / bounces /
    // objects / shadow rays.
    for (var tile: int = tfirst; tile < tlast; tile = tile + 1) {{
        for (var row: int = tile; row < tile + 1; row = row + 1) {{
            for (var col: int = 0; col < dim; col = col + 1) {{
                var pixel: float = 0.0;
                for (var s: int = 0; s < samples; s = s + 1) {{
                    var rx: float = float(col) + float(s) * 0.5;
                    var ry: float = float(row) + float(s) * 0.25;
                    var weight: float = 1.0;
                    for (var bounce: int = 0; bounce < bounces; bounce = bounce + 1) {{
                        // March the spatial grid to the first occupied cell
                        // (data-dependent: the paper's grid traversal).
                        var cell: int = int(rx + ry);
                        if (cell < 0) {{ cell = 0 - cell; }}
                        cell = cell % 16;
                        var marches: int = 0;
                        while (gridocc[cell] == 0) {{
                            cell = (cell + 1) % 16;
                            marches = marches + 1;
                            if (marches > 16) {{ break; }}
                        }}
                        if (gridocc[cell] > 1) {{
                            weight = weight * 0.95;
                        }}
                        var best: int = 0 - 1;
                        var bestd: float = 1000000.0;
                        for (var o: int = 0; o < nobjects; o = o + 1) {{
                            var dx: float = objx[o] - rx;
                            var dy: float = objy[o] - ry;
                            // Bounding tests before the exact hit test, as
                            // in the original's hierarchical intersection.
                            if (objr[o] > 0.1) {{
                                if (dx * dx < 64.0) {{
                                    var d2: float = dx * dx + dy * dy;
                                    if (d2 < objr[o] * objr[o] * 4.0) {{
                                        if (d2 < bestd) {{
                                            bestd = d2;
                                            best = o;
                                        }}
                                    }}
                                }}
                            }}
                        }}
                        if (best >= 0) {{
                            var lit: float = 1.0;
                            for (var sh: int = 0; sh < shadows; sh = sh + 1) {{
                                var ox: float = objx[best] + float(sh);
                                if (ox > rx) {{
                                    lit = lit - 0.2;
                                }}
                            }}
                            pixel = pixel + weight * shaders[objtype[best]](best, lit);
                            weight = weight * 0.5;
                            rx = objx[best] + 0.1;
                            ry = objy[best] - 0.1;
                        }} else {{
                            pixel = pixel + weight * 0.02;
                            weight = 0.0;
                        }}
                    }}
                }}
                image[row * dim + col] = pixel;
            }}
        }}
    }}
    barrier(frame);

    // Per-thread image checksum over owned rows.
    var sum: float = 0.0;
    for (var row: int = tfirst; row < tlast; row = row + 1) {{
        for (var col: int = 0; col < dim; col = col + 1) {{
            sum = sum + image[row * dim + col];
        }}
    }}
    output(int(sum));
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_for_all_sizes() {
        for size in [Size::Test, Size::Small, Size::Reference] {
            bw_ir::frontend::compile(&source(size)).expect("raytrace compiles");
        }
    }
}
