//! Port of SPLASH-2 **radix** (parallel radix sort).
//!
//! The original sorts integer keys digit by digit: per-thread histograms,
//! a logarithmic prefix-sum tree across threads, then a permutation pass.
//! The paper's mix is balanced: the digit and pass loops are `shared`
//! (31 %), the prefix tree is staged by thread ID (26 %), per-thread key
//! ranges give `partial` loops (20 %) and key-value tests give `none`
//! (23 %).

use crate::size::Size;

/// Number of keys.
fn keys(size: Size) -> u64 {
    match size {
        Size::Test => 128,
        Size::Small => 512,
        Size::Reference => 2048,
    }
}

/// Radix (digit base) and number of passes: keys are < radix^passes.
const RADIX: u64 = 16;
const PASSES: u64 = 3;

/// Returns the mini-language source of the port.
pub fn source(size: Size) -> String {
    let nkeys = keys(size);
    let hist_slots = 32 * RADIX;
    let max_key = RADIX.pow(PASSES as u32);
    format!(
        r#"
module radix;

shared int nkeys = {nkeys};
shared int radix = {RADIX};
shared int npasses = {PASSES};
shared int keybeg[33];
shared int keyend[33];
// Per-process digit-range descriptors (the original's rank_me arrays):
// all threads cover the full radix, but the bounds come from the tables.
shared int histbeg[33];
shared int histend[33];

int keys[{nkeys}];
int sorted[{nkeys}];
// hist[p * radix + d]: thread p's count of digit d in the current pass.
int hist[{hist_slots}];
int localhist[{hist_slots}];
int globalhist[{RADIX}];
int rankbase[{hist_slots}];
int smallcount[32];

barrier phase;

@init func setup() {{
    for (var p: int = 0; p < numthreads(); p = p + 1) {{
        keybeg[p] = p * nkeys / numthreads();
        keyend[p] = (p + 1) * nkeys / numthreads();
        histbeg[p] = 0;
        histend[p] = radix;
    }}
    for (var i: int = 0; i < nkeys; i = i + 1) {{
        keys[i] = rand({max_key});
    }}
}}

func digit_of(key: int, pass: int) -> int {{
    var d: int = key;
    for (var s: int = 0; s < pass; s = s + 1) {{
        d = d / radix;
    }}
    return d % radix;
}}

@spmd func slave() {{
    var procid: int = threadid();
    var first: int = keybeg[procid];
    // The per-thread chunk length is a shared value (nkeys/p), as in the
    // original's `for (i = key_start; i < key_start + num_keys/p; i++)`.
    var chunk: int = nkeys / numthreads();

    for (var pass: int = 0; pass < npasses; pass = pass + 1) {{
        // Clear own histogram (digit range from the per-process tables:
        // a partial-category loop, like the original's rank arrays).
        for (var d: int = histbeg[procid]; d < histend[procid]; d = d + 1) {{
            hist[procid * radix + d] = 0;
        }}
        // Count digits of own keys; also track small keys (data branch).
        var small: int = 0;
        for (var k: int = 0; k < chunk; k = k + 1) {{
            var i: int = first + k;
            var d: int = digit_of(keys[i], pass);
            hist[procid * radix + d] = hist[procid * radix + d] + 1;
            if (d < radix / 2) {{
                small = small + 1;
            }}
        }}
        smallcount[procid] = small;
        for (var d: int = histbeg[procid]; d < histend[procid]; d = d + 1) {{
            localhist[procid * radix + d] = hist[procid * radix + d];
        }}
        barrier(phase);

        // Logarithmic reduction tree over the per-thread histograms,
        // staged by thread ID (the SPLASH radix prefix phase).
        for (var stride: int = 1; stride < numthreads(); stride = stride * 2) {{
            if (procid % (stride * 2) == 0) {{
                if (procid + stride < numthreads()) {{
                    for (var d: int = 0; d < radix; d = d + 1) {{
                        hist[procid * radix + d] =
                            hist[procid * radix + d] + hist[(procid + stride) * radix + d];
                    }}
                }}
            }}
            barrier(phase);
        }}

        // Thread 0 turns the folded histogram into global offsets and
        // per-(thread, digit) rank bases from the original counts.
        if (procid == 0) {{
            var offset: int = 0;
            for (var d: int = 0; d < radix; d = d + 1) {{
                globalhist[d] = offset;
                offset = offset + hist[d];
            }}
        }}
        barrier(phase);
        if (procid == 0) {{
            for (var d: int = 0; d < radix; d = d + 1) {{
                var base: int = globalhist[d];
                for (var p: int = 0; p < numthreads(); p = p + 1) {{
                    rankbase[p * radix + d] = base;
                    base = base + localhist[p * radix + d];
                }}
            }}
        }}
        barrier(phase);

        // Permute own keys to their ranked positions.
        for (var k: int = 0; k < chunk; k = k + 1) {{
            var i: int = first + k;
            var d: int = digit_of(keys[i], pass);
            var dest: int = rankbase[procid * radix + d];
            rankbase[procid * radix + d] = dest + 1;
            sorted[dest] = keys[i];
        }}
        barrier(phase);

        // Copy back over the thread's range.
        for (var k: int = 0; k < chunk; k = k + 1) {{
            keys[first + k] = sorted[first + k];
        }}
        barrier(phase);
    }}

    // Verify local sortedness of the chunk (data branch) and checksum;
    // the verify pass walks the per-thread key range (partial bounds).
    var inversions: int = 0;
    var sum: int = 0;
    for (var i: int = first; i < keyend[procid]; i = i + 1) {{
        sum = sum + keys[i] * (i - first + 1);
        if (i > first) {{
            if (keys[i] < keys[i - 1]) {{
                inversions = inversions + 1;
            }}
        }}
    }}
    output(sum);
    output(inversions);
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_for_all_sizes() {
        for size in [Size::Test, Size::Small, Size::Reference] {
            bw_ir::frontend::compile(&source(size)).expect("radix compiles");
        }
    }
}
