//! Port of SPLASH-2 **FFT**.
//!
//! The original is a 1-D radix-2 complex FFT with staged butterflies and a
//! bit-reversal permutation; threads own contiguous chunks of the point
//! array and synchronize between stages. Its branch mix in the paper is
//! the most balanced of the suite (≈32 % shared, 25 % threadID, 41 %
//! partial): stage and bit loops have shared bounds, the data exchange and
//! scaling phases are gated by thread-ID tests, and the per-chunk loops
//! take their bounds from partition tables.

use crate::size::Size;

/// log2 of the number of points.
fn log_points(size: Size) -> u64 {
    match size {
        Size::Test => 7,
        Size::Small => 9,
        Size::Reference => 11,
    }
}

/// Returns the mini-language source of the port.
pub fn source(size: Size) -> String {
    let logn = log_points(size);
    let n = 1u64 << logn;
    format!(
        r#"
module fft;

shared int npoints = {n};
shared int logn = {logn};
shared int chunkbeg[33];
shared int chunkend[33];
// Twiddle factors are computed once and read-only afterwards.
shared float twre[{n}];
shared float twim[{n}];

float re[{n}];
float im[{n}];
float scratch_re[{n}];
float scratch_im[{n}];

barrier stage_sync;

@init func setup() {{
    for (var p: int = 0; p < numthreads(); p = p + 1) {{
        chunkbeg[p] = p * npoints / numthreads();
        chunkend[p] = (p + 1) * npoints / numthreads();
    }}
    for (var i: int = 0; i < npoints; i = i + 1) {{
        re[i] = float(rand(2000)) / 1000.0 - 1.0;
        im[i] = float(rand(2000)) / 1000.0 - 1.0;
        // A crude cosine/sine table via a quadratic approximation keeps the
        // arithmetic structure without a trig intrinsic.
        var x: float = float(i) / float(npoints);
        twre[i] = 1.0 - 4.0 * x * (1.0 - x);
        twim[i] = 4.0 * x * (1.0 - x) - 2.0 * x;
    }}
}}

// Reverses the low `logn` bits of `v` (shared-bound bit loop).
func bitrev(v: int) -> int {{
    var r: int = 0;
    var x: int = v;
    for (var b: int = 0; b < logn; b = b + 1) {{
        r = r * 2 + x % 2;
        x = x / 2;
    }}
    return r;
}}

@spmd func slave() {{
    var procid: int = threadid();
    var first: int = chunkbeg[procid];
    var last: int = chunkend[procid];

    // Phase 1: bit-reversal permutation of the chunk into scratch.
    for (var i: int = first; i < last; i = i + 1) {{
        var r: int = bitrev(i);
        scratch_re[r] = re[i];
        scratch_im[r] = im[i];
    }}
    barrier(stage_sync);
    for (var i: int = first; i < last; i = i + 1) {{
        re[i] = scratch_re[i];
        im[i] = scratch_im[i];
    }}
    barrier(stage_sync);

    // Phase 2: staged butterflies (the stage loop bound is shared).
    for (var stage: int = 0; stage < logn; stage = stage + 1) {{
        var span: int = 1 << stage;
        for (var k: int = first; k < last; k = k + 1) {{
            // Each pair is processed by the owner of its lower element.
            if (k % (span * 2) < span) {{
                var mate: int = k + span;
                var tw: int = (k % span) * (npoints / (span * 2));
                var wr: float = twre[tw];
                var wi: float = twim[tw];
                var tr: float = wr * re[mate] - wi * im[mate];
                var ti: float = wr * im[mate] + wi * re[mate];
                re[mate] = re[k] - tr;
                im[mate] = im[k] - ti;
                re[k] = re[k] + tr;
                im[k] = im[k] + ti;
            }}
        }}
        barrier(stage_sync);
    }}

    // Phase 3: inter-thread exchange, staged by thread ID.
    var half: int = numthreads() / 2;
    if (procid < half) {{
        for (var i: int = first; i < last; i = i + 1) {{
            scratch_re[i] = re[i] + im[i];
        }}
    }}
    barrier(stage_sync);
    if (procid >= half) {{
        for (var i: int = first; i < last; i = i + 1) {{
            scratch_re[i] = re[i] - im[i];
        }}
    }}
    barrier(stage_sync);

    // Phase 4: the leader normalizes the spectrum; the last thread
    // handles the DC tail (both threadID-gated).
    if (procid == 0) {{
        for (var i: int = 0; i < npoints; i = i + 1) {{
            re[i] = re[i] / float(npoints);
            im[i] = im[i] / float(npoints);
        }}
    }}
    if (procid == numthreads() - 1) {{
        im[0] = 0.0;
    }}
    barrier(stage_sync);

    // Every thread validates the twiddle table (shared-bound scan; the
    // original re-checks its trig tables in the same way).
    var bad: int = 0;
    for (var i: int = 0; i < npoints; i = i + 1) {{
        if (twre[i] > 1.0) {{
            bad = bad + 1;
        }}
    }}
    if (bad > 0) {{
        trap;
    }}

    // Chunk checksum, quantized like the original's fixed-precision print.
    var sum: float = 0.0;
    for (var i: int = first; i < last; i = i + 1) {{
        sum = sum + re[i] * re[i] + im[i] * im[i];
    }}
    output(int(sum * 100.0));
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_for_all_sizes() {
        for size in [Size::Test, Size::Small, Size::Reference] {
            bw_ir::frontend::compile(&source(size)).expect("fft compiles");
        }
    }
}
