//! Port of SPLASH-2 **ocean (contiguous partitions)**.
//!
//! The original simulates large-scale ocean movements with a red-black
//! Gauss-Seidel multigrid solver; threads own contiguous blocks of the
//! grid described by per-process partition descriptors computed once at
//! startup. Nearly every branch — row loops, column loops, red/black
//! masks, boundary tests — draws its bounds from those descriptors, which
//! is why the paper finds 92 % of the branches in the `partial` category:
//! the bounds are "one of a small set of shared values" selected by
//! thread ID.
//!
//! The port keeps exactly that structure: shared read-only partition
//! tables (`rowbeg`/`rowend`/`colbeg`/`colend`), a shared timestep loop, a
//! `threadID`-gated progress report, red-black sweeps, boundary handling,
//! and a single data-dependent residual branch (`none`), with barriers
//! between phases.

use crate::size::Size;

/// Grid dimension per size.
fn grid_dim(size: Size) -> u64 {
    match size {
        Size::Test => 18,
        Size::Small => 34,
        Size::Reference => 66,
    }
}

/// Timesteps per size.
fn timesteps(size: Size) -> u64 {
    2 * size.scale()
}

/// Returns the mini-language source of the port.
pub fn source(size: Size) -> String {
    let n = grid_dim(size);
    let steps = timesteps(size);
    let cells = n * n;
    format!(
        r#"
module ocean_contig;

// Read-only after init: per-thread partition descriptors and parameters.
shared int rowbeg[33];
shared int rowend[33];
shared int colbeg[33];
shared int colend[33];
shared int nsteps = {steps};
shared int dim = {n};
shared float tol = 0.001;

// The working grids are written concurrently (not `shared`).
float grid[{cells}];
float work[{cells}];
float localdiff[32];

barrier phase;
mutex reduction;
float globaldiff = 0.0;

@init func setup() {{
    var interior: int = dim - 2;
    for (var p: int = 0; p < numthreads(); p = p + 1) {{
        rowbeg[p] = 1 + p * interior / numthreads();
        rowend[p] = 1 + (p + 1) * interior / numthreads();
        colbeg[p] = 1;
        colend[p] = dim - 1;
    }}
    for (var i: int = 0; i < dim * dim; i = i + 1) {{
        grid[i] = float(rand(1000)) / 100.0;
        work[i] = 0.0;
    }}
}}

@spmd func slave() {{
    var procid: int = threadid();
    var rfirst: int = rowbeg[procid];
    var rlast: int = rowend[procid];
    var cfirst: int = colbeg[procid];
    var clast: int = colend[procid];

    for (var step: int = 0; step < nsteps; step = step + 1) {{
        // Red sweep over this thread's block.
        for (var i: int = rfirst; i < rlast; i = i + 1) {{
            for (var j: int = cfirst; j < clast; j = j + 1) {{
                if ((i + j) % 2 == 0) {{
                    relax(i, j);
                }}
            }}
        }}
        barrier(phase);

        // Black sweep.
        for (var i: int = rfirst; i < rlast; i = i + 1) {{
            for (var j: int = cfirst; j < clast; j = j + 1) {{
                if ((i + j) % 2 == 1) {{
                    relax(i, j);
                }}
            }}
        }}
        barrier(phase);

        // Boundary rows: the bands owning the edges replicate them.
        if (rfirst == rowbeg[0]) {{
            for (var j: int = cfirst - 1; j < clast + 1; j = j + 1) {{
                grid[j] = grid[dim + j];
            }}
        }}
        if (rlast == rowend[numthreads() - 1]) {{
            for (var j: int = cfirst - 1; j < clast + 1; j = j + 1) {{
                grid[(dim - 1) * dim + j] = grid[(dim - 2) * dim + j];
            }}
        }}
        barrier(phase);

        // Residual over the block (data-dependent branch: `none`).
        var diff: float = 0.0;
        for (var i: int = rfirst; i < rlast; i = i + 1) {{
            for (var j: int = cfirst; j < clast; j = j + 1) {{
                var d: float = grid[i * dim + j] - work[i * dim + j];
                diff = diff + abs(d);
            }}
        }}
        localdiff[procid] = diff;
        if (diff > tol) {{
            lock(reduction);
            globaldiff = globaldiff + diff;
            unlock(reduction);
        }}
        barrier(phase);
    }}

    // The leader logs the final residual (threadID branch; quantized as
    // the original's %d-style report).
    if (procid == 0) {{
        output(int(globaldiff / 100.0));
    }}

    // The original prints solver statistics, not the grid: report the
    // final per-thread residual (quantized like a %d print).
    output(int(localdiff[procid] / 100.0));
}}

func relax(i: int, j: int) {{
    var idx: int = i * dim + j;
    var up: float = grid[idx - dim];
    var down: float = grid[idx + dim];
    var left: float = grid[idx - 1];
    var right: float = grid[idx + 1];
    work[idx] = grid[idx];
    grid[idx] = (up + down + left + right) / 4.0;
}}

@fini func report() {{
    output(int(globaldiff / 100.0));
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_for_all_sizes() {
        for size in [Size::Test, Size::Small, Size::Reference] {
            bw_ir::frontend::compile(&source(size)).expect("ocean_contig compiles");
        }
    }
}
