//! Problem sizes for the benchmark ports.

use serde::{Deserialize, Serialize};

/// Problem-size presets. The SPLASH-2 suite ships "default" inputs sized
/// for real machines; the interpreter needs smaller ones. All presets keep
/// the same control structure — only trip counts and array sizes change —
/// so the similarity-category statistics (Table V) are size-independent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Size {
    /// Tiny: unit tests (sub-second campaigns).
    Test,
    /// Small: fault-injection campaigns (hundreds of runs).
    Small,
    /// Reference: performance sweeps (one run per configuration).
    Reference,
}

impl Size {
    /// A generic linear scale factor: 1, 2, 4.
    pub fn scale(self) -> u64 {
        match self {
            Size::Test => 1,
            Size::Small => 2,
            Size::Reference => 4,
        }
    }
}

/// Maximum thread count every port supports (the paper's machine width).
pub const MAX_THREADS: u64 = 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_ordered() {
        assert!(Size::Test.scale() < Size::Small.scale());
        assert!(Size::Small.scale() < Size::Reference.scale());
    }
}
