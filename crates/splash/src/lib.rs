//! # bw-splash — SPLASH-2 kernel ports for BLOCKWATCH
//!
//! SPMD ports of the seven SPLASH-2 programs the paper evaluates
//! (Table IV), written in the [`bw_ir::frontend`] mini language. The ports
//! are *structural kernels*, not line-by-line translations: BLOCKWATCH
//! observes branch conditions and outcomes per thread, so what each port
//! preserves is the original's control-flow profile — which loops have
//! shared bounds, which phases are gated on the thread ID, which decisions
//! read per-thread partition tables, and which are data-dependent — so the
//! similarity-category mix (Table V) and the fault-coverage behaviour
//! (Figures 8–9) carry over.
//!
//! | Port | Dominant categories (paper) | Structural signature |
//! |------|------------------------------|----------------------|
//! | [`ocean_contig`] | 92 % partial | partition-table bounds everywhere |
//! | [`fft`] | balanced | shared stage loops + tid-staged phases |
//! | [`fmm`] | 51 % none | data-dependent multipole acceptance |
//! | [`ocean_noncontig`] | 24 % threadID | tid-keyed boundary/exchange phases |
//! | [`radix`] | balanced | shared digit loops, tid-staged prefix |
//! | [`raytrace`] | 51 % none, deep nests | function-pointer shaders, 7-deep loops |
//! | [`water`] | 33 % shared | whole-set pair loops, cutoff tests |
//!
//! # Examples
//!
//! ```
//! use bw_splash::{Benchmark, Size};
//!
//! let bench = Benchmark::Fft;
//! let module = bench.module(Size::Test)?;
//! assert_eq!(module.name, "fft");
//! # Ok::<(), bw_ir::frontend::FrontendError>(())
//! ```

#![warn(missing_docs)]

pub mod fft;
pub mod fmm;
pub mod ocean_contig;
pub mod ocean_noncontig;
pub mod radix;
pub mod raytrace;
mod size;
pub mod water;

pub use size::{Size, MAX_THREADS};

use bw_ir::frontend::FrontendError;
use bw_ir::Module;
use serde::{Deserialize, Serialize};

/// The seven benchmark programs of the paper's evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Benchmark {
    /// ocean, contiguous partitions.
    OceanContig,
    /// FFT.
    Fft,
    /// FMM.
    Fmm,
    /// ocean, non-contiguous partitions.
    OceanNoncontig,
    /// radix sort.
    Radix,
    /// raytrace.
    Raytrace,
    /// water-nsquared.
    WaterNsquared,
}

impl Benchmark {
    /// All seven, in the paper's Table IV order.
    pub const ALL: [Benchmark; 7] = [
        Benchmark::OceanContig,
        Benchmark::Fft,
        Benchmark::Fmm,
        Benchmark::OceanNoncontig,
        Benchmark::Radix,
        Benchmark::Raytrace,
        Benchmark::WaterNsquared,
    ];

    /// The paper's name for the program.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::OceanContig => "continuous ocean",
            Benchmark::Fft => "FFT",
            Benchmark::Fmm => "FMM",
            Benchmark::OceanNoncontig => "noncontinuous ocean",
            Benchmark::Radix => "radix",
            Benchmark::Raytrace => "raytrace",
            Benchmark::WaterNsquared => "water-nsquared",
        }
    }

    /// Mini-language source of the port at the given size.
    pub fn source(self, size: Size) -> String {
        match self {
            Benchmark::OceanContig => ocean_contig::source(size),
            Benchmark::Fft => fft::source(size),
            Benchmark::Fmm => fmm::source(size),
            Benchmark::OceanNoncontig => ocean_noncontig::source(size),
            Benchmark::Radix => radix::source(size),
            Benchmark::Raytrace => raytrace::source(size),
            Benchmark::WaterNsquared => water::source(size),
        }
    }

    /// Compiles the port to a verified IR module.
    ///
    /// # Errors
    ///
    /// Returns the front-end error if the (generated) source fails to
    /// compile — which would be a bug in this crate.
    pub fn module(self, size: Size) -> Result<Module, FrontendError> {
        bw_ir::frontend::compile(&self.source(size))
    }
}
