//! Port of SPLASH-2 **water-nsquared** (molecular dynamics, O(n²) pairs).
//!
//! The original simulates liquid water with an O(n²) pairwise force
//! computation, a predictor-corrector integrator and periodic energy
//! reductions. The paper's mix: `shared` 33 % (timestep, dimension and
//! whole-set pair loops), `threadID` 12 % (reduction / leader phases),
//! `partial` 25 % (per-thread molecule ranges), `none` 30 % (cutoff tests
//! on coordinates).

use crate::size::Size;

/// Number of molecules.
fn molecules(size: Size) -> u64 {
    match size {
        Size::Test => 32,
        Size::Small => 96,
        Size::Reference => 288,
    }
}

/// Returns the mini-language source of the port.
pub fn source(size: Size) -> String {
    let nmol = molecules(size);
    let steps = size.scale();
    format!(
        r#"
module water_nsquared;

shared int nmol = {nmol};
shared int nsteps = {steps};
shared int ndims = 3;
shared int molbeg[33];
shared int molend[33];
shared float boxsize = 10.0;
shared float cutoff2 = 6.25;
shared float dt = 0.002;

// pos[m * 3 + d], concurrently updated.
float pos[{pos_len}];
float vel[{pos_len}];
float force[{pos_len}];
float kinetic[32];

barrier phase;
mutex energy_lock;
float potential = 0.0;

@init func setup() {{
    for (var p: int = 0; p < numthreads(); p = p + 1) {{
        molbeg[p] = p * nmol / numthreads();
        molend[p] = (p + 1) * nmol / numthreads();
    }}
    for (var i: int = 0; i < nmol * 3; i = i + 1) {{
        pos[i] = float(rand(1000)) / 100.0;
        vel[i] = float(rand(200)) / 1000.0 - 0.1;
        force[i] = 0.0;
    }}
}}

// Minimum-image displacement along one axis (data-dependent folding).
func minimg(d: float) -> float {{
    var r: float = d;
    if (r > boxsize / 2.0) {{ r = r - boxsize; }}
    if (r < 0.0 - boxsize / 2.0) {{ r = r + boxsize; }}
    return r;
}}

@spmd func slave() {{
    var procid: int = threadid();
    var first: int = molbeg[procid];
    var last: int = molend[procid];

    for (var step: int = 0; step < nsteps; step = step + 1) {{
        // Predictor: advance own molecules along all dimensions.
        for (var m: int = first; m < last; m = m + 1) {{
            for (var d: int = 0; d < ndims; d = d + 1) {{
                pos[m * 3 + d] = pos[m * 3 + d] + vel[m * 3 + d] * dt;
                force[m * 3 + d] = 0.0;
            }}
        }}
        barrier(phase);

        // O(n²) pair forces: own molecules against the whole set. The
        // inner loop bound is shared; the cutoff test is data-dependent.
        var pot: float = 0.0;
        for (var m: int = first; m < last; m = m + 1) {{
            for (var j: int = 0; j < nmol; j = j + 1) {{
                if (j != m) {{
                    var dx: float = minimg(pos[j * 3] - pos[m * 3]);
                    var dy: float = minimg(pos[j * 3 + 1] - pos[m * 3 + 1]);
                    var dz: float = minimg(pos[j * 3 + 2] - pos[m * 3 + 2]);
                    var r2: float = dx * dx + dy * dy + dz * dz;
                    if (r2 < cutoff2) {{
                        var inv: float = 1.0 / (r2 + 0.01);
                        var lj: float = inv * inv * inv - inv * inv;
                        force[m * 3] = force[m * 3] + lj * dx;
                        force[m * 3 + 1] = force[m * 3 + 1] + lj * dy;
                        force[m * 3 + 2] = force[m * 3 + 2] + lj * dz;
                        pot = pot + lj;
                    }}
                }}
            }}
        }}
        lock(energy_lock);
        potential = potential + pot;
        unlock(energy_lock);
        barrier(phase);

        // Corrector: integrate forces; wrap positions (data-dependent).
        var kin: float = 0.0;
        for (var m: int = first; m < last; m = m + 1) {{
            for (var d: int = 0; d < ndims; d = d + 1) {{
                vel[m * 3 + d] = vel[m * 3 + d] + force[m * 3 + d] * dt;
                pos[m * 3 + d] = pos[m * 3 + d] + vel[m * 3 + d] * dt;
                if (pos[m * 3 + d] < 0.0) {{
                    pos[m * 3 + d] = pos[m * 3 + d] + boxsize;
                }}
                if (pos[m * 3 + d] > boxsize) {{
                    pos[m * 3 + d] = pos[m * 3 + d] - boxsize;
                }}
                kin = kin + vel[m * 3 + d] * vel[m * 3 + d];
            }}
        }}
        kinetic[procid] = kin;
        barrier(phase);

        // The leader folds the kinetic energies (threadID phase).
        if (procid == 0) {{
            var total: float = 0.0;
            for (var p: int = 0; p < numthreads(); p = p + 1) {{
                total = total + kinetic[p];
            }}
            output(int(total * 100.0));
        }}
        barrier(phase);
    }}

    // Chunk checksum.
    var sum: float = 0.0;
    for (var m: int = first; m < last; m = m + 1) {{
        sum = sum + pos[m * 3] + pos[m * 3 + 1] + pos[m * 3 + 2];
    }}
    output(int(sum * 10.0));
}}

@fini func report() {{
    output(int(potential * 10.0));
}}
"#,
        pos_len = nmol * 3,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_for_all_sizes() {
        for size in [Size::Test, Size::Small, Size::Reference] {
            bw_ir::frontend::compile(&source(size)).expect("water compiles");
        }
    }
}
