//! Port of SPLASH-2 **ocean (non-contiguous partitions)**.
//!
//! The non-contiguous variant of ocean partitions the grid through arrays
//! of row pointers rather than contiguous blocks, and does substantially
//! more explicit neighbour/boundary coordination keyed on the thread ID —
//! the paper measures 24 % `threadID` branches (vs. 2 % for the contiguous
//! version) with the bulk (69 %) still `partial` from partition-table
//! bounds.
//!
//! The port mirrors that: interleaved row ownership (`rows p, p+n, p+2n, …`
//! via per-thread row lists), several thread-ID-gated exchange and
//! boundary phases, and partition-table-driven loops everywhere else.

use crate::size::Size;

/// Grid dimension per size.
fn grid_dim(size: Size) -> u64 {
    match size {
        Size::Test => 18,
        Size::Small => 34,
        Size::Reference => 66,
    }
}

/// Returns the mini-language source of the port.
pub fn source(size: Size) -> String {
    let n = grid_dim(size);
    let steps = 2 * size.scale();
    let cells = n * n;
    format!(
        r#"
module ocean_noncontig;

shared int dim = {n};
shared int nsteps = {steps};
// Row list: rowlist[p * dim + k] is the k-th row owned by thread p;
// rowcount[p] is how many rows p owns. Read-only after init.
shared int rowlist[{cells}];
shared int rowcount[33];
shared int colbeg[33];
shared int colend[33];
shared float tol = 0.001;

float grid[{cells}];
float work[{cells}];
float rowsum[{n}];
float diffs[32];

barrier phase;
mutex reduction;
float globaldiff = 0.0;

@init func setup() {{
    // Interleaved ownership: thread p owns rows p+1, p+1+n, p+1+2n, …
    for (var p: int = 0; p < numthreads(); p = p + 1) {{
        var count: int = 0;
        for (var r: int = 1 + p; r < dim - 1; r = r + numthreads()) {{
            rowlist[p * dim + count] = r;
            count = count + 1;
        }}
        rowcount[p] = count;
        colbeg[p] = 1;
        colend[p] = dim - 1;
    }}
    for (var i: int = 0; i < dim * dim; i = i + 1) {{
        grid[i] = float(rand(1000)) / 100.0;
        work[i] = 0.0;
    }}
}}

@spmd func slave() {{
    var procid: int = threadid();
    var nrows: int = rowcount[procid];
    var cfirst: int = colbeg[procid];
    var clast: int = colend[procid];

    for (var step: int = 0; step < nsteps; step = step + 1) {{
        // Even-ID threads relax first, then odd (threadID-staged, avoids
        // adjacent-row races under interleaved ownership).
        if (procid % 2 == 0) {{
            sweep(procid, nrows, cfirst, clast);
        }}
        barrier(phase);
        if (procid % 2 == 1) {{
            sweep(procid, nrows, cfirst, clast);
        }}
        barrier(phase);

        // Boundary handling is keyed on thread identity.
        if (procid == 0) {{
            for (var j: int = 0; j < dim; j = j + 1) {{
                grid[j] = grid[dim + j];
            }}
        }}
        if (procid == numthreads() - 1) {{
            for (var j: int = 0; j < dim; j = j + 1) {{
                grid[(dim - 1) * dim + j] = grid[(dim - 2) * dim + j];
            }}
        }}
        // The lower half of the threads publishes row sums for the upper
        // half (a staged exchange, threadID).
        var half: int = numthreads() / 2;
        if (procid < half) {{
            for (var k: int = 0; k < nrows; k = k + 1) {{
                var r: int = rowlist[procid * dim + k];
                var s: float = 0.0;
                for (var j: int = cfirst; j < clast; j = j + 1) {{
                    s = s + grid[r * dim + j];
                }}
                rowsum[r] = s;
            }}
        }}
        barrier(phase);
        if (procid >= half) {{
            var acc: float = 0.0;
            for (var k: int = 0; k < nrows; k = k + 1) {{
                var r: int = rowlist[procid * dim + k];
                if (r > 1) {{
                    acc = acc + rowsum[r - 1];
                }}
            }}
            work[procid] = acc;
        }}
        barrier(phase);

        // Residual on owned rows (data-dependent: none).
        var diff: float = 0.0;
        for (var k: int = 0; k < nrows; k = k + 1) {{
            var r: int = rowlist[procid * dim + k];
            for (var j: int = cfirst; j < clast; j = j + 1) {{
                diff = diff + abs(grid[r * dim + j] - work[r * dim + j]);
            }}
        }}
        diffs[procid] = diff;
        if (diff > tol) {{
            lock(reduction);
            globaldiff = globaldiff + diff;
            unlock(reduction);
        }}
        barrier(phase);
    }}

    // The original prints solver statistics, not the grid: report the
    // final per-thread residual (quantized like a %d print).
    output(int(diffs[procid] / 100.0));
}}

func sweep(procid: int, nrows: int, cfirst: int, clast: int) {{
    for (var k: int = 0; k < nrows; k = k + 1) {{
        var r: int = rowlist[procid * dim + k];
        for (var j: int = cfirst; j < clast; j = j + 1) {{
            var idx: int = r * dim + j;
            work[idx] = grid[idx];
            grid[idx] = (grid[idx - dim] + grid[idx + dim]
                + grid[idx - 1] + grid[idx + 1]) / 4.0;
        }}
    }}
}}

@fini func report() {{
    output(int(globaldiff / 100.0));
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_for_all_sizes() {
        for size in [Size::Test, Size::Small, Size::Reference] {
            bw_ir::frontend::compile(&source(size)).expect("ocean_noncontig compiles");
        }
    }
}
