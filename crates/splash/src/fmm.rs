//! Port of SPLASH-2 **FMM** (fast multipole method).
//!
//! The original computes N-body interactions through an adaptive tree of
//! cells with multipole expansions. Its control flow is dominated by
//! *data-dependent* decisions — cell occupancy tests, well-separatedness
//! (multipole acceptance) criteria on particle coordinates — which the
//! static analysis cannot relate across threads: the paper classifies 51 %
//! of FMM's branches as `none`, the highest of the suite, with most of the
//! rest `partial` (per-thread body ranges) and some `shared` (term loops).
//!
//! The port is a flat-grid multipole variant preserving those proportions:
//! body coordinates and cell summaries live in concurrently-written arrays
//! (loads from them are `none`), body ranges come from partition tables
//! (`partial`), and the cell and expansion-term loops have shared bounds.

use crate::size::Size;

/// Number of bodies.
fn bodies(size: Size) -> u64 {
    match size {
        Size::Test => 64,
        Size::Small => 160,
        Size::Reference => 448,
    }
}

/// Number of grid cells per axis (cells = ncell²).
const NCELL_AXIS: u64 = 4;

/// Returns the mini-language source of the port.
pub fn source(size: Size) -> String {
    let nbody = bodies(size);
    let ncells = NCELL_AXIS * NCELL_AXIS;
    format!(
        r#"
module fmm;

shared int nbody = {nbody};
shared int ncells = {ncells};
shared int ncell_axis = {NCELL_AXIS};
shared int bodybeg[33];
shared int bodyend[33];
shared int nterms = 4;
shared float boxsize = 16.0;
shared float cutoff = 3.0;

float posx[{nbody}];
float posy[{nbody}];
float mass[{nbody}];
float accx[{nbody}];
float accy[{nbody}];
// Per-cell summaries, rebuilt every step by the owning threads.
float cellmass[{ncells}];
float cellx[{ncells}];
float celly[{ncells}];
int cellcount[{ncells}];

barrier phase;

@init func setup() {{
    for (var p: int = 0; p < numthreads(); p = p + 1) {{
        bodybeg[p] = p * nbody / numthreads();
        bodyend[p] = (p + 1) * nbody / numthreads();
    }}
    for (var i: int = 0; i < nbody; i = i + 1) {{
        posx[i] = float(rand(1600)) / 100.0;
        posy[i] = float(rand(1600)) / 100.0;
        mass[i] = 1.0 + float(rand(100)) / 100.0;
        accx[i] = 0.0;
        accy[i] = 0.0;
    }}
}}

// Which cell a coordinate pair falls in (data-dependent).
func cell_of(x: float, y: float) -> int {{
    var cx: int = int(x * float(ncell_axis) / boxsize);
    var cy: int = int(y * float(ncell_axis) / boxsize);
    if (cx < 0) {{ cx = 0; }}
    if (cx >= ncell_axis) {{ cx = ncell_axis - 1; }}
    if (cy < 0) {{ cy = 0; }}
    if (cy >= ncell_axis) {{ cy = ncell_axis - 1; }}
    return cy * ncell_axis + cx;
}}

@spmd func slave() {{
    var procid: int = threadid();
    var first: int = bodybeg[procid];
    var last: int = bodyend[procid];

    // Phase 1: thread 0 clears the cell summaries (threadID branch).
    if (procid == 0) {{
        for (var c: int = 0; c < ncells; c = c + 1) {{
            cellmass[c] = 0.0;
            cellx[c] = 0.0;
            celly[c] = 0.0;
            cellcount[c] = 0;
        }}
    }}
    barrier(phase);

    // Phase 2: upward pass — accumulate own bodies into cell summaries.
    // Cell indices are data-dependent, so each body's target differs; a
    // lock-free races-free scheme would partition by cell, but SPLASH FMM
    // locks per cell. One lock suffices at our scale.
    for (var i: int = first; i < last; i = i + 1) {{
        var c: int = cell_of(posx[i], posy[i]);
        update_cell(c, i);
    }}
    barrier(phase);

    // Phase 3: force evaluation for own bodies.
    for (var i: int = first; i < last; i = i + 1) {{
        var ax: float = 0.0;
        var ay: float = 0.0;
        var home: int = cell_of(posx[i], posy[i]);
        for (var c: int = 0; c < ncells; c = c + 1) {{
            if (cellcount[c] > 0) {{
                var dx: float = cellx[c] / cellmass[c] - posx[i];
                var dy: float = celly[c] / cellmass[c] - posy[i];
                var dist2: float = dx * dx + dy * dy + 0.25;
                if (dist2 > cutoff * cutoff) {{
                    // Well separated: multipole (monopole+terms) expansion.
                    var term: float = cellmass[c] / dist2;
                    for (var t: int = 1; t < nterms; t = t + 1) {{
                        term = term + cellmass[c] / (dist2 * float(t + t));
                    }}
                    ax = ax + term * dx;
                    ay = ay + term * dy;
                }} else {{
                    // Near field: direct interactions with cell members.
                    for (var j: int = 0; j < nbody; j = j + 1) {{
                        if (j != i) {{
                            if (cell_of(posx[j], posy[j]) == c) {{
                                var ddx: float = posx[j] - posx[i];
                                var ddy: float = posy[j] - posy[i];
                                var dd2: float = ddx * ddx + ddy * ddy + 0.25;
                                ax = ax + mass[j] * ddx / dd2;
                                ay = ay + mass[j] * ddy / dd2;
                            }}
                        }}
                    }}
                }}
            }}
        }}
        accx[i] = ax;
        accy[i] = ay;
        var boosted: bool = false;
        if (home == 0) {{
            // Corner-cell bodies get an extra boundary correction.
            accx[i] = accx[i] * 1.01;
            boosted = true;
        }}
        if (boosted) {{
            accy[i] = accy[i] * 1.01;
        }}
    }}
    barrier(phase);

    // Phase 4: position update for own bodies (data-dependent clamping).
    for (var i: int = first; i < last; i = i + 1) {{
        posx[i] = posx[i] + accx[i] * 0.01;
        posy[i] = posy[i] + accy[i] * 0.01;
        if (posx[i] < 0.0) {{ posx[i] = 0.0 - posx[i]; }}
        if (posx[i] > boxsize) {{ posx[i] = boxsize + boxsize - posx[i]; }}
        if (posy[i] < 0.0) {{ posy[i] = 0.0 - posy[i]; }}
        if (posy[i] > boxsize) {{ posy[i] = boxsize + boxsize - posy[i]; }}
    }}

    // Chunk checksum, quantized like the original's fixed-precision print.
    var sum: float = 0.0;
    for (var i: int = first; i < last; i = i + 1) {{
        sum = sum + posx[i] + posy[i];
    }}
    output(int(sum * 10.0));
}}

mutex celllock;

func update_cell(c: int, body: int) {{
    lock(celllock);
    cellmass[c] = cellmass[c] + mass[body];
    cellx[c] = cellx[c] + posx[body] * mass[body];
    celly[c] = celly[c] + posy[body] * mass[body];
    cellcount[c] = cellcount[c] + 1;
    unlock(celllock);
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compiles_for_all_sizes() {
        for size in [Size::Test, Size::Small, Size::Reference] {
            bw_ir::frontend::compile(&source(size)).expect("fmm compiles");
        }
    }
}
