//! Tests of the runtime instance keying (paper Section III-B): branch
//! instances must align across threads — and stay distinct across call
//! sites, caller-loop iterations and barrier epochs — for the checks to be
//! simultaneously sound and precise.

use bw_ir::BranchId;
use bw_vm::{
    run_sim, run_sim_with_hook, BranchHook, FaultAction, ProgramImage, RunOutcome, SimConfig,
};

/// Minimal one-shot flip hook (the full injector lives in `bw-fault`,
/// which depends on this crate).
struct FlipAt {
    tid: u32,
    dyn_index: u64,
    fired: bool,
}

impl BranchHook for FlipAt {
    fn on_branch(&mut self, tid: u32, dyn_index: u64, _branch: BranchId) -> Option<FaultAction> {
        if !self.fired && tid == self.tid && dyn_index == self.dyn_index {
            self.fired = true;
            Some(FaultAction::FlipOutcome)
        } else {
            None
        }
    }
}

fn image(src: &str) -> ProgramImage {
    ProgramImage::prepare_default(bw_ir::frontend::compile(src).expect("compile"))
}

/// A shared branch inside a function called from two call sites: the paper
/// (Figure 2) tracks each call site separately. Different arguments per
/// site must not trip the check.
#[test]
fn call_sites_are_tracked_separately() {
    let image = image(
        r#"
        shared bool gate = true;
        func foo(arg: int) {
            for (var i: int = 0; i < 5; i = i + 1) {
                if (i < arg) { output(i); }
            }
        }
        @spmd func slave() {
            foo(1);
            if (gate) { foo(4); }
        }
        "#,
    );
    let result = run_sim(&image, &SimConfig::new(4));
    assert_eq!(result.outcome, RunOutcome::Completed);
    assert!(!result.detected(), "{:?}", result.violations);
}

/// A function called from inside a loop: every caller iteration is a new
/// instance of the callee's branches. The shared value changes per
/// iteration; mixing iterations would be a false positive.
#[test]
fn caller_loop_iterations_separate_callee_instances() {
    let image = image(
        r#"
        shared int rounds = 6;
        func check(bound: int) {
            if (bound > 2) { output(bound); }
        }
        @spmd func slave() {
            for (var r: int = 0; r < rounds; r = r + 1) {
                check(r);
            }
        }
        "#,
    );
    let result = run_sim(&image, &SimConfig::new(4));
    assert_eq!(result.outcome, RunOutcome::Completed);
    assert!(!result.detected(), "{:?}", result.violations);
}

/// ... and a fault in ONE caller iteration is still caught, which proves
/// the callee instances really do correlate across threads per iteration.
#[test]
fn fault_inside_called_function_is_caught_at_the_right_iteration() {
    let image = image(
        r#"
        shared int rounds = 6;
        func check(bound: int) {
            if (bound > 2) { output(bound); }
        }
        @spmd func slave() {
            for (var r: int = 0; r < rounds; r = r + 1) {
                check(r);
            }
        }
        "#,
    );
    let config = SimConfig::new(4);
    // Thread 1's dynamic branches: loop branch, callee branch, loop, callee…
    // Hit a callee branch (even indices are the loop header).
    let mut detected = false;
    for dyn_index in [2u64, 4, 6, 8] {
        let mut hook = FlipAt { tid: 1, dyn_index, fired: false };
        let result = run_sim_with_hook(&image, &config, &mut hook);
        if result.detected() {
            detected = true;
            break;
        }
    }
    assert!(detected, "no callee-branch flip was detected");
}

/// Shared state legitimately changes across barrier phases; the barrier
/// epoch in the key keeps pre- and post-barrier instances separate.
#[test]
fn barrier_epochs_separate_phases() {
    let image = image(
        r#"
        shared int phases = 4;
        int stage = 0;
        barrier sync;
        @spmd func slave() {
            for (var p: int = 0; p < phases; p = p + 1) {
                if (threadid() == 0) {
                    stage = stage + 1;
                }
                barrier(sync);
                // Data-dependent branch on state that changes every phase;
                // promoted to group-by-witness. All threads agree within a
                // phase; phases must not mix.
                if (stage > 2) { output(stage); }
                barrier(sync);
            }
        }
        "#,
    );
    for n in [2u32, 4, 8] {
        let result = run_sim(&image, &SimConfig::new(n));
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(!result.detected(), "n={n}: {:?}", result.violations);
    }
}

/// Recursion: each recursion depth is a distinct call path, so the same
/// static branch at different depths must not be cross-checked.
#[test]
fn recursion_depths_are_distinct_instances() {
    let image = image(
        r#"
        func fib(x: int) -> int {
            if (x < 2) { return x; }
            return fib(x - 1) + fib(x - 2);
        }
        @spmd func slave() {
            output(fib(8));
        }
        "#,
    );
    let result = run_sim(&image, &SimConfig::new(4));
    assert_eq!(result.outcome, RunOutcome::Completed);
    assert!(!result.detected(), "{:?}", result.violations);
    assert_eq!(result.outputs, vec![bw_ir::Val::I64(21); 4]);
}

/// Deep recursion overflows the interpreter stack and crashes (rather than
/// aborting the process).
#[test]
fn unbounded_recursion_traps() {
    let image = image(
        r#"
        func spin(x: int) -> int {
            return spin(x + 1);
        }
        @spmd func slave() {
            output(spin(0));
        }
        "#,
    );
    let result = run_sim(&image, &SimConfig::new(1));
    assert_eq!(
        result.outcome,
        RunOutcome::Crashed(bw_vm::TrapKind::StackOverflow)
    );
}

/// Indirect calls with a corrupted selector trap (the raytrace
/// function-pointer crash mode).
#[test]
fn corrupted_indirect_selector_traps() {
    let image = image(
        r#"
        table fs = { a, b };
        func a(x: int) -> int { return x + 1; }
        func b(x: int) -> int { return x - 1; }
        int sel = 7;
        @spmd func slave() {
            output(fs[sel](threadid()));
        }
        "#,
    );
    let result = run_sim(&image, &SimConfig::new(2));
    assert_eq!(
        result.outcome,
        RunOutcome::Crashed(bw_vm::TrapKind::BadIndirectCall)
    );
}
