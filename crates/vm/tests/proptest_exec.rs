//! Property tests over randomly generated SPMD programs:
//!
//! 1. **Determinism** — the simulated engine is a pure function of
//!    (program, thread count, seed).
//! 2. **Instrumentation neutrality** — enabling the monitor never changes
//!    program semantics (outputs, branch counts).
//! 3. **Zero false positives** — fault-free runs never report violations,
//!    at any thread count (the paper's core guarantee, which follows from
//!    the soundness of the static classification).
//!
//! Programs are generated from a grammar that guarantees termination
//! (constant loop bounds), race-freedom (threads write disjoint,
//! tid-indexed array slices) and uniform barrier participation, but
//! otherwise mixes shared, thread-ID-dependent and data-dependent control
//! flow freely.

use proptest::prelude::*;

use bw_vm::{run_sim, MonitorMode, ProgramImage, SimConfig};

/// Per-thread array slice width used by generated programs.
const SLICE: usize = 8;

#[derive(Clone, Debug)]
enum Expr {
    Const(i8),
    Var(u8),
    Tid,
    NumThreads,
    SliceRead(Box<Expr>),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Min(Box<Expr>, Box<Expr>),
    SharedScalar,
}

#[derive(Clone, Debug)]
enum Stmt {
    Decl(Expr),
    Assign(u8, Expr),
    Output(Expr),
    SliceWrite(Box<Expr>, Expr),
    For { bound: u8, body: Vec<Stmt> },
    If { lhs: Expr, rhs: Expr, then_body: Vec<Stmt>, else_body: Vec<Stmt> },
    Barrier,
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i8>().prop_map(Expr::Const),
        (0u8..4).prop_map(Expr::Var),
        Just(Expr::Tid),
        Just(Expr::NumThreads),
        Just(Expr::SharedScalar),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Min(Box::new(a), Box::new(b))),
            inner.prop_map(|e| Expr::SliceRead(Box::new(e))),
        ]
    })
}

/// `uniform` decides whether barriers may appear (they must be executed by
/// every thread, so only in control contexts every thread reaches).
fn stmt_strategy(depth: u32, uniform: bool) -> BoxedStrategy<Stmt> {
    let e = expr_strategy;
    let mut simple = vec![
        e().prop_map(Stmt::Decl).boxed(),
        ((0u8..4), e()).prop_map(|(v, x)| Stmt::Assign(v, x)).boxed(),
        e().prop_map(Stmt::Output).boxed(),
        (e(), e()).prop_map(|(i, v)| Stmt::SliceWrite(Box::new(i), v)).boxed(),
    ];
    if uniform {
        simple.push(Just(Stmt::Barrier).boxed());
    }
    let simple = proptest::strategy::Union::new(simple);
    if depth == 0 {
        return simple.boxed();
    }
    let nested = prop_oneof![
        (
            1u8..5,
            proptest::collection::vec(stmt_strategy(depth - 1, uniform), 0..4)
        )
            .prop_map(|(bound, body)| Stmt::For { bound, body }),
        (
            e(),
            e(),
            proptest::collection::vec(stmt_strategy(depth - 1, false), 0..4),
            proptest::collection::vec(stmt_strategy(depth - 1, false), 0..3)
        )
            .prop_map(|(lhs, rhs, then_body, else_body)| Stmt::If {
                lhs,
                rhs,
                then_body,
                else_body
            }),
    ];
    prop_oneof![3 => simple, 2 => nested].boxed()
}

fn program_strategy() -> impl Strategy<Value = Vec<Stmt>> {
    proptest::collection::vec(stmt_strategy(2, true), 1..8)
}

fn expr_source(e: &Expr, out: &mut String) {
    match e {
        Expr::Const(c) => out.push_str(&format!("({c})")),
        Expr::Var(v) => out.push_str(&format!("v{v}")),
        Expr::Tid => out.push('t'),
        Expr::NumThreads => out.push_str("numthreads()"),
        Expr::SharedScalar => out.push_str("cfg"),
        Expr::SliceRead(idx) => {
            out.push_str("slice[t * 8 + iwrap(");
            expr_source(idx, out);
            out.push_str(")]");
        }
        Expr::Add(a, b) | Expr::Mul(a, b) | Expr::Min(a, b) => {
            let (open, mid, close) = match e {
                Expr::Add(..) => ("(", " + ", ")"),
                Expr::Mul(..) => ("(", " * ", ")"),
                _ => ("min(", ", ", ")"),
            };
            out.push_str(open);
            expr_source(a, out);
            out.push_str(mid);
            expr_source(b, out);
            out.push_str(close);
        }
    }
}

fn stmt_source(s: &Stmt, label: &mut u32, indent: usize, out: &mut String) {
    let pad = "    ".repeat(indent);
    match s {
        Stmt::Decl(e) => {
            // Redeclaration is avoided by reusing the four fixed v0..v3
            // variables; a decl just assigns.
            *label += 1;
            out.push_str(&format!("{pad}v{} = ", *label % 4));
            expr_source(e, out);
            out.push_str(";\n");
        }
        Stmt::Assign(v, e) => {
            out.push_str(&format!("{pad}v{v} = "));
            expr_source(e, out);
            out.push_str(";\n");
        }
        Stmt::Output(e) => {
            out.push_str(&format!("{pad}output("));
            expr_source(e, out);
            out.push_str(");\n");
        }
        Stmt::SliceWrite(i, v) => {
            out.push_str(&format!("{pad}slice[t * 8 + iwrap("));
            expr_source(i, out);
            out.push_str(")] = ");
            expr_source(v, out);
            out.push_str(";\n");
        }
        Stmt::For { bound, body } => {
            *label += 1;
            let var = format!("k{label}");
            out.push_str(&format!("{pad}for (var {var}: int = 0; {var} < {bound}; {var} = {var} + 1) {{\n"));
            for s in body {
                stmt_source(s, label, indent + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Stmt::If { lhs, rhs, then_body, else_body } => {
            out.push_str(&format!("{pad}if ("));
            expr_source(lhs, out);
            out.push_str(" < ");
            expr_source(rhs, out);
            out.push_str(") {\n");
            for s in then_body {
                stmt_source(s, label, indent + 1, out);
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for s in else_body {
                stmt_source(s, label, indent + 1, out);
            }
            out.push_str(&format!("{pad}}}\n"));
        }
        Stmt::Barrier => out.push_str(&format!("{pad}barrier(sync);\n")),
    }
}

fn to_source(stmts: &[Stmt]) -> String {
    let mut body = String::new();
    let mut label = 0;
    for s in stmts {
        stmt_source(s, &mut label, 1, &mut body);
    }
    format!(
        r#"
module generated;
shared int cfg = 13;
int slice[{total}];
barrier sync;

// Wraps any integer into a valid slice offset.
func iwrap(x: int) -> int {{
    var m: int = x % {slice};
    if (m < 0) {{ m = m + {slice}; }}
    return m;
}}

@spmd func slave() {{
    var t: int = threadid();
    var v0: int = 0;
    var v1: int = 1;
    var v2: int = t;
    var v3: int = cfg;
{body}
    output(v0 + v1 + v2 + v3);
}}
"#,
        total = 32 * SLICE,
        slice = SLICE,
    )
}

fn prepare(stmts: &[Stmt]) -> ProgramImage {
    let source = to_source(stmts);
    let module = bw_ir::frontend::compile(&source)
        .unwrap_or_else(|e| panic!("generated program failed to compile: {e}\n{source}"));
    ProgramImage::prepare_default(module)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, .. ProptestConfig::default() })]

    #[test]
    fn generated_programs_run_deterministically(stmts in program_strategy()) {
        let image = prepare(&stmts);
        let a = run_sim(&image, &SimConfig::new(4));
        let b = run_sim(&image, &SimConfig::new(4));
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.total_steps, b.total_steps);
        prop_assert_eq!(a.parallel_cycles, b.parallel_cycles);
    }

    #[test]
    fn monitor_never_changes_semantics(stmts in program_strategy()) {
        let image = prepare(&stmts);
        let mut on = SimConfig::new(4);
        on.monitor = MonitorMode::Enabled;
        let mut off = SimConfig::new(4);
        off.monitor = MonitorMode::Off;
        let a = run_sim(&image, &on);
        let b = run_sim(&image, &off);
        prop_assert_eq!(a.outcome, b.outcome);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.branches_per_thread, b.branches_per_thread);
    }

    #[test]
    fn fault_free_runs_never_violate(stmts in program_strategy()) {
        let image = prepare(&stmts);
        for nthreads in [1u32, 2, 4, 8] {
            let result = run_sim(&image, &SimConfig::new(nthreads));
            prop_assert!(
                result.violations.is_empty(),
                "false positive at {} threads: {:?}",
                nthreads,
                result.violations
            );
        }
    }
}
