//! VM-side telemetry: simulated-cycle attribution by cost class.
//!
//! The simulator already reports *how long* the parallel section took
//! ([`crate::RunResult::parallel_cycles`]); these instruments say *where
//! the cycles went* — ALU vs. shared memory vs. monitor-event pushes —
//! which is what lets figure8/figure9 attribute instrumentation overhead
//! to queue pressure rather than check cost. All values are simulated
//! cycles, so they are deterministic for a given (program, config, seed)
//! and participate in the determinism contract.

use bw_telemetry::{Counter, TelemetrySnapshot};

use crate::thread::CostClass;

/// Cycle attribution instruments for one simulated run.
#[derive(Debug, Default)]
pub struct VmTelemetry {
    /// Cycles in plain ALU / compare / jump instructions.
    pub cycles_alu: Counter,
    /// Cycles in multiplies.
    pub cycles_mul: Counter,
    /// Cycles in divides / sqrt.
    pub cycles_div: Counter,
    /// Cycles in thread-local memory accesses.
    pub cycles_local_mem: Counter,
    /// Cycles in shared-memory accesses.
    pub cycles_shared: Counter,
    /// Cycles in atomic RMWs.
    pub cycles_atomic: Counter,
    /// Cycles in calls/returns.
    pub cycles_call: Counter,
    /// Cycles in output appends.
    pub cycles_output: Counter,
    /// Cycles spent building and pushing monitor events (the paper's
    /// instrumentation overhead proper).
    pub cycles_events: Counter,
    /// Cycles in lock/unlock/barrier machinery beyond the issuing
    /// instruction.
    pub cycles_sync: Counter,
}

impl VmTelemetry {
    /// All-zero instruments.
    pub const fn new() -> Self {
        VmTelemetry {
            cycles_alu: Counter::new(),
            cycles_mul: Counter::new(),
            cycles_div: Counter::new(),
            cycles_local_mem: Counter::new(),
            cycles_shared: Counter::new(),
            cycles_atomic: Counter::new(),
            cycles_call: Counter::new(),
            cycles_output: Counter::new(),
            cycles_events: Counter::new(),
            cycles_sync: Counter::new(),
        }
    }

    /// The attribution counter for a cost class (`Free` maps to the ALU
    /// bucket; it contributes zero cycles anyway).
    pub fn cycles_for(&self, class: CostClass) -> &Counter {
        match class {
            CostClass::Alu | CostClass::Free => &self.cycles_alu,
            CostClass::Mul => &self.cycles_mul,
            CostClass::Div => &self.cycles_div,
            CostClass::LocalMem => &self.cycles_local_mem,
            CostClass::Shared(_) => &self.cycles_shared,
            CostClass::Atomic(_) => &self.cycles_atomic,
            CostClass::Call => &self.cycles_call,
            CostClass::Output => &self.cycles_output,
        }
    }

    /// Exports the attribution under `vm.cycles.*` names.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("vm.cycles.alu", self.cycles_alu.get());
        s.push_counter("vm.cycles.mul", self.cycles_mul.get());
        s.push_counter("vm.cycles.div", self.cycles_div.get());
        s.push_counter("vm.cycles.local_mem", self.cycles_local_mem.get());
        s.push_counter("vm.cycles.shared", self.cycles_shared.get());
        s.push_counter("vm.cycles.atomic", self.cycles_atomic.get());
        s.push_counter("vm.cycles.call", self.cycles_call.get());
        s.push_counter("vm.cycles.output", self.cycles_output.get());
        s.push_counter("vm.cycles.events", self.cycles_events.get());
        s.push_counter("vm.cycles.sync", self.cycles_sync.get());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_classes_map_to_distinct_buckets() {
        let t = VmTelemetry::new();
        t.cycles_for(CostClass::Shared(3)).add(10);
        t.cycles_for(CostClass::Atomic(0)).add(5);
        t.cycles_for(CostClass::Free).add(0);
        assert_eq!(t.cycles_shared.get(), 10);
        assert_eq!(t.cycles_atomic.get(), 5);
        assert_eq!(t.snapshot().counter("vm.cycles.shared"), Some(10));
    }
}
