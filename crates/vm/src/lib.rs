//! # bw-vm — execution engines for BLOCKWATCH programs
//!
//! Runs the SPMD IR of [`bw_ir`] with the instrumentation planned by
//! [`bw_analysis`], reporting to the [`bw_monitor`] runtime monitor. Two
//! engines share one interpreter core:
//!
//! * **Deterministic simulated engine** ([`run_sim`]): all threads are
//!   interpreted under a discrete-event scheduler with an explicit
//!   [`MachineModel`] (the paper's 4-socket, 32-core Opteron testbed).
//!   Execution is a deterministic function of program, thread count and
//!   seed — the substrate for the fault-injection campaigns (which need
//!   golden-run comparison) and the performance figures (which need a
//!   32-core machine this reproduction does not have).
//! * **Real-threads engine** ([`run_real`]): one OS thread per SPMD
//!   thread plus the asynchronous monitor thread of the paper, with the
//!   lock-free queues actually crossing threads. Used to validate the
//!   monitor machinery under true concurrency.
//!
//! Both are implementations of the [`Engine`] trait over one unified
//! [`ExecConfig`]/[`RunResult`] pair — pick one at runtime with
//! [`engine`]`(`[`EngineKind`]`)`. Determinism is a property of the
//! scheduler ([`Engine::deterministic`]), not of the shared core.
//!
//! # Examples
//!
//! ```
//! use bw_vm::{run_sim, ProgramImage, SimConfig, RunOutcome};
//!
//! let module = bw_ir::frontend::compile(r#"
//!     shared int n = 8;
//!     @spmd func slave() {
//!         var t: int = threadid();
//!         for (var i: int = 0; i < n; i = i + 1) { output(t * n + i); }
//!     }
//! "#).unwrap();
//! let image = ProgramImage::prepare_default(module);
//! let result = run_sim(&image, &SimConfig::new(4));
//! assert_eq!(result.outcome, RunOutcome::Completed);
//! assert_eq!(result.outputs.len(), 32);
//! assert!(!result.detected());
//! ```

#![warn(missing_docs)]

mod engine;
mod image;
mod live;
mod machine;
mod memory;
mod real;
mod sim;
mod telemetry;
mod thread;
mod trap;

pub use engine::{
    engine, Engine, EngineKind, ExecConfig, ExecMode, MonitorMode, NoSharedHook, RealConfig,
    RealEngine, RealResult, RunOutcome, RunResult, SharedBranchHook, SharedHookAdapter,
    SimConfig, SimEngine,
};
pub use image::{BranchRuntime, FuncMeta, PrepareTimings, ProgramImage};
pub use telemetry::VmTelemetry;
pub use machine::MachineModel;
pub use memory::{AtomicMemory, LocalMemory, SharedMemory, SimMemory};
pub use real::run_real;
pub use sim::{run_module, run_sim, run_sim_with_hook};
pub use thread::{
    BranchHook, CostClass, FaultAction, Frame, NoHook, SplitMix64, StepOutcome, ThreadState,
    MAX_CALL_DEPTH,
};
pub use trap::TrapKind;
