//! Memory backends: shared memory (per-global regions) and thread-local
//! allocation arenas.
//!
//! Two shared-memory implementations exist behind [`SharedMemory`]:
//! a plain single-threaded one for the deterministic simulator, and an
//! atomic one (values stored as `AtomicU64` bit patterns, with the element
//! type taken from the global's declaration) for the real-threads engine,
//! where concurrent relaxed accesses must not be undefined behaviour.

use std::sync::atomic::{AtomicU64, Ordering};

use bw_ir::{Module, Ptr, Space, Type, Val};

use crate::trap::TrapKind;

/// Shared memory abstraction used by the interpreter core.
pub trait SharedMemory {
    /// Loads the word at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBounds`] for accesses outside the region.
    fn load(&self, ptr: Ptr) -> Result<Val, TrapKind>;

    /// Stores `value` at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBounds`] for accesses outside the region.
    fn store(&self, ptr: Ptr, value: Val) -> Result<(), TrapKind>;

    /// Atomically adds `delta` to the scalar global `region` and returns
    /// the previous value.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBounds`] if the region does not exist or
    /// [`TrapKind::TypeError`] if it is not an integer scalar.
    fn fetch_add(&self, region: u32, delta: i64) -> Result<i64, TrapKind>;
}

fn check_bounds(len: usize, ptr: Ptr) -> Result<usize, TrapKind> {
    if ptr.offset < 0 {
        return Err(TrapKind::OutOfBounds);
    }
    let off = ptr.offset as usize;
    if off >= len {
        return Err(TrapKind::OutOfBounds);
    }
    Ok(off)
}

/// Plain shared memory for the single-OS-thread simulator.
///
/// Interior mutability via `RefCell`-free unsafe is unnecessary here: the
/// simulator serializes all accesses, so a `std::cell::RefCell` per region
/// would also work, but a flat `UnsafeCell` is simpler and faster. Instead
/// we keep it fully safe with `std::cell::Cell`-like semantics by using
/// `RefCell`-less `Cell<Val>`? `Val` is `Copy`, so `Cell` works directly.
pub struct SimMemory {
    regions: Vec<Vec<std::cell::Cell<Val>>>,
}

impl SimMemory {
    /// Allocates and initializes shared memory from the module's globals.
    pub fn new(module: &Module) -> Self {
        let regions = module
            .globals
            .iter()
            .map(|g| (0..g.len).map(|_| std::cell::Cell::new(g.init)).collect())
            .collect();
        SimMemory { regions }
    }

    fn region(&self, ptr: Ptr) -> Result<&Vec<std::cell::Cell<Val>>, TrapKind> {
        self.regions.get(ptr.region as usize).ok_or(TrapKind::OutOfBounds)
    }
}

impl SharedMemory for SimMemory {
    fn load(&self, ptr: Ptr) -> Result<Val, TrapKind> {
        let region = self.region(ptr)?;
        let off = check_bounds(region.len(), ptr)?;
        Ok(region[off].get())
    }

    fn store(&self, ptr: Ptr, value: Val) -> Result<(), TrapKind> {
        let region = self.region(ptr)?;
        let off = check_bounds(region.len(), ptr)?;
        region[off].set(value);
        Ok(())
    }

    fn fetch_add(&self, region: u32, delta: i64) -> Result<i64, TrapKind> {
        let r = self.regions.get(region as usize).ok_or(TrapKind::OutOfBounds)?;
        let cell = r.first().ok_or(TrapKind::OutOfBounds)?;
        let old = cell.get().as_i64().ok_or(TrapKind::TypeError)?;
        cell.set(Val::I64(old.wrapping_add(delta)));
        Ok(old)
    }
}

/// Atomic shared memory for the real-threads engine. Values are stored as
/// their 64-bit encodings; the element type comes from the global
/// declaration, so every slot has a fixed type.
pub struct AtomicMemory {
    regions: Vec<(Type, Vec<AtomicU64>)>,
}

impl AtomicMemory {
    /// Allocates and initializes shared memory from the module's globals.
    pub fn new(module: &Module) -> Self {
        let regions = module
            .globals
            .iter()
            .map(|g| {
                let bits = g.init.bits();
                (g.ty, (0..g.len).map(|_| AtomicU64::new(bits)).collect())
            })
            .collect();
        AtomicMemory { regions }
    }
}

impl SharedMemory for AtomicMemory {
    fn load(&self, ptr: Ptr) -> Result<Val, TrapKind> {
        let (ty, region) =
            self.regions.get(ptr.region as usize).ok_or(TrapKind::OutOfBounds)?;
        let off = check_bounds(region.len(), ptr)?;
        Ok(Val::from_bits(*ty, region[off].load(Ordering::Relaxed)))
    }

    fn store(&self, ptr: Ptr, value: Val) -> Result<(), TrapKind> {
        let (ty, region) =
            self.regions.get(ptr.region as usize).ok_or(TrapKind::OutOfBounds)?;
        let off = check_bounds(region.len(), ptr)?;
        if value.ty() != *ty {
            // Storing a differently-typed value (possible after pointer
            // corruption redirects a store into another global): keep the
            // bit pattern; the region's type reinterprets it, as real
            // memory would.
            region[off].store(value.bits(), Ordering::Relaxed);
            return Ok(());
        }
        region[off].store(value.bits(), Ordering::Relaxed);
        Ok(())
    }

    fn fetch_add(&self, region: u32, delta: i64) -> Result<i64, TrapKind> {
        let (ty, r) = self.regions.get(region as usize).ok_or(TrapKind::OutOfBounds)?;
        if *ty != Type::I64 {
            return Err(TrapKind::TypeError);
        }
        let cell = r.first().ok_or(TrapKind::OutOfBounds)?;
        Ok(cell.fetch_add(delta as u64, Ordering::Relaxed) as i64)
    }
}

/// Per-thread local memory: a list of `alloca` regions.
#[derive(Debug, Default)]
pub struct LocalMemory {
    regions: Vec<Vec<Val>>,
}

impl LocalMemory {
    /// Fresh empty local memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates `size` words and returns the pointer to the new region.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::BadAlloc`] for negative or oversized requests.
    pub fn alloca(&mut self, size: i64) -> Result<Ptr, TrapKind> {
        if !(0..=(1 << 28)).contains(&size) {
            return Err(TrapKind::BadAlloc);
        }
        let region = u32::try_from(self.regions.len()).map_err(|_| TrapKind::BadAlloc)?;
        self.regions.push(vec![Val::I64(0); size as usize]);
        Ok(Ptr { space: Space::Local, region, offset: 0 })
    }

    /// Loads the word at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBounds`] for accesses outside the region.
    pub fn load(&self, ptr: Ptr) -> Result<Val, TrapKind> {
        let region = self.regions.get(ptr.region as usize).ok_or(TrapKind::OutOfBounds)?;
        let off = check_bounds(region.len(), ptr)?;
        Ok(region[off])
    }

    /// Stores `value` at `ptr`.
    ///
    /// # Errors
    ///
    /// Returns [`TrapKind::OutOfBounds`] for accesses outside the region.
    pub fn store(&mut self, ptr: Ptr, value: Val) -> Result<(), TrapKind> {
        let region = self.regions.get_mut(ptr.region as usize).ok_or(TrapKind::OutOfBounds)?;
        let off = check_bounds(region.len(), ptr)?;
        region[off] = value;
        Ok(())
    }

    /// Number of live regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_ir::Module;

    fn module_with_globals() -> Module {
        let mut m = Module::new("t");
        m.add_global("x", Type::I64, Val::I64(7), true);
        m.add_array("a", Type::F64, 4, Val::F64(1.5), false);
        m
    }

    #[test]
    fn sim_memory_roundtrip() {
        let m = module_with_globals();
        let mem = SimMemory::new(&m);
        let x = Ptr::shared(0);
        assert_eq!(mem.load(x), Ok(Val::I64(7)));
        mem.store(x, Val::I64(9)).unwrap();
        assert_eq!(mem.load(x), Ok(Val::I64(9)));
        let a2 = Ptr { space: Space::Shared, region: 1, offset: 2 };
        assert_eq!(mem.load(a2), Ok(Val::F64(1.5)));
    }

    #[test]
    fn sim_memory_bounds() {
        let m = module_with_globals();
        let mem = SimMemory::new(&m);
        let bad = Ptr { space: Space::Shared, region: 1, offset: 4 };
        assert_eq!(mem.load(bad), Err(TrapKind::OutOfBounds));
        let neg = Ptr { space: Space::Shared, region: 0, offset: -1 };
        assert_eq!(mem.load(neg), Err(TrapKind::OutOfBounds));
        let nowhere = Ptr { space: Space::Shared, region: 99, offset: 0 };
        assert_eq!(mem.store(nowhere, Val::I64(0)), Err(TrapKind::OutOfBounds));
    }

    #[test]
    fn sim_fetch_add() {
        let m = module_with_globals();
        let mem = SimMemory::new(&m);
        assert_eq!(mem.fetch_add(0, 3), Ok(7));
        assert_eq!(mem.fetch_add(0, 1), Ok(10));
        // fetch_add on a float region is a type error.
        assert_eq!(mem.fetch_add(1, 1), Err(TrapKind::TypeError));
    }

    #[test]
    fn atomic_memory_matches_sim_semantics() {
        let m = module_with_globals();
        let mem = AtomicMemory::new(&m);
        let x = Ptr::shared(0);
        assert_eq!(mem.load(x), Ok(Val::I64(7)));
        mem.store(x, Val::I64(-3)).unwrap();
        assert_eq!(mem.load(x), Ok(Val::I64(-3)));
        assert_eq!(mem.fetch_add(0, 5), Ok(-3));
        assert_eq!(mem.load(x), Ok(Val::I64(2)));
        let a0 = Ptr { space: Space::Shared, region: 1, offset: 0 };
        assert_eq!(mem.load(a0), Ok(Val::F64(1.5)));
        assert_eq!(
            mem.load(Ptr { space: Space::Shared, region: 1, offset: 9 }),
            Err(TrapKind::OutOfBounds)
        );
    }

    #[test]
    fn local_memory_alloca_and_access() {
        let mut lm = LocalMemory::new();
        let p = lm.alloca(4).unwrap();
        lm.store(p.offset_by(3), Val::F64(2.5)).unwrap();
        assert_eq!(lm.load(p.offset_by(3)), Ok(Val::F64(2.5)));
        assert_eq!(lm.load(p.offset_by(4)), Err(TrapKind::OutOfBounds));
        assert_eq!(lm.alloca(-1), Err(TrapKind::BadAlloc));
        assert_eq!(lm.num_regions(), 1);
    }
}
