//! The machine cost model used by the deterministic simulated engine.
//!
//! The paper's performance numbers come from a 32-core machine built from
//! four 8-core AMD Opteron 6128 sockets — explicitly *not* symmetric: the
//! paper attributes the overhead bump from 1 to 2 threads to the OS placing
//! the two threads on different sockets, which turns shared accesses and
//! monitor-queue traffic into cross-socket traffic. [`MachineModel`]
//! captures exactly the costs that explanation needs:
//!
//! * threads are placed round-robin across sockets (the single-thread run
//!   stays on socket 0 with the monitor);
//! * every shared-memory access pays a near or far cost depending on
//!   whether the accessing thread's socket matches the region's home
//!   socket;
//! * every monitor event pays a near or far cost depending on the sender's
//!   socket (the monitor lives on socket 0);
//! * barriers cost a latency logarithmic in the number of participants,
//!   and lock handoffs a fixed cost — these grow the *communication* share
//!   of execution as threads are added, which is what amortizes the
//!   instrumentation overhead at high thread counts (paper Figure 7).

use serde::{Deserialize, Serialize};

/// Cycle costs and topology of the simulated machine.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MachineModel {
    /// Number of sockets (NUMA domains).
    pub sockets: u32,
    /// Cores per socket.
    pub cores_per_socket: u32,
    /// Cost of simple ALU ops, comparisons, jumps.
    pub alu: u64,
    /// Cost of multiplies.
    pub mul: u64,
    /// Cost of divides, remainders, square roots.
    pub div: u64,
    /// Cost of thread-local memory accesses.
    pub mem_local: u64,
    /// Cost of a shared access whose home socket matches the thread's.
    pub shared_near: u64,
    /// Cost of a cross-socket shared access.
    pub shared_far: u64,
    /// Extra cycles per shared access per additional active thread:
    /// coherence and interconnect contention. This is what makes the
    /// baseline program scale sublinearly (the paper: "due to communication
    /// and waiting among threads, the reduction in execution time is less
    /// than 2X"), which in turn amortizes the instrumentation overhead at
    /// high thread counts (Figure 7's downward slope).
    pub shared_contention: u64,
    /// Cost of an atomic fetch-add (on top of the shared access cost).
    pub atomic: u64,
    /// Cost of acquiring or releasing an uncontended mutex.
    pub lock: u64,
    /// Lock handoff penalty paid by a waiter when it is woken.
    pub lock_handoff: u64,
    /// Barrier cost per tree hop: total barrier latency is
    /// `barrier_base + barrier_hop * ceil(log2 nthreads)`.
    pub barrier_base: u64,
    /// See `barrier_base`.
    pub barrier_hop: u64,
    /// Cost of a call / return.
    pub call: u64,
    /// Cost of assembling a monitor event (hashing witnesses and keys).
    pub event_build: u64,
    /// Queue push when the sender shares the monitor's socket.
    pub event_near: u64,
    /// Queue push across sockets.
    pub event_far: u64,
    /// Cost of an `output` operation.
    pub output: u64,
}

impl MachineModel {
    /// The four-socket, 32-core AMD Opteron 6128 configuration of the
    /// paper's testbed.
    pub fn opteron_6128() -> Self {
        MachineModel {
            sockets: 4,
            cores_per_socket: 8,
            alu: 1,
            mul: 3,
            div: 20,
            mem_local: 2,
            shared_near: 8,
            shared_far: 40,
            shared_contention: 12,
            atomic: 25,
            lock: 20,
            lock_handoff: 40,
            barrier_base: 60,
            barrier_hop: 60,
            call: 4,
            event_build: 8,
            event_near: 50,
            event_far: 260,
            output: 4,
        }
    }

    /// Total number of cores.
    pub fn cores(&self) -> u32 {
        self.sockets * self.cores_per_socket
    }

    /// Socket a thread runs on. A single application thread shares socket 0
    /// with the monitor; otherwise the OS spreads threads round-robin
    /// across sockets (the paper's observed placement).
    pub fn socket_of(&self, thread: u32, nthreads: u32) -> u32 {
        if nthreads <= 1 {
            0
        } else {
            thread % self.sockets
        }
    }

    /// Home socket of a shared region: regions are distributed round-robin
    /// over the sockets actually hosting threads.
    pub fn home_of(&self, region: u32, nthreads: u32) -> u32 {
        let active = self.sockets.min(nthreads.max(1));
        region % active
    }

    /// Cost of a shared access by `thread` to `region`, including the
    /// contention term that grows with the number of active threads.
    pub fn shared_access(&self, thread: u32, region: u32, nthreads: u32) -> u64 {
        let base = if self.socket_of(thread, nthreads) == self.home_of(region, nthreads) {
            self.shared_near
        } else {
            self.shared_far
        };
        base + self.shared_contention * u64::from(nthreads.saturating_sub(1))
    }

    /// Cost of pushing a monitor event from `thread` (monitor on socket 0).
    pub fn event_push(&self, thread: u32, nthreads: u32) -> u64 {
        if self.socket_of(thread, nthreads) == 0 {
            self.event_near
        } else {
            self.event_far
        }
    }

    /// Barrier release latency for `nthreads` participants (linear: a
    /// central-counter pthread barrier serializes arrivals).
    pub fn barrier_latency(&self, nthreads: u32) -> u64 {
        self.barrier_base + self.barrier_hop * u64::from(nthreads.saturating_sub(1))
    }
}

impl Default for MachineModel {
    fn default() -> Self {
        Self::opteron_6128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_thread_is_colocated_with_monitor() {
        let m = MachineModel::opteron_6128();
        assert_eq!(m.socket_of(0, 1), 0);
        assert_eq!(m.event_push(0, 1), m.event_near);
    }

    #[test]
    fn two_threads_span_sockets() {
        let m = MachineModel::opteron_6128();
        assert_eq!(m.socket_of(0, 2), 0);
        assert_eq!(m.socket_of(1, 2), 1);
        // Thread 1's events cross sockets: the 1→2 thread overhead bump.
        assert_eq!(m.event_push(1, 2), m.event_far);
    }

    #[test]
    fn shared_access_cost_depends_on_home() {
        let m = MachineModel::opteron_6128();
        // 4 threads on 4 sockets; region 0 homed on socket 0. The
        // contention term applies uniformly.
        let contention = 3 * m.shared_contention;
        assert_eq!(m.shared_access(0, 0, 4), m.shared_near + contention);
        assert_eq!(m.shared_access(1, 0, 4), m.shared_far + contention);
        // Single-threaded: everything near, no contention.
        assert_eq!(m.shared_access(0, 3, 1), m.shared_near);
    }

    #[test]
    fn barrier_latency_grows_linearly() {
        let m = MachineModel::opteron_6128();
        assert!(m.barrier_latency(2) < m.barrier_latency(8));
        assert!(m.barrier_latency(8) < m.barrier_latency(32));
        assert_eq!(m.barrier_latency(32) - m.barrier_latency(16), 16 * m.barrier_hop);
    }

    #[test]
    fn shared_contention_grows_with_threads() {
        let m = MachineModel::opteron_6128();
        let at4 = m.shared_access(1, 0, 4);
        let at32 = m.shared_access(1, 0, 32);
        assert!(at32 > at4);
        assert_eq!(at32 - at4, 28 * m.shared_contention);
    }

    #[test]
    fn default_is_the_paper_testbed() {
        let m = MachineModel::default();
        assert_eq!(m.cores(), 32);
        assert_eq!(m.sockets, 4);
    }
}
