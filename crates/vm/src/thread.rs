//! Per-thread interpreter state and the single-instruction step function
//! shared by both execution engines.

use bw_ir::{
    BarrierId, BinOp, BlockId, BranchId, CmpOp, FuncId, MutexId, Op, Ptr, Space, UnOp, Val,
    ValueId,
};
use bw_monitor::{BranchEvent, KeyHasher};

use crate::image::ProgramImage;
use crate::memory::{LocalMemory, SharedMemory};
use crate::trap::TrapKind;

/// Maximum call depth before a [`TrapKind::StackOverflow`].
pub const MAX_CALL_DEPTH: usize = 512;

/// A fault action requested by a [`BranchHook`] at a dynamic branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Flip the branch outcome (a fault in the flag register): the branch
    /// goes the wrong way but no program data is corrupted.
    FlipOutcome,
    /// Flip `bit` of one of the branch's condition-data values (chosen by
    /// `value_choice % #values`). The corruption persists in the register
    /// and the branch outcome is recomputed from the corrupted data.
    CorruptData {
        /// Index into the branch's condition-data values.
        value_choice: u32,
        /// Bit to flip (0..64).
        bit: u8,
    },
}

/// Hook consulted at every dynamic branch — the integration point for the
/// fault injector (profiling and injection runs).
pub trait BranchHook {
    /// Called when `tid` is about to execute its `dyn_index`-th dynamic
    /// branch (1-based), which is static branch `branch`. Returning an
    /// action injects a fault.
    fn on_branch(&mut self, tid: u32, dyn_index: u64, branch: BranchId) -> Option<FaultAction>;
}

/// A no-op hook for fault-free runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoHook;

impl BranchHook for NoHook {
    fn on_branch(&mut self, _: u32, _: u64, _: BranchId) -> Option<FaultAction> {
        None
    }
}

/// Cost classification of an executed instruction; the engine translates it
/// into cycles with the machine model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CostClass {
    /// Simple ALU / compare / jump.
    Alu,
    /// Multiply.
    Mul,
    /// Divide / remainder / sqrt.
    Div,
    /// Thread-local memory access.
    LocalMem,
    /// Shared memory access to the given region.
    Shared(u32),
    /// Atomic RMW on the given region.
    Atomic(u32),
    /// Call or return.
    Call,
    /// Output append.
    Output,
    /// No cost (phi bookkeeping, constants folded into issue).
    Free,
}

/// What happened during one step.
#[derive(Debug)]
pub enum StepOutcome {
    /// An ordinary instruction ran.
    Ran {
        /// Cost classification for the engine's accounting.
        cost: CostClass,
        /// Monitor event to deliver, when an instrumented branch executed.
        event: Option<BranchEvent>,
    },
    /// The thread executed a `lock` — the engine must grant or block.
    Lock(MutexId),
    /// The thread executed an `unlock`.
    Unlock(MutexId),
    /// The thread arrived at a barrier.
    Barrier(BarrierId),
    /// The thread returned from its root frame.
    Done,
    /// The thread aborted.
    Trap(TrapKind),
}

/// A deterministic per-thread PRNG (SplitMix64) backing the `rand` op.
#[derive(Clone, Debug)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; 0 when `bound <= 0`.
    pub fn below(&mut self, bound: i64) -> i64 {
        if bound <= 0 {
            0
        } else {
            (self.next_u64() % bound as u64) as i64
        }
    }
}

/// One activation record.
#[derive(Debug)]
pub struct Frame {
    /// Executing function.
    pub func: FuncId,
    /// Current block.
    pub block: BlockId,
    /// Next instruction index within the block.
    pub inst: usize,
    /// Register file (indexed by `ValueId`).
    pub regs: Vec<Val>,
    /// Iteration counters of the loops currently containing the program
    /// point, outermost first.
    pub loop_stack: Vec<(bw_ir::LoopId, u64)>,
    /// Call-path hash for this frame (level-1 runtime key).
    pub path_hash: u64,
    /// Caller register to receive the return value.
    pub ret_dest: Option<ValueId>,
}

/// The full interpreter state of one thread.
pub struct ThreadState {
    /// Thread id in `0..nthreads`.
    pub tid: u32,
    /// Activation stack.
    pub frames: Vec<Frame>,
    /// Thread-local memory.
    pub local: LocalMemory,
    /// Values emitted by `output`.
    pub outputs: Vec<Val>,
    /// Deterministic PRNG for the `rand` op.
    pub rng: SplitMix64,
    /// Number of barriers passed (part of the instance key).
    pub barrier_epoch: u64,
    /// Dynamic branches executed so far.
    pub dyn_branches: u64,
    /// Monitor events produced.
    pub events_sent: u64,
    /// Set when the thread finished or trapped.
    pub finished: Option<Result<(), TrapKind>>,
    /// Instructions executed (for statistics).
    pub steps: u64,
}

impl ThreadState {
    /// Creates a thread poised to execute `func` (no arguments).
    pub fn new(tid: u32, func: FuncId, image: &ProgramImage, seed: u64) -> Self {
        let f = image.module.func(func);
        let frame = Frame {
            func,
            block: f.entry(),
            inst: 0,
            regs: vec![Val::I64(0); f.num_values()],
            loop_stack: Vec::new(),
            // The root path hash must be identical in every thread: the
            // call-site path is a *cross-thread* correlation key.
            path_hash: KeyHasher::new().with(0x5bd1_e995).finish(),
            ret_dest: None,
        };
        ThreadState {
            tid,
            frames: vec![frame],
            local: LocalMemory::new(),
            outputs: Vec::new(),
            rng: SplitMix64::new(seed ^ (u64::from(tid) << 32) ^ 0x1234_5678_9abc_def0),
            barrier_epoch: 0,
            dyn_branches: 0,
            events_sent: 0,
            finished: None,
            steps: 0,
        }
    }

    /// Executes one instruction. `nthreads` is the SPMD width (for the
    /// `numthreads` op); `mem` is the shared memory; `hook` may inject
    /// faults at branches.
    pub fn step(
        &mut self,
        image: &ProgramImage,
        mem: &dyn SharedMemory,
        nthreads: u32,
        hook: &mut dyn BranchHook,
    ) -> StepOutcome {
        debug_assert!(self.finished.is_none(), "stepping a finished thread");
        self.steps += 1;

        let frame_index = self.frames.len() - 1;
        let (func_id, block, inst_index) = {
            let f = &self.frames[frame_index];
            (f.func, f.block, f.inst)
        };
        let func = image.module.func(func_id);
        let inst = &func.block(block).insts[inst_index];

        macro_rules! trap {
            ($kind:expr) => {{
                self.finished = Some(Err($kind));
                return StepOutcome::Trap($kind);
            }};
        }
        macro_rules! get {
            ($v:expr) => {
                self.frames[frame_index].regs[$v.index()]
            };
        }
        macro_rules! set {
            ($val:expr) => {
                if let Some(result) = inst.result {
                    self.frames[frame_index].regs[result.index()] = $val;
                }
            };
        }
        macro_rules! advance {
            ($cost:expr) => {{
                self.frames[frame_index].inst += 1;
                return StepOutcome::Ran { cost: $cost, event: None };
            }};
        }

        match &inst.op {
            Op::Const(v) => {
                set!(*v);
                advance!(CostClass::Free)
            }
            Op::Bin { op, lhs, rhs } => {
                let (l, r) = (get!(*lhs), get!(*rhs));
                let cost = match op {
                    BinOp::Mul => CostClass::Mul,
                    BinOp::Div | BinOp::Rem => CostClass::Div,
                    _ => CostClass::Alu,
                };
                match eval_bin(*op, l, r) {
                    Ok(v) => set!(v),
                    Err(k) => trap!(k),
                }
                advance!(cost)
            }
            Op::Cmp { op, lhs, rhs } => {
                let (l, r) = (get!(*lhs), get!(*rhs));
                match eval_cmp(*op, l, r) {
                    Ok(v) => set!(Val::Bool(v)),
                    Err(k) => trap!(k),
                }
                advance!(CostClass::Alu)
            }
            Op::Un { op, operand } => {
                match eval_un(*op, get!(*operand)) {
                    Ok(v) => set!(v),
                    Err(k) => trap!(k),
                }
                advance!(CostClass::Alu)
            }
            Op::Phi { .. } => {
                // Phis are evaluated on the incoming edge (see `transfer`);
                // reaching one at inst 0 means entry-block phi, impossible.
                advance!(CostClass::Free)
            }
            Op::GlobalAddr(g) => {
                set!(Val::Ptr(Ptr::shared(g.0)));
                advance!(CostClass::Free)
            }
            Op::Gep { base, offset } => {
                let Some(p) = get!(*base).as_ptr() else { trap!(TrapKind::TypeError) };
                let Some(off) = get!(*offset).as_i64() else { trap!(TrapKind::TypeError) };
                set!(Val::Ptr(p.offset_by(off)));
                advance!(CostClass::Alu)
            }
            Op::Load { addr, .. } => {
                let Some(p) = get!(*addr).as_ptr() else { trap!(TrapKind::TypeError) };
                let (value, cost) = match p.space {
                    Space::Shared => match mem.load(p) {
                        Ok(v) => (v, CostClass::Shared(p.region)),
                        Err(k) => trap!(k),
                    },
                    Space::Local => match self.local.load(p) {
                        Ok(v) => (v, CostClass::LocalMem),
                        Err(k) => trap!(k),
                    },
                };
                self.frames[frame_index].regs[inst.result.expect("load has result").index()] =
                    value;
                self.frames[frame_index].inst += 1;
                StepOutcome::Ran { cost, event: None }
            }
            Op::Store { addr, value } => {
                let Some(p) = get!(*addr).as_ptr() else { trap!(TrapKind::TypeError) };
                let v = get!(*value);
                let cost = match p.space {
                    Space::Shared => match mem.store(p, v) {
                        Ok(()) => CostClass::Shared(p.region),
                        Err(k) => trap!(k),
                    },
                    Space::Local => match self.local.store(p, v) {
                        Ok(()) => CostClass::LocalMem,
                        Err(k) => trap!(k),
                    },
                };
                self.frames[frame_index].inst += 1;
                StepOutcome::Ran { cost, event: None }
            }
            Op::Alloca { size } => {
                let Some(n) = get!(*size).as_i64() else { trap!(TrapKind::TypeError) };
                match self.local.alloca(n) {
                    Ok(p) => set!(Val::Ptr(p)),
                    Err(k) => trap!(k),
                }
                advance!(CostClass::LocalMem)
            }
            Op::ThreadId => {
                set!(Val::I64(i64::from(self.tid)));
                advance!(CostClass::Free)
            }
            Op::NumThreads => {
                set!(Val::I64(i64::from(nthreads)));
                advance!(CostClass::Free)
            }
            Op::AtomicFetchAdd { global, delta } => {
                let Some(d) = get!(*delta).as_i64() else { trap!(TrapKind::TypeError) };
                match mem.fetch_add(global.0, d) {
                    Ok(old) => set!(Val::I64(old)),
                    Err(k) => trap!(k),
                }
                advance!(CostClass::Atomic(global.0))
            }
            Op::Rand { bound } => {
                let Some(b) = get!(*bound).as_i64() else { trap!(TrapKind::TypeError) };
                let v = self.rng.below(b);
                set!(Val::I64(v));
                advance!(CostClass::Mul)
            }
            Op::Output(v) => {
                let value = get!(*v);
                self.outputs.push(value);
                advance!(CostClass::Output)
            }
            Op::MutexLock(m) => {
                let m = *m;
                self.frames[frame_index].inst += 1;
                StepOutcome::Lock(m)
            }
            Op::MutexUnlock(m) => {
                let m = *m;
                self.frames[frame_index].inst += 1;
                StepOutcome::Unlock(m)
            }
            Op::Barrier(b) => {
                let b = *b;
                self.frames[frame_index].inst += 1;
                self.barrier_epoch += 1;
                StepOutcome::Barrier(b)
            }
            Op::Call { func: callee, args, site } => {
                if self.frames.len() >= MAX_CALL_DEPTH {
                    trap!(TrapKind::StackOverflow);
                }
                let arg_vals: Vec<Val> = args.iter().map(|a| get!(*a)).collect();
                self.push_call(image, *callee, arg_vals, site.0, inst.result);
                StepOutcome::Ran { cost: CostClass::Call, event: None }
            }
            Op::CallIndirect { table, selector, args, site } => {
                if self.frames.len() >= MAX_CALL_DEPTH {
                    trap!(TrapKind::StackOverflow);
                }
                let Some(sel) = get!(*selector).as_i64() else { trap!(TrapKind::TypeError) };
                let funcs = &image.module.tables[table.index()].funcs;
                if sel < 0 || sel as usize >= funcs.len() {
                    trap!(TrapKind::BadIndirectCall);
                }
                let callee = funcs[sel as usize];
                let arg_vals: Vec<Val> = args.iter().map(|a| get!(*a)).collect();
                self.push_call(image, callee, arg_vals, site.0, inst.result);
                StepOutcome::Ran { cost: CostClass::Call, event: None }
            }
            Op::Br { cond, then_bb, else_bb } => {
                let (then_bb, else_bb) = (*then_bb, *else_bb);
                let Some(mut outcome) = get!(*cond).as_bool() else { trap!(TrapKind::TypeError) };
                self.dyn_branches += 1;

                let branch_id =
                    image.branch_id(func_id, block).expect("every Br is registered");
                let runtime = &image.branch_runtime[branch_id.index()];

                // The witness is captured *before* the branch executes, as
                // the paper's `sendBranchCondition` call precedes the branch
                // instruction PIN injects into. A condition-data fault at
                // the branch therefore sends the clean witness but takes
                // the corrupted direction — which is exactly what makes it
                // detectable as a within-group direction mismatch.
                let witness = runtime.witnesses.as_ref().map(|witnesses| {
                    let frame = &self.frames[frame_index];
                    let mut wh = KeyHasher::new();
                    for &w in witnesses {
                        wh.write(frame.regs[w.index()].bits());
                    }
                    wh.finish()
                });

                // Fault injection hook (the fault strikes at the branch).
                if let Some(action) = hook.on_branch(self.tid, self.dyn_branches, branch_id) {
                    match action {
                        FaultAction::FlipOutcome => outcome = !outcome,
                        FaultAction::CorruptData { value_choice, bit } => {
                            let targets = &runtime.cond_info.data_values;
                            let target = targets[value_choice as usize % targets.len()];
                            let regs = &mut self.frames[frame_index].regs;
                            let old = regs[target.index()];
                            let corrupted =
                                Val::from_bits(old.ty(), old.bits() ^ (1u64 << (bit % 64)));
                            regs[target.index()] = corrupted;
                            outcome = recompute_outcome(
                                &runtime.cond_info,
                                &self.frames[frame_index].regs,
                                *cond,
                            );
                        }
                    }
                }

                let event = witness.map(|witness| {
                    let frame = &self.frames[frame_index];
                    let mut ih = KeyHasher::new();
                    for &(l, i) in &frame.loop_stack {
                        ih.write(u64::from(l.0) << 32 | (i & 0xffff_ffff));
                    }
                    ih.write(self.barrier_epoch);
                    self.events_sent += 1;
                    BranchEvent {
                        branch: branch_id.0,
                        thread: self.tid,
                        site: frame.path_hash,
                        iter: ih.finish(),
                        witness,
                        taken: outcome,
                    }
                });

                let target = if outcome { then_bb } else { else_bb };
                self.transfer(image, frame_index, block, target);
                StepOutcome::Ran { cost: CostClass::Alu, event }
            }
            Op::Jump(target) => {
                let target = *target;
                self.transfer(image, frame_index, block, target);
                StepOutcome::Ran { cost: CostClass::Alu, event: None }
            }
            Op::Ret(v) => {
                let value = v.map(|v| get!(v));
                let popped = self.frames.pop().expect("ret pops a frame");
                if let Some(caller) = self.frames.last_mut() {
                    if let (Some(dest), Some(val)) = (popped.ret_dest, value) {
                        caller.regs[dest.index()] = val;
                    }
                    StepOutcome::Ran { cost: CostClass::Call, event: None }
                } else {
                    self.finished = Some(Ok(()));
                    StepOutcome::Done
                }
            }
            Op::Trap => {
                self.finished = Some(Err(TrapKind::Explicit));
                StepOutcome::Trap(TrapKind::Explicit)
            }
        }
    }

    fn push_call(
        &mut self,
        image: &ProgramImage,
        callee: FuncId,
        args: Vec<Val>,
        site: u32,
        ret_dest: Option<ValueId>,
    ) {
        let caller = self.frames.last_mut().expect("call from a frame");
        caller.inst += 1; // resume after the call on return

        // The callee's instance keys must distinguish caller loop
        // iterations and call sites: fold both into the child path hash.
        let mut h = KeyHasher::new().with(caller.path_hash).with(u64::from(site));
        for &(l, i) in &caller.loop_stack {
            h.write(u64::from(l.0) << 32 | (i & 0xffff_ffff));
        }
        let path_hash = h.finish();

        let f = image.module.func(callee);
        let mut regs = vec![Val::I64(0); f.num_values()];
        for (i, v) in args.into_iter().enumerate() {
            regs[i] = v;
        }
        self.frames.push(Frame {
            func: callee,
            block: f.entry(),
            inst: 0,
            regs,
            loop_stack: Vec::new(),
            path_hash,
            ret_dest,
        });
    }

    /// Transfers control along the edge `from → to` in the current frame:
    /// evaluates the target's phis (in parallel), updates the loop-iteration
    /// stack, and repositions the frame.
    fn transfer(&mut self, image: &ProgramImage, frame_index: usize, from: BlockId, to: BlockId) {
        let frame = &mut self.frames[frame_index];
        let func = image.module.func(frame.func);
        let meta = &image.func_meta[frame.func.index()];

        // Parallel phi evaluation.
        let target_block = func.block(to);
        let mut phi_writes: Vec<(ValueId, Val)> = Vec::new();
        for inst in target_block.phis() {
            let incomings = inst.op.phi_incomings().expect("phis() yields phis");
            let inc = incomings
                .iter()
                .find(|inc| inc.block == from)
                .expect("verifier guarantees an incoming per predecessor");
            phi_writes.push((
                inst.result.expect("phi has a result"),
                frame.regs[inc.value.index()],
            ));
        }
        for (dest, val) in phi_writes {
            frame.regs[dest.index()] = val;
        }

        // Loop-iteration bookkeeping.
        let chain = &meta.chains[to.index()];
        while let Some(&(top, _)) = frame.loop_stack.last() {
            if chain.contains(&top) {
                break;
            }
            frame.loop_stack.pop();
        }
        if let Some(header_loop) = meta.header_of[to.index()] {
            match frame.loop_stack.last_mut() {
                Some((top, iter)) if *top == header_loop => *iter += 1, // back edge
                _ => frame.loop_stack.push((header_loop, 0)),           // loop entry
            }
        }

        frame.block = to;
        frame.inst = 0;
    }
}

fn eval_bin(op: BinOp, l: Val, r: Val) -> Result<Val, TrapKind> {
    match (l, r) {
        (Val::I64(a), Val::I64(b)) => {
            let v = match op {
                BinOp::Add => a.wrapping_add(b),
                BinOp::Sub => a.wrapping_sub(b),
                BinOp::Mul => a.wrapping_mul(b),
                BinOp::Div => {
                    if b == 0 {
                        return Err(TrapKind::DivideByZero);
                    }
                    a.wrapping_div(b)
                }
                BinOp::Rem => {
                    if b == 0 {
                        return Err(TrapKind::DivideByZero);
                    }
                    a.wrapping_rem(b)
                }
                BinOp::And => a & b,
                BinOp::Or => a | b,
                BinOp::Xor => a ^ b,
                BinOp::Shl => a.wrapping_shl(b as u32 & 63),
                BinOp::Shr => a.wrapping_shr(b as u32 & 63),
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
            };
            Ok(Val::I64(v))
        }
        (Val::F64(a), Val::F64(b)) => {
            let v = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a / b, // IEEE semantics: inf/NaN, no trap
                BinOp::Rem => a % b,
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
                _ => return Err(TrapKind::TypeError),
            };
            Ok(Val::F64(v))
        }
        (Val::Bool(a), Val::Bool(b)) => {
            let v = match op {
                BinOp::And => a && b,
                BinOp::Or => a || b,
                BinOp::Xor => a != b,
                _ => return Err(TrapKind::TypeError),
            };
            Ok(Val::Bool(v))
        }
        _ => Err(TrapKind::TypeError),
    }
}

fn eval_cmp(op: CmpOp, l: Val, r: Val) -> Result<bool, TrapKind> {
    let ord = match (l, r) {
        (Val::I64(a), Val::I64(b)) => a.partial_cmp(&b),
        (Val::F64(a), Val::F64(b)) => a.partial_cmp(&b),
        (Val::Bool(a), Val::Bool(b)) => a.partial_cmp(&b),
        (Val::Ptr(a), Val::Ptr(b)) => a.offset.partial_cmp(&b.offset),
        _ => return Err(TrapKind::TypeError),
    };
    // NaN comparisons: only Ne holds, like IEEE.
    Ok(match (op, ord) {
        (CmpOp::Ne, None) => true,
        (_, None) => false,
        (CmpOp::Eq, Some(o)) => o.is_eq(),
        (CmpOp::Ne, Some(o)) => o.is_ne(),
        (CmpOp::Lt, Some(o)) => o.is_lt(),
        (CmpOp::Le, Some(o)) => o.is_le(),
        (CmpOp::Gt, Some(o)) => o.is_gt(),
        (CmpOp::Ge, Some(o)) => o.is_ge(),
    })
}

fn eval_un(op: UnOp, v: Val) -> Result<Val, TrapKind> {
    Ok(match (op, v) {
        (UnOp::Neg, Val::I64(a)) => Val::I64(a.wrapping_neg()),
        (UnOp::Neg, Val::F64(a)) => Val::F64(-a),
        (UnOp::Not, Val::Bool(a)) => Val::Bool(!a),
        (UnOp::Not, Val::I64(a)) => Val::I64(!a),
        (UnOp::Abs, Val::I64(a)) => Val::I64(a.wrapping_abs()),
        (UnOp::Abs, Val::F64(a)) => Val::F64(a.abs()),
        (UnOp::IntToFloat, Val::I64(a)) => Val::F64(a as f64),
        (UnOp::FloatToInt, Val::F64(a)) => {
            // Saturating conversion, like Rust's `as`.
            Val::I64(a as i64)
        }
        (UnOp::Sqrt, Val::F64(a)) => Val::F64(a.sqrt()),
        _ => return Err(TrapKind::TypeError),
    })
}

/// Recomputes a branch outcome after its condition data was corrupted: if
/// the condition is a comparison, re-evaluate it on the (now corrupted)
/// registers; otherwise the condition value itself was corrupted and its
/// low bit decides.
fn recompute_outcome(
    info: &bw_analysis::ConditionInfo,
    regs: &[Val],
    cond: ValueId,
) -> bool {
    match info.cmp {
        Some((op, lhs, rhs, negated)) => {
            let raw = eval_cmp(op, regs[lhs.index()], regs[rhs.index()]).unwrap_or(false);
            raw != negated
        }
        None => regs[cond.index()].as_bool().unwrap_or_else(|| {
            // Corrupted into a non-bool encoding: use the low bit.
            regs[cond.index()].bits() & 1 != 0
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_bounded() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            let x = a.below(10);
            assert_eq!(x, b.below(10));
            assert!((0..10).contains(&x));
        }
        assert_eq!(a.below(0), 0);
        assert_eq!(a.below(-5), 0);
    }

    #[test]
    fn eval_bin_int_semantics() {
        assert_eq!(eval_bin(BinOp::Add, Val::I64(2), Val::I64(3)), Ok(Val::I64(5)));
        assert_eq!(eval_bin(BinOp::Div, Val::I64(7), Val::I64(2)), Ok(Val::I64(3)));
        assert_eq!(eval_bin(BinOp::Div, Val::I64(7), Val::I64(0)), Err(TrapKind::DivideByZero));
        assert_eq!(
            eval_bin(BinOp::Add, Val::I64(i64::MAX), Val::I64(1)),
            Ok(Val::I64(i64::MIN))
        );
        assert_eq!(eval_bin(BinOp::Min, Val::I64(3), Val::I64(-2)), Ok(Val::I64(-2)));
    }

    #[test]
    fn eval_bin_float_never_traps_on_div() {
        let v = eval_bin(BinOp::Div, Val::F64(1.0), Val::F64(0.0)).unwrap();
        assert_eq!(v, Val::F64(f64::INFINITY));
    }

    #[test]
    fn eval_bin_type_mismatch() {
        assert_eq!(
            eval_bin(BinOp::Add, Val::I64(1), Val::F64(1.0)),
            Err(TrapKind::TypeError)
        );
        assert_eq!(
            eval_bin(BinOp::Shl, Val::Bool(true), Val::Bool(false)),
            Err(TrapKind::TypeError)
        );
    }

    #[test]
    fn eval_cmp_nan_semantics() {
        assert_eq!(eval_cmp(CmpOp::Eq, Val::F64(f64::NAN), Val::F64(1.0)), Ok(false));
        assert_eq!(eval_cmp(CmpOp::Ne, Val::F64(f64::NAN), Val::F64(1.0)), Ok(true));
        assert_eq!(eval_cmp(CmpOp::Lt, Val::F64(f64::NAN), Val::F64(1.0)), Ok(false));
    }

    #[test]
    fn eval_un_conversions() {
        assert_eq!(eval_un(UnOp::IntToFloat, Val::I64(3)), Ok(Val::F64(3.0)));
        assert_eq!(eval_un(UnOp::FloatToInt, Val::F64(3.9)), Ok(Val::I64(3)));
        assert_eq!(eval_un(UnOp::Sqrt, Val::F64(9.0)), Ok(Val::F64(3.0)));
        assert_eq!(eval_un(UnOp::Not, Val::Bool(true)), Ok(Val::Bool(false)));
        assert_eq!(eval_un(UnOp::Sqrt, Val::I64(9)), Err(TrapKind::TypeError));
    }
}
