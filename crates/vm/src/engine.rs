//! The engine abstraction: one execution core, pluggable schedulers.
//!
//! Both engines interpret the same [`ThreadState::step`] core over the same
//! [`ProgramImage`]; what differs is the *scheduler* wrapped around it:
//!
//! * [`SimEngine`] — the deterministic discrete-event scheduler of
//!   [`crate::sim`]: all threads interpreted in one OS thread under an
//!   explicit [`MachineModel`] cost model. Bitwise-reproducible.
//! * [`RealEngine`] — the real-threads scheduler of [`crate::real`]: one
//!   OS thread per SPMD thread, atomic shared memory, OS synchronization
//!   and the asynchronous monitor thread. Genuinely concurrent, hence
//!   schedule-dependent.
//!
//! Determinism is therefore a *scheduler* property, not an engine-core
//! property: [`Engine::deterministic`] tells callers (campaign planners,
//! test oracles, golden caches) whether two runs with the same
//! [`ExecConfig`] are bitwise-identical.
//!
//! Both schedulers accept the same [`ExecConfig`] and produce the same
//! [`RunResult`]; fields a scheduler cannot honour are documented on the
//! field and ignored (e.g. the cost model on [`RealEngine`]).
//!
//! [`ThreadState::step`]: crate::thread::ThreadState::step
//! [`MachineModel`]: crate::machine::MachineModel

use bw_ir::BranchId;
use bw_monitor::{BranchEvent, Violation, ViolationReport};
use bw_telemetry::TelemetrySnapshot;
use bw_ir::Val;
use serde::{Deserialize, Serialize};

use crate::image::ProgramImage;
use crate::machine::MachineModel;
use crate::thread::{BranchHook, FaultAction};
use crate::trap::TrapKind;

/// Which scheduler runs the program.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// The deterministic discrete-event simulator ([`SimEngine`]).
    Sim,
    /// Real OS threads with the asynchronous monitor ([`RealEngine`]).
    Real,
}

impl EngineKind {
    /// Stable lowercase name, used in CLI flags and telemetry labels.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Sim => "sim",
            EngineKind::Real => "real",
        }
    }
}

impl std::str::FromStr for EngineKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" => Ok(EngineKind::Sim),
            "real" => Ok(EngineKind::Real),
            other => Err(format!("unknown engine '{other}' (expected 'sim' or 'real')")),
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the monitor does with events during a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitorMode {
    /// Events are charged and checked (normal operation).
    Enabled,
    /// Events are charged (and, on the real engine, drained) but verdicts
    /// are discarded — the paper's methodology for the 32-thread
    /// performance runs on the 32-core machine.
    SendOnly,
    /// No instrumentation at all: the baseline program.
    Off,
}

/// How the program executes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExecMode {
    /// Normal execution.
    Normal,
    /// Software duplication (DMR) baseline: every thread re-executes its
    /// computation and compares (2× instruction cost, as in SWIFT/DAFT-style
    /// software duplication), and every shared access additionally pays a
    /// determinism-enforcement tax proportional to the thread count —
    /// replica pairs must observe identical memory orders, and "forcing
    /// execution order among threads incurs communication and waiting
    /// overheads that are proportional to the number of threads" (paper
    /// Section VI). Used for the Section VI comparison. Only meaningful on
    /// [`SimEngine`] (it is a cost-model effect); [`RealEngine`] ignores it.
    Duplicated,
}

/// Configuration of one run, shared by every engine.
///
/// Construct with [`ExecConfig::new`] and refine with the builder-style
/// setters; the struct is `#[non_exhaustive]`, so literal construction is
/// reserved for this crate (fields may be added without a breaking change).
///
/// Scheduler-specific fields are ignored by the other scheduler and say so
/// in their docs; the common subset (`nthreads`, `monitor`, `seed`,
/// `max_steps`) means the same thing everywhere.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub struct ExecConfig {
    /// Number of SPMD threads.
    pub nthreads: u32,
    /// Machine cost model. [`SimEngine`] only ([`RealEngine`] has no cost
    /// model; wall-clock on the host is meaningless for the paper's
    /// 32-core numbers).
    pub machine: MachineModel,
    /// Monitor behaviour.
    pub monitor: MonitorMode,
    /// Execution mode (normal or duplicated baseline). [`SimEngine`] only.
    pub exec: ExecMode,
    /// Seed for the per-thread PRNGs.
    pub seed: u64,
    /// Hang cutoff. On [`SimEngine`] this bounds the *total* interpreted
    /// instructions across all threads (the scheduler interleaves them in
    /// one loop); on [`RealEngine`] it bounds each thread independently
    /// (threads run free and cannot observe a global count cheaply).
    pub max_steps: u64,
    /// Instructions executed per scheduler slot. [`SimEngine`] only.
    pub quantum: u32,
    /// Determinism-enforcement cycles per shared access *per thread* in
    /// duplicated mode (the non-scaling term of Section VI). [`SimEngine`]
    /// only.
    pub dup_tax: u64,
    /// Record every [`BranchEvent`] produced in the parallel section on
    /// [`RunResult::branch_events`]. Independent of [`MonitorMode`] (events
    /// are captured even with the monitor off) and free of cycle cost, so
    /// test oracles can observe the event stream without perturbing timing.
    /// [`SimEngine`] only: on the real engine there is no deterministic
    /// event order to record, so the field is ignored and
    /// [`RunResult::branch_events`] stays empty.
    pub capture_events: bool,
    /// Per-thread SPSC event-queue capacity. [`RealEngine`] only (the
    /// simulator's inline monitor has no queue).
    pub queue_capacity: usize,
    /// Wall-clock watchdog for blocked waits, in milliseconds.
    /// [`RealEngine`] only: a real thread stuck at a barrier or mutex
    /// cannot observe a deadlock the way the simulator's scheduler can, so
    /// a wait past this deadline classifies the run as [`RunOutcome::Hung`]
    /// (the moral equivalent of the paper's injection-harness timeout).
    /// Lower it when injecting faults on the real engine — every deadlocked
    /// experiment costs this long in wall time.
    pub watchdog_ms: u64,
    /// When set, [`RealEngine`] uses the hierarchical monitor tree of the
    /// paper's Section VI with this many threads per sub-monitor, instead
    /// of one flat monitor thread. [`SimEngine`] ignores it (the inline
    /// monitor checks the same table either way).
    pub hierarchy_fanout: Option<usize>,
    /// When set, the monitor ingest is sharded across this many workers,
    /// each owning a disjoint `(site, branch)` key-space slice (routed by
    /// [`bw_monitor::shard_of`]). Takes precedence over `hierarchy_fanout`
    /// — see [`ExecConfig::monitor_topology`]. On [`SimEngine`] the inline
    /// monitor partitions its pending tables the same way, so verdicts are
    /// byte-identical at any shard count.
    pub monitor_shards: Option<usize>,
}

impl ExecConfig {
    /// A default configuration for `nthreads` threads.
    pub fn new(nthreads: u32) -> Self {
        ExecConfig {
            nthreads,
            machine: MachineModel::opteron_6128(),
            monitor: MonitorMode::Enabled,
            exec: ExecMode::Normal,
            seed: 0xb10c_0000,
            max_steps: 2_000_000_000,
            quantum: 64,
            dup_tax: 12,
            capture_events: false,
            queue_capacity: 1 << 14,
            watchdog_ms: 10_000,
            hierarchy_fanout: None,
            monitor_shards: None,
        }
    }

    /// Sets the monitor behaviour.
    pub fn monitor(mut self, monitor: MonitorMode) -> Self {
        self.monitor = monitor;
        self
    }

    /// Sets the execution mode.
    pub fn exec(mut self, exec: ExecMode) -> Self {
        self.exec = exec;
        self
    }

    /// Sets the machine cost model.
    pub fn machine(mut self, machine: MachineModel) -> Self {
        self.machine = machine;
        self
    }

    /// Sets the per-thread PRNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the hang-detection step budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the scheduler quantum (instructions per slot).
    pub fn quantum(mut self, quantum: u32) -> Self {
        self.quantum = quantum;
        self
    }

    /// Enables (or disables) branch-event capture on the result.
    pub fn capture_events(mut self, capture: bool) -> Self {
        self.capture_events = capture;
        self
    }

    /// Sets the real engine's per-thread event-queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity;
        self
    }

    /// Sets the real engine's blocked-wait watchdog (milliseconds).
    pub fn watchdog_ms(mut self, ms: u64) -> Self {
        self.watchdog_ms = ms;
        self
    }

    /// Selects the real engine's hierarchical monitor tree with the given
    /// fanout (`None` = one flat monitor thread).
    pub fn hierarchy_fanout(mut self, fanout: Option<usize>) -> Self {
        self.hierarchy_fanout = fanout;
        self
    }

    /// Shards the monitor ingest across `shards` workers (`None` = one
    /// monitor, i.e. whatever `hierarchy_fanout` selects).
    pub fn monitor_shards(mut self, shards: Option<usize>) -> Self {
        self.monitor_shards = shards;
        self
    }

    /// The monitor topology this configuration selects, in precedence
    /// order: `monitor_shards` wins over `hierarchy_fanout`, and neither
    /// means the paper's single flat monitor thread.
    pub fn monitor_topology(&self) -> bw_monitor::MonitorTopology {
        use bw_monitor::MonitorTopology;
        match (self.monitor_shards, self.hierarchy_fanout) {
            (Some(shards), _) => MonitorTopology::Sharded { shards },
            (None, Some(fanout)) => MonitorTopology::Hierarchical { fanout },
            (None, None) => MonitorTopology::Flat,
        }
    }
}

/// Backwards-compatible alias: the simulated engine's configuration is the
/// unified [`ExecConfig`].
pub type SimConfig = ExecConfig;

/// Backwards-compatible alias: the real engine's configuration is the
/// unified [`ExecConfig`]. (The old `max_steps_per_thread` field is the
/// unified `max_steps`, which the real engine interprets per thread.)
pub type RealConfig = ExecConfig;

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunOutcome {
    /// All phases completed.
    Completed,
    /// A thread trapped (the process crashes, as a segfault would).
    Crashed(TrapKind),
    /// The step budget was exhausted or the threads deadlocked.
    Hung,
}

/// Result of one run, shared by every engine.
///
/// Fields a scheduler cannot produce are zero/empty and documented below;
/// everything else means the same thing on both engines.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// How the run ended. On the real engine, the first trap (in thread-id
    /// join order) wins.
    pub outcome: RunOutcome,
    /// Program output: init outputs, then each thread's outputs in thread
    /// order, then fini outputs. The basis for SDC comparison.
    pub outputs: Vec<Val>,
    /// Simulated cycles of the parallel section (max over thread clocks).
    /// Sim engine only; `0` on the real engine (no cost model).
    pub parallel_cycles: u64,
    /// Monitor violations (detections), sorted by `(site, branch, iter)`
    /// so fixed-seed runs list violations identically on both engines and
    /// at any worker count.
    pub violations: Vec<Violation>,
    /// Structured provenance for each violation — the flight-recorder
    /// window, per-thread table and majority/deviant split captured at
    /// detection time — in the same `(site, branch, iter)` order as
    /// [`RunResult::violations`]. Empty without the `provenance` feature.
    pub violation_reports: Vec<ViolationReport>,
    /// Total interpreted instructions (all phases, all threads).
    pub total_steps: u64,
    /// Total monitor events sent by all threads.
    pub events_sent: u64,
    /// Events the monitor side actually processed. Equals `events_sent` on
    /// the sim engine with the monitor enabled (the inline monitor never
    /// drops); `0` with the monitor off.
    pub events_processed: u64,
    /// Events dropped because a queue stayed full (real engine only; the
    /// sim engine's inline monitor cannot drop). Aggregated from every
    /// sender through the shared drop counter, so counts survive worker
    /// threads that exit early. Nonzero means the monitor fell behind and
    /// verdicts may have missed violations.
    pub events_dropped: u64,
    /// Dynamic branches executed per thread (used by the fault injector's
    /// profiling phase).
    pub branches_per_thread: Vec<u64>,
    /// Interpreted instructions per SPMD thread (parallel section only).
    pub steps_per_thread: Vec<u64>,
    /// Everything this run measured: `vm.*` interpreter counts and cycle
    /// attribution, plus `monitor.*` instruments when the monitor ran, plus
    /// a `vm.engine.<kind>` label counter. Counters and gauges are
    /// deterministic for a given config and seed on the sim engine.
    pub telemetry: TelemetrySnapshot,
    /// Every branch event produced in the parallel section, in simulated
    /// execution order. Empty unless [`ExecConfig::capture_events`] is set
    /// — and always empty on the real engine (no deterministic order).
    pub branch_events: Vec<BranchEvent>,
}

impl RunResult {
    /// Whether the monitor flagged a violation.
    pub fn detected(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// Puts violations (and their provenance reports) into the deterministic
/// user-facing order: sorted by `(site, branch, iter, kind)`. Detection
/// order depends on queue drain interleaving on the real engine; the
/// sorted lists are byte-identical for a fixed seed at any worker count.
pub(crate) fn sort_violations(
    violations: &mut [Violation],
    reports: &mut [ViolationReport],
) {
    violations.sort_unstable_by_key(|v| (v.site, v.branch, v.iter, v.kind));
    reports.sort_unstable_by_key(|r| {
        let v = r.violation;
        (v.site, v.branch, v.iter, v.kind)
    });
}

/// Backwards-compatible alias: the real engine's result is the unified
/// [`RunResult`].
pub type RealResult = RunResult;

/// A branch hook that can be consulted from several OS threads at once.
///
/// The interpreter-level [`BranchHook`] takes `&mut self` — fine for the
/// single-OS-thread simulator, unusable across the real engine's workers.
/// Implementations of this trait use interior mutability (atomics) instead;
/// [`SharedHookAdapter`] turns one into a per-thread [`BranchHook`].
pub trait SharedBranchHook: Sync {
    /// Called for every dynamic branch, exactly like
    /// [`BranchHook::on_branch`] but through a shared reference.
    fn on_shared_branch(&self, tid: u32, dyn_index: u64, branch: BranchId) -> Option<FaultAction>;
}

/// The no-op [`SharedBranchHook`]: fault-free execution.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoSharedHook;

impl SharedBranchHook for NoSharedHook {
    fn on_shared_branch(&self, _: u32, _: u64, _: BranchId) -> Option<FaultAction> {
        None
    }
}

/// Adapts a [`SharedBranchHook`] to the interpreter's `&mut`-based
/// [`BranchHook`] so one shared hook can serve every worker thread.
pub struct SharedHookAdapter<'a>(pub &'a dyn SharedBranchHook);

impl BranchHook for SharedHookAdapter<'_> {
    fn on_branch(&mut self, tid: u32, dyn_index: u64, branch: BranchId) -> Option<FaultAction> {
        self.0.on_shared_branch(tid, dyn_index, branch)
    }
}

/// One scheduler wrapped around the shared interpreter core.
///
/// # Contract
///
/// For every implementation, `run` and `run_hooked` must:
///
/// * execute init single-threaded, then `nthreads` SPMD threads, then fini
///   single-threaded, collecting outputs in (init, thread-id, fini) order;
/// * consult the hook for every dynamic branch (init and fini run as
///   thread 0), applying any returned [`FaultAction`] *after* the
///   instrumentation witness is captured;
/// * classify the end state as `Completed`, first-trap `Crashed`, or
///   `Hung` on budget exhaustion / deadlock;
/// * honour [`MonitorMode`]: `Enabled` checks events, `SendOnly` pays the
///   send path but discards verdicts, `Off` sends nothing.
///
/// What is **not** part of the contract: determinism (ask
/// [`Engine::deterministic`]), cycle accounting, event capture, and which
/// `ExecConfig` knobs beyond the common subset take effect — those are
/// scheduler properties, documented per field.
pub trait Engine: Sync {
    /// Which scheduler this is.
    fn kind(&self) -> EngineKind;

    /// Whether two runs with identical `(image, config)` produce
    /// bitwise-identical [`RunResult`]s (outputs, outcome, counters, event
    /// order). Golden caches and campaign planners require this.
    fn deterministic(&self) -> bool;

    /// Runs `image` under this scheduler with a fault-injection hook.
    fn run_hooked(
        &self,
        image: &ProgramImage,
        config: &ExecConfig,
        hook: &dyn SharedBranchHook,
    ) -> RunResult;

    /// Runs `image` fault-free under this scheduler.
    fn run(&self, image: &ProgramImage, config: &ExecConfig) -> RunResult {
        self.run_hooked(image, config, &NoSharedHook)
    }
}

/// The deterministic discrete-event scheduler (see [`crate::sim`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct SimEngine;

impl Engine for SimEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Sim
    }

    fn deterministic(&self) -> bool {
        true
    }

    fn run_hooked(
        &self,
        image: &ProgramImage,
        config: &ExecConfig,
        hook: &dyn SharedBranchHook,
    ) -> RunResult {
        let mut adapter = SharedHookAdapter(hook);
        let result = crate::sim::run_sim_with_hook(image, config, &mut adapter);
        crate::live::record_run(EngineKind::Sim, &result);
        result
    }
}

/// The real-OS-threads scheduler (see [`crate::real`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct RealEngine;

impl Engine for RealEngine {
    fn kind(&self) -> EngineKind {
        EngineKind::Real
    }

    fn deterministic(&self) -> bool {
        false
    }

    fn run_hooked(
        &self,
        image: &ProgramImage,
        config: &ExecConfig,
        hook: &dyn SharedBranchHook,
    ) -> RunResult {
        let result = crate::real::run_real_engine(image, config, hook);
        crate::live::record_run(EngineKind::Real, &result);
        result
    }
}

/// The engine implementing `kind`, as a shared static (engines are
/// stateless).
pub fn engine(kind: EngineKind) -> &'static dyn Engine {
    match kind {
        EngineKind::Sim => &SimEngine,
        EngineKind::Real => &RealEngine,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_round_trips_through_names() {
        for kind in [EngineKind::Sim, EngineKind::Real] {
            assert_eq!(kind.name().parse::<EngineKind>().unwrap(), kind);
            assert_eq!(engine(kind).kind(), kind);
        }
        assert!("fast".parse::<EngineKind>().is_err());
    }

    #[test]
    fn determinism_is_a_scheduler_property() {
        assert!(engine(EngineKind::Sim).deterministic());
        assert!(!engine(EngineKind::Real).deterministic());
    }

    #[test]
    fn config_aliases_are_the_unified_type() {
        let sim = SimConfig::new(4);
        let real: RealConfig = sim.clone();
        assert_eq!(sim, real);
        assert_eq!(real.queue_capacity, 1 << 14);
        assert_eq!(real.hierarchy_fanout, None);
        assert_eq!(real.monitor_shards, None);
    }

    #[test]
    fn monitor_topology_precedence() {
        use bw_monitor::MonitorTopology;
        let cfg = ExecConfig::new(4);
        assert_eq!(cfg.monitor_topology(), MonitorTopology::Flat);
        let cfg = cfg.hierarchy_fanout(Some(2));
        assert_eq!(cfg.monitor_topology(), MonitorTopology::Hierarchical { fanout: 2 });
        let cfg = cfg.monitor_shards(Some(4));
        assert_eq!(cfg.monitor_topology(), MonitorTopology::Sharded { shards: 4 });
    }
}
