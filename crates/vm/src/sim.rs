//! The deterministic simulated-machine engine.
//!
//! All threads are interpreted within one OS thread; a discrete-event
//! scheduler always advances the runnable thread with the smallest local
//! clock, so execution (including lock acquisition order) is a
//! deterministic function of the program, the thread count, the seed and
//! the cost model. Cycle accounting follows [`MachineModel`]; the parallel
//! section's simulated time is the maximum thread clock at completion —
//! the quantity the paper reports in Figures 6 and 7.
//!
//! The monitor runs *inline* (its processing is not charged to application
//! threads, matching the paper's measurement methodology, which excludes
//! the asynchronous monitor's checking time); only the queue-push cost of
//! each event is charged to the sending thread. `SendOnly` mode reproduces
//! the paper's 32-thread setup where the monitor thread is disabled but
//! the sends still happen.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use bw_ir::Val;
use bw_monitor::{BranchEvent, CheckTable, ShardedMonitor};
use bw_telemetry::{tm_add, Recorder, TimeDomain, Value};

use crate::engine::{ExecMode, MonitorMode, RunOutcome, RunResult, SimConfig};
use crate::image::ProgramImage;
use crate::memory::SimMemory;
use crate::telemetry::VmTelemetry;
use crate::thread::{BranchHook, CostClass, NoHook, StepOutcome, ThreadState};
use crate::trap::TrapKind;

struct MutexState {
    owner: Option<u32>,
    waiters: Vec<u32>, // FIFO
}

struct BarrierState {
    arrivals: Vec<(u32, u64)>, // (tid, arrival clock)
}

/// Passive span collection for the deterministic engine: while a trace
/// sink is installed (`bw_telemetry::set_trace_sink`, the `--trace-spans`
/// path), the scheduler reports per-thread barrier-phase spans (with
/// per-phase step/branch counts), lock hold/wait intervals, barrier-wait
/// stalls and verdict flow arrows as `tspan` records timestamped in
/// simulated cycles. The tracer is never consulted for a scheduling
/// decision and writes only to the sink — tracing cannot perturb clocks,
/// verdicts or outputs, and every timestamp it emits is deterministic
/// for a fixed seed.
struct SimTracer {
    sink: Arc<dyn Recorder>,
    /// Start clock of each thread's current barrier phase.
    phase_start: Vec<u64>,
    /// Index of each thread's current barrier phase.
    phase: Vec<u64>,
    /// `ThreadState::steps` at phase start, for per-phase deltas.
    steps_base: Vec<u64>,
    /// `ThreadState::dyn_branches` at phase start.
    branches_base: Vec<u64>,
    /// Clock at which each thread blocked on a mutex, while it waits.
    wait_since: Vec<Option<u64>>,
    /// Acquire clock of each mutex's current owner.
    hold_since: Vec<Option<u64>>,
    /// Next causal-arrow id.
    flows: u64,
}

impl SimTracer {
    fn new(sink: Arc<dyn Recorder>, nthreads: usize, nmutexes: usize) -> Self {
        SimTracer {
            sink,
            phase_start: vec![0; nthreads],
            phase: vec![0; nthreads],
            steps_base: vec![0; nthreads],
            branches_base: vec![0; nthreads],
            wait_since: vec![None; nthreads],
            hold_since: vec![None; nmutexes],
            flows: 0,
        }
    }

    fn track(tid: u32) -> String {
        format!("t{tid}")
    }

    /// Closes thread `tid`'s current barrier phase at clock `end`.
    fn phase_span(&mut self, tid: u32, end: u64, thread: &ThreadState) {
        let t = tid as usize;
        let steps = thread.steps.saturating_sub(self.steps_base[t]);
        let branches = thread.dyn_branches.saturating_sub(self.branches_base[t]);
        bw_telemetry::record_span(
            self.sink.as_ref(),
            TimeDomain::Cycles,
            &Self::track(tid),
            "barrier_phase",
            &format!("phase {}", self.phase[t]),
            self.phase_start[t],
            end.saturating_sub(self.phase_start[t]),
            &[("steps", Value::U64(steps)), ("branches", Value::U64(branches))],
        );
    }

    /// A full barrier released at clock `release`: one phase span (work)
    /// plus one barrier-wait span (stall) per participant, then the next
    /// phase opens at the release clock for all of them.
    fn barrier_release(&mut self, arrivals: &[(u32, u64)], release: u64, threads: &[ThreadState]) {
        for &(tid, arrival) in arrivals {
            let t = tid as usize;
            self.phase_span(tid, arrival, &threads[t]);
            bw_telemetry::record_span(
                self.sink.as_ref(),
                TimeDomain::Cycles,
                &Self::track(tid),
                "barrier_wait",
                &format!("barrier (phase {})", self.phase[t]),
                arrival,
                release.saturating_sub(arrival),
                &[],
            );
            self.phase[t] += 1;
            self.phase_start[t] = release;
            self.steps_base[t] = threads[t].steps;
            self.branches_base[t] = threads[t].dyn_branches;
        }
    }

    fn lock_acquired(&mut self, m: usize, clock: u64) {
        self.hold_since[m] = Some(clock);
    }

    fn lock_blocked(&mut self, tid: u32, clock: u64) {
        self.wait_since[tid as usize] = Some(clock);
    }

    fn lock_released(&mut self, tid: u32, m: usize, clock: u64) {
        if let Some(start) = self.hold_since[m].take() {
            bw_telemetry::record_span(
                self.sink.as_ref(),
                TimeDomain::Cycles,
                &Self::track(tid),
                "lock_hold",
                &format!("mutex {m}"),
                start,
                clock.saturating_sub(start),
                &[],
            );
        }
    }

    fn lock_handoff(&mut self, next: u32, m: usize, granted: u64) {
        if let Some(start) = self.wait_since[next as usize].take() {
            bw_telemetry::record_span(
                self.sink.as_ref(),
                TimeDomain::Cycles,
                &Self::track(next),
                "lock_wait",
                &format!("mutex {m}"),
                start,
                granted.saturating_sub(start),
                &[],
            );
        }
        self.hold_since[m] = Some(granted);
    }

    /// The inline monitor flagged a violation while processing `event`:
    /// emit the causal arrow from the deviant thread's branch event to
    /// the monitor verdict, plus a visible instant on the monitor lane.
    fn verdict(&mut self, event: &BranchEvent, clock: u64) {
        let id = self.flows;
        self.flows += 1;
        let name = format!("site {}", event.site);
        let detail = [
            ("site", Value::U64(event.site)),
            ("branch", Value::U64(u64::from(event.branch))),
            ("iter", Value::U64(event.iter)),
        ];
        bw_telemetry::record_flow(
            self.sink.as_ref(),
            TimeDomain::Cycles,
            &Self::track(event.thread),
            "branch_event",
            &name,
            clock,
            id,
            true,
            &detail,
        );
        bw_telemetry::record_flow(
            self.sink.as_ref(),
            TimeDomain::Cycles,
            "monitor",
            "verdict",
            &name,
            clock,
            id,
            false,
            &detail,
        );
        bw_telemetry::record_instant(
            self.sink.as_ref(),
            TimeDomain::Cycles,
            "monitor",
            "violation",
            &name,
            clock,
            &detail,
        );
    }

    /// Closes every thread's final phase at its finish clock.
    fn finish(&mut self, finish_clock: &[u64], threads: &[ThreadState]) {
        for (t, thread) in threads.iter().enumerate() {
            self.phase_span(t as u32, finish_clock[t], thread);
        }
    }
}

/// Runs `image` on the simulated machine.
///
/// Thin wrapper kept for compatibility: prefer
/// [`engine`](crate::engine::engine)`(`[`EngineKind::Sim`](crate::engine::EngineKind)`)`
/// when the scheduler is a parameter rather than a fixed choice.
pub fn run_sim(image: &ProgramImage, config: &SimConfig) -> RunResult {
    run_sim_with_hook(image, config, &mut NoHook)
}

/// Runs `image` with a fault-injection hook.
///
/// Thin wrapper kept for compatibility: prefer
/// [`Engine::run_hooked`](crate::engine::Engine::run_hooked) with a
/// [`SharedBranchHook`](crate::engine::SharedBranchHook) when the scheduler
/// is a parameter rather than a fixed choice.
pub fn run_sim_with_hook(
    image: &ProgramImage,
    config: &SimConfig,
    hook: &mut dyn BranchHook,
) -> RunResult {
    Sim::new(image, config).run(hook)
}

struct Sim<'a> {
    image: &'a ProgramImage,
    config: &'a SimConfig,
    mem: SimMemory,
    monitor: Option<ShardedMonitor>,
    outputs: Vec<Val>,
    total_steps: u64,
    events_sent: u64,
    /// Oversubscription factor in duplicated mode.
    dup_factor: u64,
    telemetry: VmTelemetry,
    branch_events: Vec<BranchEvent>,
}

impl<'a> Sim<'a> {
    fn new(image: &'a ProgramImage, config: &'a SimConfig) -> Self {
        let monitor = match config.monitor {
            // The inline monitor partitions its pending tables across the
            // configured shard count exactly as the real engine's shard
            // workers do, so `--monitor-shards` is observable (and
            // verifiably verdict-neutral) on the deterministic engine too.
            MonitorMode::Enabled => Some(ShardedMonitor::new(
                CheckTable::from_plan(&image.plan),
                config.nthreads as usize,
                config.monitor_shards.unwrap_or(1),
            )),
            _ => None,
        };
        // Instruction-level duplication re-executes everything: 2x.
        let dup_factor = match config.exec {
            ExecMode::Normal => 1,
            ExecMode::Duplicated => 2,
        };
        Sim {
            image,
            config,
            mem: SimMemory::new(&image.module),
            monitor,
            outputs: Vec::new(),
            total_steps: 0,
            events_sent: 0,
            dup_factor,
            telemetry: VmTelemetry::new(),
            branch_events: Vec::new(),
        }
    }

    fn cost(&self, tid: u32, class: CostClass) -> u64 {
        let m = &self.config.machine;
        let n = self.config.nthreads;
        let base = match class {
            CostClass::Free => 0,
            CostClass::Alu => m.alu,
            CostClass::Mul => m.mul,
            CostClass::Div => m.div,
            CostClass::LocalMem => m.mem_local,
            CostClass::Shared(region) => {
                m.shared_access(tid, region, n) + self.determinism_tax()
            }
            CostClass::Atomic(region) => {
                m.shared_access(tid, region, n) + m.atomic + self.determinism_tax()
            }
            CostClass::Call => m.call,
            CostClass::Output => m.output,
        };
        let cycles = base * self.dup_factor;
        tm_add!(self.telemetry.cycles_for(class), cycles);
        cycles
    }

    /// The per-shared-access determinism-enforcement cost of duplicated
    /// mode, proportional to the thread count (Section VI's scaling
    /// argument). Note it is inside the ×2 duplication factor: both
    /// replicas pay it.
    fn determinism_tax(&self) -> u64 {
        match self.config.exec {
            ExecMode::Normal => 0,
            ExecMode::Duplicated => self.config.dup_tax * u64::from(self.config.nthreads) / 2,
        }
    }

    fn event_cost(&self, tid: u32) -> u64 {
        let m = &self.config.machine;
        let cycles = (m.event_build + m.event_push(tid, self.config.nthreads)) * self.dup_factor;
        tm_add!(self.telemetry.cycles_events, cycles);
        cycles
    }

    /// Runs a single-threaded phase (init / fini) on thread 0 state.
    fn run_serial(&mut self, func: bw_ir::FuncId, hook: &mut dyn BranchHook) -> Result<(), RunOutcome> {
        let mut thread = ThreadState::new(0, func, self.image, self.config.seed ^ 0xfeed);
        loop {
            self.total_steps += 1;
            if self.total_steps > self.config.max_steps {
                return Err(RunOutcome::Hung);
            }
            match thread.step(self.image, &self.mem, self.config.nthreads, hook) {
                StepOutcome::Ran { .. } => {}
                // Sync ops are no-ops single-threaded (a barrier with
                // nthreads participants in init would deadlock a real
                // program; our ports never do this).
                StepOutcome::Lock(_) | StepOutcome::Unlock(_) | StepOutcome::Barrier(_) => {}
                StepOutcome::Done => {
                    self.outputs.append(&mut thread.outputs);
                    return Ok(());
                }
                StepOutcome::Trap(k) => return Err(RunOutcome::Crashed(k)),
            }
        }
    }

    fn run(mut self, hook: &mut dyn BranchHook) -> RunResult {
        // Phase 1: init.
        if let Some(init) = self.image.module.init {
            if let Err(outcome) = self.run_serial(init, hook) {
                return self.finish(outcome, 0, Vec::new(), Vec::new());
            }
        }

        // Phase 2: parallel section.
        let (outcome, parallel_cycles, threads) = self.run_parallel(hook);
        if outcome != RunOutcome::Completed {
            let branches = threads.iter().map(|t| t.dyn_branches).collect();
            let steps = threads.iter().map(|t| t.steps).collect();
            return self.finish(outcome, parallel_cycles, branches, steps);
        }
        let branches: Vec<u64> = threads.iter().map(|t| t.dyn_branches).collect();
        let steps: Vec<u64> = threads.iter().map(|t| t.steps).collect();
        for mut t in threads {
            self.outputs.append(&mut t.outputs);
        }

        // Phase 3: fini.
        if let Some(fini) = self.image.module.fini {
            if let Err(o) = self.run_serial(fini, hook) {
                return self.finish(o, parallel_cycles, branches, steps);
            }
        }

        self.finish(RunOutcome::Completed, parallel_cycles, branches, steps)
    }

    fn finish(
        mut self,
        outcome: RunOutcome,
        parallel_cycles: u64,
        branches_per_thread: Vec<u64>,
        steps_per_thread: Vec<u64>,
    ) -> RunResult {
        let verdict = self.monitor.take().map(|mut m| {
            // The end-of-run flush only happens if the program survived:
            // a crash or hang kills the real monitor thread along with
            // the process, so only eagerly detected violations count.
            if outcome == RunOutcome::Completed {
                m.flush();
            }
            m.into_verdict()
        });
        let (mut violations, mut violation_reports, events_processed, monitor_telemetry) =
            match verdict {
                Some(v) => (v.violations, v.violation_reports, v.events_processed, Some(v.telemetry)),
                None => (Vec::new(), Vec::new(), 0, None),
            };
        crate::engine::sort_violations(&mut violations, &mut violation_reports);
        let mut telemetry = self.telemetry.snapshot();
        telemetry.push_counter("vm.engine.sim", 1);
        telemetry.push_counter("vm.instructions", self.total_steps);
        telemetry.push_counter("vm.events_sent", self.events_sent);
        telemetry.push_counter(
            "vm.branches",
            branches_per_thread.iter().copied().sum::<u64>(),
        );
        for (tid, steps) in steps_per_thread.iter().enumerate() {
            telemetry.push_counter(format!("vm.thread.{tid}.steps"), *steps);
        }
        if let Some(snapshot) = monitor_telemetry.as_ref() {
            telemetry.merge(snapshot);
        }
        RunResult {
            outcome,
            outputs: self.outputs,
            parallel_cycles,
            violations,
            violation_reports,
            total_steps: self.total_steps,
            events_sent: self.events_sent,
            events_processed,
            events_dropped: 0,
            branches_per_thread,
            steps_per_thread,
            telemetry,
            branch_events: self.branch_events,
        }
    }

    #[allow(clippy::type_complexity)]
    fn run_parallel(
        &mut self,
        hook: &mut dyn BranchHook,
    ) -> (RunOutcome, u64, Vec<ThreadState>) {
        let n = self.config.nthreads;
        let Some(entry) = self.image.module.spmd_entry else {
            return (RunOutcome::Completed, 0, Vec::new());
        };

        let mut threads: Vec<ThreadState> =
            (0..n).map(|tid| ThreadState::new(tid, entry, self.image, self.config.seed)).collect();
        let mut clocks = vec![0u64; n as usize];
        let mut blocked = vec![false; n as usize];
        let mut finish_clock = vec![0u64; n as usize];

        let mut mutexes: Vec<MutexState> = (0..self.image.module.num_mutexes)
            .map(|_| MutexState { owner: None, waiters: Vec::new() })
            .collect();
        let mut barriers: Vec<BarrierState> = (0..self.image.module.num_barriers)
            .map(|_| BarrierState { arrivals: Vec::new() })
            .collect();

        let mut heap: BinaryHeap<Reverse<(u64, u32)>> =
            (0..n).map(|tid| Reverse((0u64, tid))).collect();

        // Resolved once per run: cost nothing when no sink is installed.
        let mut tracer = bw_telemetry::trace_sink()
            .map(|sink| SimTracer::new(sink, n as usize, self.image.module.num_mutexes as usize));

        while let Some(Reverse((clock, tid))) = heap.pop() {
            let t = tid as usize;
            if threads[t].finished.is_some() || blocked[t] {
                continue; // stale heap entry
            }
            let mut clock = clock.max(clocks[t]);

            let mut requeue = true;
            for _ in 0..self.config.quantum {
                self.total_steps += 1;
                if self.total_steps > self.config.max_steps {
                    clocks[t] = clock;
                    let max_clock = clocks.iter().copied().max().unwrap_or(0);
                    return (RunOutcome::Hung, max_clock, threads);
                }

                let outcome = {
                    let thread = &mut threads[t];
                    thread.step(self.image, &self.mem, n, hook)
                };
                match outcome {
                    StepOutcome::Ran { cost, event } => {
                        clock += self.cost(tid, cost);
                        if let Some(event) = event {
                            if self.config.capture_events {
                                self.branch_events.push(event);
                            }
                            match self.config.monitor {
                                MonitorMode::Enabled => {
                                    clock += self.event_cost(tid);
                                    self.events_sent += 1;
                                    let monitor =
                                        self.monitor.as_mut().expect("enabled monitor exists");
                                    if let Some(tr) = tracer.as_mut() {
                                        let before = monitor.violations_found();
                                        monitor.process(event);
                                        if monitor.violations_found() > before {
                                            tr.verdict(&event, clock);
                                        }
                                    } else {
                                        monitor.process(event);
                                    }
                                }
                                MonitorMode::SendOnly => {
                                    clock += self.event_cost(tid);
                                    self.events_sent += 1;
                                }
                                MonitorMode::Off => {}
                            }
                        }
                    }
                    StepOutcome::Lock(m) => {
                        clock += self.cost(tid, CostClass::Alu) + self.config.machine.lock;
                        tm_add!(self.telemetry.cycles_sync, self.config.machine.lock);
                        let ms = &mut mutexes[m.index()];
                        if ms.owner.is_none() {
                            ms.owner = Some(tid);
                            if let Some(tr) = tracer.as_mut() {
                                tr.lock_acquired(m.index(), clock);
                            }
                        } else {
                            ms.waiters.push(tid);
                            if let Some(tr) = tracer.as_mut() {
                                tr.lock_blocked(tid, clock);
                            }
                            blocked[t] = true;
                            requeue = false;
                            break;
                        }
                    }
                    StepOutcome::Unlock(m) => {
                        clock += self.config.machine.lock;
                        tm_add!(self.telemetry.cycles_sync, self.config.machine.lock);
                        let ms = &mut mutexes[m.index()];
                        if ms.owner != Some(tid) {
                            // Control flow corrupted into an unlock the
                            // thread does not own: crash, like glibc would.
                            let max_clock = clocks.iter().copied().max().unwrap_or(0);
                            clocks[t] = clock;
                            return (
                                RunOutcome::Crashed(TrapKind::BadUnlock),
                                max_clock.max(clock),
                                threads,
                            );
                        }
                        ms.owner = None;
                        if let Some(tr) = tracer.as_mut() {
                            tr.lock_released(tid, m.index(), clock);
                        }
                        if !ms.waiters.is_empty() {
                            let next = ms.waiters.remove(0);
                            ms.owner = Some(next);
                            let nt = next as usize;
                            clocks[nt] =
                                clocks[nt].max(clock) + self.config.machine.lock_handoff;
                            blocked[nt] = false;
                            if let Some(tr) = tracer.as_mut() {
                                tr.lock_handoff(next, m.index(), clocks[nt]);
                            }
                            heap.push(Reverse((clocks[nt], next)));
                        }
                    }
                    StepOutcome::Barrier(b) => {
                        let bs = &mut barriers[b.index()];
                        bs.arrivals.push((tid, clock));
                        // Barriers are sized to the full thread count, like
                        // the pthread barriers in SPLASH-2: if a fault makes
                        // a thread exit early, the remaining threads
                        // deadlock here and the run is classified as hung.
                        if bs.arrivals.len() == n as usize {
                            // Release everyone at the max arrival clock.
                            let release = bs
                                .arrivals
                                .iter()
                                .map(|&(_, c)| c)
                                .max()
                                .expect("nonempty arrivals")
                                + self.config.machine.barrier_latency(n);
                            tm_add!(
                                self.telemetry.cycles_sync,
                                self.config.machine.barrier_latency(n)
                            );
                            for &(other, _) in &bs.arrivals {
                                let ot = other as usize;
                                clocks[ot] = release;
                                if other != tid {
                                    blocked[ot] = false;
                                    heap.push(Reverse((release, other)));
                                }
                            }
                            if let Some(tr) = tracer.as_mut() {
                                tr.barrier_release(&bs.arrivals, release, &threads);
                            }
                            bs.arrivals.clear();
                            clock = release;
                        } else {
                            blocked[t] = true;
                            requeue = false;
                            break;
                        }
                    }
                    StepOutcome::Done => {
                        finish_clock[t] = clock;
                        requeue = false;
                        break;
                    }
                    StepOutcome::Trap(k) => {
                        clocks[t] = clock;
                        let max_clock = clocks.iter().copied().max().unwrap_or(0).max(clock);
                        return (RunOutcome::Crashed(k), max_clock, threads);
                    }
                }
            }

            clocks[t] = clock;
            if requeue {
                heap.push(Reverse((clock, tid)));
            }
        }

        if threads.iter().any(|t| t.finished.is_none()) {
            // Heap empty with unfinished threads: deadlock (e.g. a barrier
            // missing an arrival after a fault diverted control flow).
            let max_clock = clocks.iter().copied().max().unwrap_or(0);
            return (RunOutcome::Hung, max_clock, threads);
        }

        let parallel_cycles = finish_clock.iter().copied().max().unwrap_or(0);
        if let Some(tr) = tracer.as_mut() {
            tr.finish(&finish_clock, &threads);
        }
        (RunOutcome::Completed, parallel_cycles, threads)
    }
}

/// Convenience: prepare and run a module with default analysis config.
pub fn run_module(module: bw_ir::Module, config: &SimConfig) -> RunResult {
    let image = ProgramImage::prepare(module, bw_analysis::AnalysisConfig::default());
    run_sim(&image, config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bw_ir::Val;

    fn compile(src: &str) -> ProgramImage {
        ProgramImage::prepare_default(bw_ir::frontend::compile(src).expect("compile"))
    }

    #[test]
    fn runs_simple_program_and_collects_outputs() {
        let image = compile(
            r#"
            @spmd func f() {
                output(threadid());
            }
            "#,
        );
        let result = run_sim(&image, &SimConfig::new(4));
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert_eq!(
            result.outputs,
            vec![Val::I64(0), Val::I64(1), Val::I64(2), Val::I64(3)]
        );
        assert!(!result.detected());
    }

    #[test]
    fn init_and_fini_run_single_threaded() {
        let image = compile(
            r#"
            shared int n = 0;
            int acc = 0;
            @init func setup() { n = 5; output(100); }
            @spmd func f() {
                lock_free_add();
            }
            func lock_free_add() {
                var i: int = fetch_add(acc, 1);
                output(i);
            }
            @fini func teardown() { output(acc); }
            "#,
        );
        let result = run_sim(&image, &SimConfig::new(2));
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert_eq!(result.outputs.first(), Some(&Val::I64(100)));
        assert_eq!(result.outputs.last(), Some(&Val::I64(2)));
    }

    #[test]
    fn deterministic_across_runs() {
        let image = compile(
            r#"
            shared int n = 64;
            float grid[256];
            mutex m;
            int counter = 0;
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    grid[t * n / numthreads() + i / numthreads()] = float(i * t);
                }
                lock(m);
                counter = counter + 1;
                unlock(m);
                output(rand(1000));
            }
            "#,
        );
        let a = run_sim(&image, &SimConfig::new(4));
        let b = run_sim(&image, &SimConfig::new(4));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.parallel_cycles, b.parallel_cycles);
        assert_eq!(a.total_steps, b.total_steps);
        assert_eq!(a.branches_per_thread, b.branches_per_thread);
    }

    #[test]
    fn mutexes_serialize_critical_sections() {
        let image = compile(
            r#"
            mutex m;
            int counter = 0;
            @spmd func f() {
                lock(m);
                counter = counter + 1;
                unlock(m);
            }
            @fini func done() { output(counter); }
            "#,
        );
        let result = run_sim(&image, &SimConfig::new(8));
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert_eq!(result.outputs, vec![Val::I64(8)]);
    }

    #[test]
    fn barrier_synchronizes_phases() {
        let image = compile(
            r#"
            barrier b;
            int phase1[32];
            @spmd func f() {
                var t: int = threadid();
                phase1[t] = t + 1;
                barrier(b);
                // After the barrier every slot written by phase 1 is visible.
                var sum: int = 0;
                for (var i: int = 0; i < numthreads(); i = i + 1) {
                    sum = sum + phase1[i];
                }
                output(sum);
            }
            "#,
        );
        let result = run_sim(&image, &SimConfig::new(4));
        assert_eq!(result.outcome, RunOutcome::Completed);
        // 1+2+3+4 = 10 from every thread.
        assert_eq!(result.outputs, vec![Val::I64(10); 4]);
    }

    #[test]
    fn divide_by_zero_crashes_the_program() {
        let image = compile(
            r#"
            shared int zero = 0;
            @spmd func f() {
                output(10 / zero);
            }
            "#,
        );
        let result = run_sim(&image, &SimConfig::new(2));
        assert_eq!(result.outcome, RunOutcome::Crashed(TrapKind::DivideByZero));
    }

    #[test]
    fn out_of_bounds_crashes() {
        let image = compile(
            r#"
            float grid[4];
            @spmd func f() {
                grid[9] = 1.0;
            }
            "#,
        );
        let result = run_sim(&image, &SimConfig::new(1));
        assert_eq!(result.outcome, RunOutcome::Crashed(TrapKind::OutOfBounds));
    }

    #[test]
    fn infinite_loop_hangs() {
        let image = compile(
            r#"
            @spmd func f() {
                var i: int = 0;
                while (true) { i = i + 1; }
            }
            "#,
        );
        let mut config = SimConfig::new(2);
        config.max_steps = 100_000;
        let result = run_sim(&image, &config);
        assert_eq!(result.outcome, RunOutcome::Hung);
    }

    #[test]
    fn fault_free_runs_have_no_violations() {
        let image = compile(
            r#"
            shared int n = 32;
            int data[512];
            @init func setup() {
                for (var i: int = 0; i < 512; i = i + 1) { data[i] = rand(100); }
            }
            @spmd func f() {
                var t: int = threadid();
                if (t == 0) { output(1); }
                for (var i: int = 0; i < n; i = i + 1) {
                    if (data[t * n + i] > 50) { output(i); }
                }
            }
            "#,
        );
        for nthreads in [1, 2, 4, 8] {
            let result = run_sim(&image, &SimConfig::new(nthreads));
            assert_eq!(result.outcome, RunOutcome::Completed, "n={nthreads}");
            assert!(!result.detected(), "false positive at n={nthreads}");
            assert!(result.events_sent > 0 || nthreads == 0);
        }
    }

    #[test]
    fn instrumentation_costs_cycles() {
        let image = compile(
            r#"
            shared int n = 256;
            @spmd func f() {
                var acc: int = 0;
                for (var i: int = 0; i < n; i = i + 1) { acc = acc + i; }
                output(acc);
            }
            "#,
        );
        let mut on = SimConfig::new(4);
        on.monitor = MonitorMode::Enabled;
        let mut off = SimConfig::new(4);
        off.monitor = MonitorMode::Off;
        let with = run_sim(&image, &on);
        let without = run_sim(&image, &off);
        assert_eq!(with.outputs, without.outputs);
        assert!(
            with.parallel_cycles > without.parallel_cycles,
            "instrumented {} !> baseline {}",
            with.parallel_cycles,
            without.parallel_cycles
        );
    }

    #[test]
    fn send_only_mode_costs_like_enabled_but_checks_nothing() {
        let image = compile(
            r#"
            shared int n = 64;
            @spmd func f() {
                for (var i: int = 0; i < n; i = i + 1) { output(i); }
            }
            "#,
        );
        let mut enabled = SimConfig::new(4);
        enabled.monitor = MonitorMode::Enabled;
        let mut send_only = SimConfig::new(4);
        send_only.monitor = MonitorMode::SendOnly;
        let a = run_sim(&image, &enabled);
        let b = run_sim(&image, &send_only);
        assert_eq!(a.parallel_cycles, b.parallel_cycles);
        assert_eq!(b.violations.len(), 0);
        assert_eq!(a.events_sent, b.events_sent);
    }

    #[test]
    fn sharded_monitor_is_verdict_and_cost_neutral() {
        let image = compile(
            r#"
            shared int n = 48;
            int data[512];
            @init func setup() {
                for (var i: int = 0; i < 512; i = i + 1) { data[i] = rand(100); }
            }
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    if (data[t * n + i] > 50) { output(i); }
                }
            }
            "#,
        );
        let flat = run_sim(&image, &SimConfig::new(4));
        assert_eq!(flat.outcome, RunOutcome::Completed);
        assert!(flat.events_processed > 0);
        for shards in [1usize, 2, 4, 8] {
            let sharded =
                run_sim(&image, &SimConfig::new(4).monitor_shards(Some(shards)));
            assert_eq!(sharded.outcome, flat.outcome, "shards={shards}");
            assert_eq!(sharded.outputs, flat.outputs, "shards={shards}");
            assert_eq!(sharded.parallel_cycles, flat.parallel_cycles, "shards={shards}");
            assert_eq!(sharded.total_steps, flat.total_steps, "shards={shards}");
            assert_eq!(sharded.events_processed, flat.events_processed, "shards={shards}");
            assert_eq!(sharded.violations, flat.violations, "shards={shards}");
            assert_eq!(sharded.violation_reports, flat.violation_reports, "shards={shards}");
        }
    }

    #[test]
    fn duplication_mode_is_slower() {
        let image = compile(
            r#"
            shared int n = 128;
            float grid[512];
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    grid[t * 4 + i / 32] = float(i);
                }
            }
            "#,
        );
        let mut base = SimConfig::new(32);
        base.monitor = MonitorMode::Off;
        let mut dup = base.clone();
        dup.exec = ExecMode::Duplicated;
        let a = run_sim(&image, &base);
        let b = run_sim(&image, &dup);
        assert!(b.parallel_cycles > a.parallel_cycles * 3 / 2);
    }
}
