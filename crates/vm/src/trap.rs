//! Trap (abnormal termination) kinds raised by the interpreter.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Why a thread aborted. Mirrors what the OS / hardware would deliver to a
/// native program: segmentation faults for wild accesses, arithmetic
/// exceptions, and explicit aborts.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TrapKind {
    /// Memory access outside its region (segfault-equivalent; region-based
    /// pointers make corrupted indices trap like OS page protection does).
    OutOfBounds,
    /// Integer division or remainder by zero.
    DivideByZero,
    /// Indirect-call selector outside the function table.
    BadIndirectCall,
    /// `alloca` with a negative or absurd size.
    BadAlloc,
    /// Call stack exceeded the depth limit.
    StackOverflow,
    /// The program executed an explicit `trap` (assertion failure).
    Explicit,
    /// A value had the wrong runtime type (internal error or corrupted
    /// pointer bits reinterpreted).
    TypeError,
    /// Unlock of a mutex the thread does not hold.
    BadUnlock,
}

impl fmt::Display for TrapKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrapKind::OutOfBounds => "out-of-bounds memory access",
            TrapKind::DivideByZero => "division by zero",
            TrapKind::BadIndirectCall => "indirect call outside table",
            TrapKind::BadAlloc => "invalid allocation size",
            TrapKind::StackOverflow => "call stack overflow",
            TrapKind::Explicit => "explicit trap",
            TrapKind::TypeError => "runtime type error",
            TrapKind::BadUnlock => "unlock of a mutex not held",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        for t in [
            TrapKind::OutOfBounds,
            TrapKind::DivideByZero,
            TrapKind::BadIndirectCall,
            TrapKind::BadAlloc,
            TrapKind::StackOverflow,
            TrapKind::Explicit,
            TrapKind::TypeError,
            TrapKind::BadUnlock,
        ] {
            assert!(!t.to_string().is_empty());
        }
    }
}
