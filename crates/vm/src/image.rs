//! Preprocessed program image: everything the interpreter needs per
//! instruction, resolved once before execution.

use std::collections::HashMap;

use bw_analysis::{AnalysisConfig, CheckPlan, ConditionInfo, ModuleAnalysis};
use bw_ir::{
    BlockId, BranchId, Cfg, DomTree, FuncId, LoopForest, LoopId, Module, ValueId, VerifyError,
};

/// Static per-function metadata used at runtime.
#[derive(Debug)]
pub struct FuncMeta {
    /// Loop chain (outermost first) of every block.
    pub chains: Vec<Vec<LoopId>>,
    /// The loop each block is the header of, if any.
    pub header_of: Vec<Option<LoopId>>,
}

/// Per-branch runtime info.
#[derive(Debug)]
pub struct BranchRuntime {
    /// Witness values to hash and send, when the branch is instrumented.
    pub witnesses: Option<Vec<ValueId>>,
    /// Condition structure used by fault injection (the branch's
    /// "condition data" and how to recompute the outcome after corrupting
    /// it).
    pub cond_info: ConditionInfo,
}

/// Wall-clock microseconds spent in each preparation stage, reported by
/// [`ProgramImage::try_prepare_timed`]. Timings are host wall-clock and
/// therefore excluded from the telemetry determinism contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct PrepareTimings {
    /// IR verification.
    pub verify_us: u64,
    /// Similarity analysis ([`ModuleAnalysis::run`]).
    pub analyze_us: u64,
    /// Instrumentation planning ([`CheckPlan::build`]).
    pub instrument_us: u64,
    /// Runtime-metadata linking (CFG/dominators/loops, branch tables).
    pub link_us: u64,
}

impl PrepareTimings {
    /// Total preparation time across all stages.
    pub fn total_us(&self) -> u64 {
        self.verify_us + self.analyze_us + self.instrument_us + self.link_us
    }
}

/// A fully analyzed, instrumented program ready to execute.
#[derive(Debug)]
pub struct ProgramImage {
    /// The IR module.
    pub module: Module,
    /// Similarity analysis results.
    pub analysis: ModuleAnalysis,
    /// Instrumentation plan.
    pub plan: CheckPlan,
    /// Per-function runtime metadata.
    pub func_meta: Vec<FuncMeta>,
    /// Per-function map from block to the id of its terminating branch.
    pub branch_at: Vec<HashMap<BlockId, BranchId>>,
    /// Per-branch runtime info, indexed by [`BranchId`].
    pub branch_runtime: Vec<BranchRuntime>,
}

impl ProgramImage {
    /// Analyzes and instruments `module` with `config`.
    ///
    /// The module must pass [`bw_ir::verify_module`]; the front-end
    /// guarantees this for compiled sources.
    ///
    /// # Panics
    ///
    /// Panics if the module fails verification (construct modules through
    /// the builder or front-end to avoid this, or use
    /// [`ProgramImage::try_prepare`] for a fallible variant).
    pub fn prepare(module: Module, config: AnalysisConfig) -> ProgramImage {
        Self::try_prepare(module, config).expect("module must verify before execution")
    }

    /// Analyzes and instruments `module` with `config`, returning the
    /// verifier's error instead of panicking when the module is malformed.
    pub fn try_prepare(module: Module, config: AnalysisConfig) -> Result<ProgramImage, VerifyError> {
        Self::try_prepare_timed(module, config).map(|(image, _)| image)
    }

    /// Like [`ProgramImage::try_prepare`], but also reports how long each
    /// preparation stage took (wall-clock; for telemetry, not for any
    /// deterministic comparison).
    pub fn try_prepare_timed(
        module: Module,
        config: AnalysisConfig,
    ) -> Result<(ProgramImage, PrepareTimings), VerifyError> {
        let mut timings = PrepareTimings::default();
        let t0 = std::time::Instant::now();
        bw_ir::verify_module(&module)?;
        timings.verify_us = t0.elapsed().as_micros() as u64;

        let t1 = std::time::Instant::now();
        // Both paths are bitwise-identical in everything the plan reads;
        // the SCC-parallel one drops the Table III trace, so the default
        // stays sequential until a caller opts in.
        let analysis = match config.analysis_workers {
            Some(workers) => ModuleAnalysis::run_parallel(&module, workers),
            None => ModuleAnalysis::run(&module),
        };
        timings.analyze_us = t1.elapsed().as_micros() as u64;

        let t2 = std::time::Instant::now();
        let plan = CheckPlan::build(&module, &analysis, config);
        timings.instrument_us = t2.elapsed().as_micros() as u64;

        let t3 = std::time::Instant::now();
        let mut func_meta = Vec::with_capacity(module.funcs.len());
        for func in &module.funcs {
            let cfg = Cfg::new(func);
            let dom = DomTree::new(&cfg, func.entry());
            let loops = LoopForest::new(&cfg, &dom);
            let chains: Vec<Vec<LoopId>> = (0..func.blocks.len())
                .map(|i| loops.loop_chain(BlockId::from_index(i)))
                .collect();
            let header_of: Vec<Option<LoopId>> = (0..func.blocks.len())
                .map(|i| loops.loop_with_header(BlockId::from_index(i)))
                .collect();
            func_meta.push(FuncMeta { chains, header_of });
        }

        let mut branch_at: Vec<HashMap<BlockId, BranchId>> =
            vec![HashMap::new(); module.funcs.len()];
        let mut branch_runtime = Vec::with_capacity(analysis.branches.len());
        for b in &analysis.branches {
            branch_at[b.func.index()].insert(b.block, b.id);
            let func = module.func(b.func);
            let cond_info = ConditionInfo::extract(func, b.cond);
            let witnesses = plan.check(b.id).map(|c| c.witnesses.clone());
            branch_runtime.push(BranchRuntime { witnesses, cond_info });
        }

        timings.link_us = t3.elapsed().as_micros() as u64;

        let image = ProgramImage { module, analysis, plan, func_meta, branch_at, branch_runtime };
        Ok((image, timings))
    }

    /// Prepares with the default (paper) configuration.
    pub fn prepare_default(module: Module) -> ProgramImage {
        Self::prepare(module, AnalysisConfig::default())
    }

    /// The branch id terminating `(func, block)`, if any.
    pub fn branch_id(&self, func: FuncId, block: BlockId) -> Option<BranchId> {
        self.branch_at[func.index()].get(&block).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepares_compiled_program() {
        let module = bw_ir::frontend::compile(
            r#"
            shared int n = 4;
            @spmd func f() {
                for (var i: int = 0; i < n; i = i + 1) { output(i); }
            }
            "#,
        )
        .unwrap();
        let image = ProgramImage::prepare_default(module);
        assert_eq!(image.branch_runtime.len(), 1);
        assert!(image.branch_runtime[0].witnesses.is_some());
        let f = image.module.spmd_entry.unwrap();
        let b = &image.analysis.branches[0];
        assert_eq!(image.branch_id(f, b.block), Some(b.id));
        // The loop body block is inside one loop.
        let meta = &image.func_meta[f.index()];
        assert!(meta.chains.iter().any(|c| c.len() == 1));
        assert!(meta.header_of.iter().flatten().count() == 1);
    }
}
