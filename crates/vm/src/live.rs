//! Live (process-cumulative) engine metrics for the global registry.
//!
//! Every engine run folds its headline [`crate::RunResult`] numbers into
//! these statics when it finishes, so the sampler and the `/metrics`
//! endpoint see events/sec and run throughput *across* runs — exactly
//! what a campaign looks like from the outside: thousands of short runs
//! whose individual snapshots never exist at the same time.
//!
//! The fold happens once per run (cold) with relaxed atomics, and the
//! values flow only into the global [`MetricRegistry`] — never back into
//! a `RunResult` — so deterministic snapshots are untouched.

use std::sync::{Arc, OnceLock};

use bw_telemetry::{Counter, MetricRegistry, MetricSource, TelemetrySnapshot};

use crate::engine::{EngineKind, RunResult};

static SIM_RUNS: Counter = Counter::new();
static REAL_RUNS: Counter = Counter::new();
static EVENTS_SENT: Counter = Counter::new();
static EVENTS_PROCESSED: Counter = Counter::new();
static TOTAL_STEPS: Counter = Counter::new();
static VIOLATIONS: Counter = Counter::new();

struct EngineLiveSource;

impl MetricSource for EngineLiveSource {
    fn collect(&self) -> TelemetrySnapshot {
        let mut s = TelemetrySnapshot::new();
        s.push_counter("live.engine.sim.runs", SIM_RUNS.get());
        s.push_counter("live.engine.real.runs", REAL_RUNS.get());
        s.push_counter("live.engine.events_sent", EVENTS_SENT.get());
        s.push_counter("live.engine.events_processed", EVENTS_PROCESSED.get());
        s.push_counter("live.engine.total_steps", TOTAL_STEPS.get());
        s.push_counter("live.engine.violations", VIOLATIONS.get());
        s
    }
}

/// Folds one finished run into the live registry (registering the source
/// on first use). A no-op without the `telemetry` feature.
pub(crate) fn record_run(kind: EngineKind, result: &RunResult) {
    if !bw_telemetry::ENABLED {
        return;
    }
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        MetricRegistry::global().register_source("engine.live", Arc::new(EngineLiveSource));
    });
    match kind {
        EngineKind::Sim => SIM_RUNS.inc(),
        EngineKind::Real => REAL_RUNS.inc(),
    }
    EVENTS_SENT.add(result.events_sent);
    EVENTS_PROCESSED.add(result.events_processed);
    TOTAL_STEPS.add(result.total_steps);
    VIOLATIONS.add(result.violations.len() as u64);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_recorded_run_reaches_the_global_registry() {
        let result = RunResult {
            outcome: crate::engine::RunOutcome::Completed,
            outputs: Vec::new(),
            parallel_cycles: 0,
            violations: Vec::new(),
            violation_reports: Vec::new(),
            total_steps: 10,
            events_sent: 5,
            events_processed: 5,
            events_dropped: 0,
            branches_per_thread: Vec::new(),
            steps_per_thread: Vec::new(),
            telemetry: TelemetrySnapshot::new(),
            branch_events: Vec::new(),
        };
        record_run(EngineKind::Sim, &result);
        if bw_telemetry::ENABLED {
            let snap = MetricRegistry::global().snapshot();
            assert!(snap.counter("live.engine.sim.runs").unwrap_or(0) >= 1);
            assert!(snap.counter("live.engine.events_sent").unwrap_or(0) >= 5);
        }
    }
}
