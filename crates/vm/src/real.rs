//! The real-threads engine: one OS thread per SPMD thread, atomic shared
//! memory, OS mutexes/barriers, per-thread lock-free queues and the
//! asynchronous monitor thread — the paper's actual runtime architecture.
//!
//! This engine has no cost model (wall-clock on the host is meaningless for
//! the paper's 32-core numbers; that is the simulator's job) but it
//! exercises the concurrency for real: queue pushes race with the monitor's
//! drains, and memory is genuinely shared. Used for the false-positive
//! experiments and as a sanity check that the lock-free machinery works.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Condvar, Mutex};

use bw_monitor::{
    spsc_queue, CheckTable, EventSender, HierarchicalMonitorThread, MonitorThread, Violation,
};
use bw_ir::Val;
use bw_telemetry::TelemetrySnapshot;

use crate::image::ProgramImage;
use crate::memory::AtomicMemory;
use crate::sim::RunOutcome;
use crate::thread::{NoHook, StepOutcome, ThreadState};
use crate::trap::TrapKind;

/// Configuration of a real-threads run.
#[derive(Clone, Debug)]
pub struct RealConfig {
    /// Number of SPMD threads.
    pub nthreads: u32,
    /// Per-thread queue capacity (events).
    pub queue_capacity: usize,
    /// Seed for the per-thread PRNGs.
    pub seed: u64,
    /// Per-thread step limit (hang cutoff).
    pub max_steps_per_thread: u64,
    /// When set, use the hierarchical monitor tree of the paper's
    /// Section VI with this many threads per sub-monitor, instead of one
    /// flat monitor thread.
    pub hierarchy_fanout: Option<usize>,
}

impl RealConfig {
    /// A default configuration for `nthreads` threads.
    pub fn new(nthreads: u32) -> Self {
        RealConfig {
            nthreads,
            queue_capacity: 1 << 14,
            seed: 0xb10c_0000,
            max_steps_per_thread: 500_000_000,
            hierarchy_fanout: None,
        }
    }
}

/// Result of a real-threads run.
#[derive(Debug)]
pub struct RealResult {
    /// How the run ended (first trap wins; hangs are per-thread step-limit
    /// exhaustion).
    pub outcome: RunOutcome,
    /// Program output (init, threads in id order, fini).
    pub outputs: Vec<Val>,
    /// Violations the monitor (flat or hierarchical) reported.
    pub violations: Vec<Violation>,
    /// Events the monitor side processed.
    pub events_processed: u64,
    /// Events dropped because a queue stayed full, aggregated from every
    /// sender through the shared drop counter (so counts survive worker
    /// threads that exit early). Nonzero means the monitor fell behind and
    /// verdicts may have missed violations.
    pub events_dropped: u64,
    /// `monitor.*` instruments from the monitor (queue high-water marks,
    /// flush batches, per-check-kind violation tallies) plus `vm.*` send
    /// counts from the workers.
    pub telemetry: TelemetrySnapshot,
}

impl RealResult {
    /// Whether the monitor flagged a violation.
    pub fn detected(&self) -> bool {
        !self.violations.is_empty()
    }
}

enum AnyMonitor {
    Flat(MonitorThread),
    Tree(HierarchicalMonitorThread),
}

impl AnyMonitor {
    /// Joins the monitor side: `(violations, events processed, events
    /// dropped, monitor telemetry)`.
    fn join(self) -> (Vec<Violation>, u64, u64, TelemetrySnapshot) {
        match self {
            AnyMonitor::Flat(m) => {
                let monitor = m.join();
                let events = monitor.events_processed();
                (
                    monitor.violations().to_vec(),
                    events,
                    monitor.events_dropped(),
                    monitor.snapshot(),
                )
            }
            AnyMonitor::Tree(t) => {
                let (root, events) = t.join();
                (
                    root.violations().to_vec(),
                    events,
                    root.events_dropped(),
                    root.snapshot(),
                )
            }
        }
    }
}

/// A mutex usable with unpaired lock/unlock coming from interpreted code.
struct RawMutex {
    state: Mutex<bool>,
    cv: Condvar,
}

impl RawMutex {
    fn new() -> Self {
        RawMutex { state: Mutex::new(false), cv: Condvar::new() }
    }

    fn lock(&self) {
        let mut held = self.state.lock().expect("mutex poisoned");
        while *held {
            held = self.cv.wait(held).expect("mutex poisoned");
        }
        *held = true;
    }

    /// Returns `false` if the mutex was not held (interpreter bug or
    /// fault-corrupted control flow).
    fn unlock(&self) -> bool {
        let mut held = self.state.lock().expect("mutex poisoned");
        if !*held {
            return false;
        }
        *held = false;
        self.cv.notify_one();
        true
    }
}

/// Runs `image` on real OS threads with the asynchronous monitor.
pub fn run_real(image: &Arc<ProgramImage>, config: &RealConfig) -> RealResult {
    let n = config.nthreads;
    let mem = Arc::new(AtomicMemory::new(&image.module));
    let mut outputs = Vec::new();

    // Phase 1: init, single-threaded.
    if let Some(init) = image.module.init {
        let mut t = ThreadState::new(0, init, image, config.seed ^ 0xfeed);
        loop {
            match t.step(image, &*mem, n, &mut NoHook) {
                StepOutcome::Ran { .. }
                | StepOutcome::Lock(_)
                | StepOutcome::Unlock(_)
                | StepOutcome::Barrier(_) => {}
                StepOutcome::Done => break,
                StepOutcome::Trap(k) => {
                    return RealResult {
                        outcome: RunOutcome::Crashed(k),
                        outputs,
                        violations: Vec::new(),
                        events_processed: 0,
                        events_dropped: 0,
                        telemetry: TelemetrySnapshot::new(),
                    }
                }
            }
            if t.steps > config.max_steps_per_thread {
                return RealResult {
                    outcome: RunOutcome::Hung,
                    outputs,
                    violations: Vec::new(),
                    events_processed: 0,
                    events_dropped: 0,
                    telemetry: TelemetrySnapshot::new(),
                };
            }
        }
        outputs.append(&mut t.outputs);
    }

    // Phase 2: parallel section with monitor thread.
    let mutexes: Arc<Vec<RawMutex>> =
        Arc::new((0..image.module.num_mutexes).map(|_| RawMutex::new()).collect());
    let barriers: Arc<Vec<std::sync::Barrier>> = Arc::new(
        (0..image.module.num_barriers).map(|_| std::sync::Barrier::new(n as usize)).collect(),
    );

    // One drop counter shared by every sender and the monitor: each sender
    // flushes its drop count into it when it goes away (even on early
    // thread exit), and the joined monitor folds in the total.
    let drops = Arc::new(AtomicU64::new(0));
    let mut producers = Vec::new();
    let mut consumers = Vec::new();
    for _ in 0..n {
        let (p, c) = spsc_queue(config.queue_capacity);
        producers.push(EventSender::with_drop_counter(p, Arc::clone(&drops)));
        consumers.push(c);
    }
    let monitor = match config.hierarchy_fanout {
        Some(fanout) => AnyMonitor::Tree(HierarchicalMonitorThread::spawn_with_drop_counter(
            CheckTable::from_plan(&image.plan),
            n as usize,
            consumers,
            fanout,
            Arc::clone(&drops),
        )),
        None => AnyMonitor::Flat(MonitorThread::spawn_with_drop_counter(
            CheckTable::from_plan(&image.plan),
            n as usize,
            consumers,
            Arc::clone(&drops),
        )),
    };

    let entry = image.module.spmd_entry;
    let handles: Vec<_> = producers
        .into_iter()
        .enumerate()
        .map(|(tid, mut sender)| {
            let image = Arc::clone(image);
            let mem = Arc::clone(&mem);
            let mutexes = Arc::clone(&mutexes);
            let barriers = Arc::clone(&barriers);
            let max_steps = config.max_steps_per_thread;
            let seed = config.seed;
            std::thread::Builder::new()
                .name(format!("bw-worker-{tid}"))
                .spawn(move || -> (Vec<Val>, Result<(), TrapKind>, u64, u64, bool) {
                    let Some(entry) = entry else {
                        return (Vec::new(), Ok(()), 0, 0, false);
                    };
                    let mut t = ThreadState::new(tid as u32, entry, &image, seed);
                    let mut hung = false;
                    let result = loop {
                        if t.steps > max_steps {
                            hung = true;
                            break Ok(());
                        }
                        match t.step(&image, &*mem, n, &mut NoHook) {
                            StepOutcome::Ran { event, .. } => {
                                if let Some(event) = event {
                                    sender.send(event);
                                }
                            }
                            StepOutcome::Lock(m) => mutexes[m.index()].lock(),
                            StepOutcome::Unlock(m) => {
                                if !mutexes[m.index()].unlock() {
                                    break Err(TrapKind::BadUnlock);
                                }
                            }
                            StepOutcome::Barrier(b) => {
                                barriers[b.index()].wait();
                            }
                            StepOutcome::Done => break Ok(()),
                            StepOutcome::Trap(k) => break Err(k),
                        }
                    };
                    // Dropping the sender here flushes its drop count into
                    // the shared counter the monitor reads at join.
                    (t.outputs, result, sender.sent(), t.steps, hung)
                })
                .expect("spawn worker")
        })
        .collect();

    let mut outcome = RunOutcome::Completed;
    let mut telemetry = TelemetrySnapshot::new();
    let mut events_sent = 0u64;
    for (tid, handle) in handles.into_iter().enumerate() {
        let (mut thread_outputs, result, sent, steps, hung) =
            handle.join().expect("worker panicked");
        outputs.append(&mut thread_outputs);
        events_sent += sent;
        telemetry.push_counter(format!("vm.thread.{tid}.steps"), steps);
        match result {
            Ok(()) if hung && outcome == RunOutcome::Completed => outcome = RunOutcome::Hung,
            Ok(()) => {}
            Err(k) => {
                if outcome == RunOutcome::Completed {
                    outcome = RunOutcome::Crashed(k);
                }
            }
        }
    }
    let (violations, events_processed, events_dropped, monitor_telemetry) = monitor.join();
    telemetry.push_counter("vm.events_sent", events_sent);
    telemetry.merge(&monitor_telemetry);

    // Phase 3: fini.
    if outcome == RunOutcome::Completed {
        if let Some(fini) = image.module.fini {
            let mut t = ThreadState::new(0, fini, image, config.seed ^ 0xf1f1);
            loop {
                match t.step(image, &*mem, n, &mut NoHook) {
                    StepOutcome::Ran { .. }
                    | StepOutcome::Lock(_)
                    | StepOutcome::Unlock(_)
                    | StepOutcome::Barrier(_) => {}
                    StepOutcome::Done => break,
                    StepOutcome::Trap(k) => {
                        outcome = RunOutcome::Crashed(k);
                        break;
                    }
                }
                if t.steps > config.max_steps_per_thread {
                    outcome = RunOutcome::Hung;
                    break;
                }
            }
            outputs.append(&mut t.outputs);
        }
    }

    RealResult { outcome, outputs, violations, events_processed, events_dropped, telemetry }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(src: &str) -> Arc<ProgramImage> {
        Arc::new(ProgramImage::prepare_default(bw_ir::frontend::compile(src).expect("compile")))
    }

    #[test]
    fn real_engine_runs_clean_program_without_violations() {
        let image = image(
            r#"
            shared int n = 16;
            int acc = 0;
            mutex m;
            barrier b;
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i == t) { output(i); }
                }
                lock(m);
                acc = acc + 1;
                unlock(m);
                barrier(b);
            }
            @fini func done() { output(acc); }
            "#,
        );
        let result = run_real(&image, &RealConfig::new(4));
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(!result.detected(), "{:?}", result.violations);
        assert_eq!(result.outputs.last(), Some(&Val::I64(4)));
        assert_eq!(result.events_dropped, 0);
        assert!(result.events_processed > 0);
    }

    #[test]
    fn real_engine_reports_crash() {
        let image = image(
            r#"
            float grid[4];
            @spmd func f() { grid[100] = 1.0; }
            "#,
        );
        let result = run_real(&image, &RealConfig::new(2));
        assert_eq!(result.outcome, RunOutcome::Crashed(TrapKind::OutOfBounds));
    }

    #[test]
    fn hierarchical_monitor_is_clean_on_real_program() {
        let image = image(
            r#"
            shared int n = 24;
            barrier b;
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i == t) { output(i); }
                }
                barrier(b);
            }
            "#,
        );
        let mut config = RealConfig::new(8);
        config.hierarchy_fanout = Some(4);
        let result = run_real(&image, &config);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(!result.detected(), "{:?}", result.violations);
        assert!(result.events_processed > 0);
    }

    #[test]
    fn real_engine_matches_sim_outputs() {
        let src = r#"
            shared int n = 32;
            int data[256];
            @init func setup() {
                for (var i: int = 0; i < 256; i = i + 1) { data[i] = i * 3; }
            }
            @spmd func f() {
                var t: int = threadid();
                var sum: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {
                    sum = sum + data[t * n + i];
                }
                output(sum);
            }
        "#;
        let img = image(src);
        let real = run_real(&img, &RealConfig::new(4));
        let sim = crate::sim::run_sim(&img, &crate::sim::SimConfig::new(4));
        assert_eq!(real.outputs, sim.outputs);
    }
}
