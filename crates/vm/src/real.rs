//! The real-threads engine: one OS thread per SPMD thread, atomic shared
//! memory, OS mutexes/barriers, per-thread lock-free queues and the
//! asynchronous monitor thread — the paper's actual runtime architecture.
//!
//! This engine has no cost model (wall-clock on the host is meaningless for
//! the paper's 32-core numbers; that is the simulator's job) but it
//! exercises the concurrency for real: queue pushes race with the monitor's
//! drains, and memory is genuinely shared. Used for the false-positive
//! experiments, the sim-vs-real parity suite and as a sanity check that the
//! lock-free machinery works.
//!
//! Unlike the simulator, this scheduler cannot observe a deadlock directly
//! (a thread stuck in `pthread_barrier_wait` is invisible to the others),
//! so blocked threads carry a wall-clock **watchdog**
//! ([`ExecConfig::watchdog_ms`]): a thread that waits past the deadline
//! declares the run hung, trips a shared stop flag and wakes every waiter
//! — the moral equivalent of the paper's injection-harness timeout. The
//! first trap likewise trips the stop flag, because a trap in a real
//! process kills every thread, which is also exactly what the simulator
//! models.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use bw_ir::Val;
use bw_monitor::{CheckTable, EventSender, MonitorBuilder, Violation, ViolationReport};
use bw_telemetry::{Recorder, TelemetrySnapshot, TimeDomain, Value};

use crate::engine::{
    ExecConfig, MonitorMode, RealConfig, RealResult, RunOutcome, RunResult, SharedBranchHook,
    SharedHookAdapter,
};
use crate::image::ProgramImage;
use crate::memory::AtomicMemory;
use crate::thread::{StepOutcome, ThreadState};
use crate::trap::TrapKind;

/// How a blocking wait ended.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WaitOutcome {
    /// The wait completed normally (lock acquired / barrier released).
    Released,
    /// Another thread tripped the stop flag while we waited.
    Stopped,
    /// The watchdog deadline passed: the run is deadlocked.
    TimedOut,
}

/// A mutex usable with unpaired lock/unlock coming from interpreted code,
/// with stop-flag and watchdog support on the blocking path.
struct RawMutex {
    state: Mutex<bool>,
    cv: Condvar,
}

impl RawMutex {
    fn new() -> Self {
        RawMutex { state: Mutex::new(false), cv: Condvar::new() }
    }

    fn lock(&self, stop: &AtomicBool, deadline: Instant) -> WaitOutcome {
        let mut held = self.state.lock().expect("mutex poisoned");
        while *held {
            if stop.load(Ordering::Relaxed) {
                return WaitOutcome::Stopped;
            }
            let now = Instant::now();
            if now >= deadline {
                return WaitOutcome::TimedOut;
            }
            let (guard, _) =
                self.cv.wait_timeout(held, deadline - now).expect("mutex poisoned");
            held = guard;
        }
        *held = true;
        WaitOutcome::Released
    }

    /// Returns `false` if the mutex was not held (interpreter bug or
    /// fault-corrupted control flow).
    fn unlock(&self) -> bool {
        let mut held = self.state.lock().expect("mutex poisoned");
        if !*held {
            return false;
        }
        *held = false;
        self.cv.notify_one();
        true
    }

    /// Wakes every waiter so it can observe a freshly tripped stop flag.
    fn interrupt(&self) {
        let _guard = self.state.lock().expect("mutex poisoned");
        self.cv.notify_all();
    }
}

/// A reusable barrier with stop-flag and watchdog support. `std`'s
/// `Barrier` cannot be interrupted, which would leave workers stuck forever
/// when a fault makes one thread miss its arrival.
struct RawBarrier {
    state: Mutex<BarrierGen>,
    cv: Condvar,
    participants: usize,
}

struct BarrierGen {
    arrived: usize,
    generation: u64,
}

impl RawBarrier {
    fn new(participants: usize) -> Self {
        RawBarrier {
            state: Mutex::new(BarrierGen { arrived: 0, generation: 0 }),
            cv: Condvar::new(),
            participants,
        }
    }

    fn wait(&self, stop: &AtomicBool, deadline: Instant) -> WaitOutcome {
        let mut s = self.state.lock().expect("barrier poisoned");
        s.arrived += 1;
        if s.arrived >= self.participants {
            s.arrived = 0;
            s.generation = s.generation.wrapping_add(1);
            self.cv.notify_all();
            return WaitOutcome::Released;
        }
        let generation = s.generation;
        while s.generation == generation {
            if stop.load(Ordering::Relaxed) {
                s.arrived -= 1;
                return WaitOutcome::Stopped;
            }
            let now = Instant::now();
            if now >= deadline {
                s.arrived -= 1;
                return WaitOutcome::TimedOut;
            }
            let (guard, _) = self.cv.wait_timeout(s, deadline - now).expect("barrier poisoned");
            s = guard;
        }
        WaitOutcome::Released
    }

    /// Wakes every waiter so it can observe a freshly tripped stop flag.
    fn interrupt(&self) {
        let _guard = self.state.lock().expect("barrier poisoned");
        self.cv.notify_all();
    }
}

/// Trips the stop flag and wakes everything that might be blocked on it.
/// Notifications happen under each primitive's lock, so a waiter that has
/// checked the flag but not yet parked cannot miss the wakeup.
fn trip_stop(stop: &AtomicBool, mutexes: &[RawMutex], barriers: &[RawBarrier]) {
    stop.store(true, Ordering::Relaxed);
    for m in mutexes {
        m.interrupt();
    }
    for b in barriers {
        b.interrupt();
    }
}

/// Wall-clock span collection for one real-engine worker, active only
/// while a trace sink is installed (`bw_telemetry::set_trace_sink`, the
/// `--trace-spans` path). Mirrors the simulator's `SimTracer` vocabulary
/// — barrier-phase spans with per-phase step/branch counts, barrier-wait
/// stalls, lock wait/hold intervals — but timestamps are microseconds
/// since a run-wide epoch (`dom: "us"`), because this engine has no cost
/// model. Timestamps share the process-wide trace epoch
/// (`bw_telemetry::wall_now_us`) so worker lanes line up with monitor
/// shard and campaign-stage lanes. The tracer only reads worker state
/// and writes to the sink, so tracing cannot change outputs or verdicts.
struct RealTracer {
    sink: Arc<dyn Recorder>,
    track: String,
    phase: u64,
    phase_start: u64,
    steps_base: u64,
    branches_base: u64,
    /// Acquire time of each mutex this worker currently holds.
    hold_since: Vec<Option<u64>>,
}

impl RealTracer {
    fn new(sink: Arc<dyn Recorder>, tid: u32, nmutexes: usize) -> Self {
        RealTracer {
            sink,
            track: format!("t{tid}"),
            phase: 0,
            phase_start: 0,
            steps_base: 0,
            branches_base: 0,
            hold_since: vec![None; nmutexes],
        }
    }

    fn now(&self) -> u64 {
        bw_telemetry::wall_now_us()
    }

    fn span(&self, cat: &str, name: &str, start: u64, end: u64, extra: &[(&str, Value)]) {
        bw_telemetry::record_span(
            self.sink.as_ref(),
            TimeDomain::WallUs,
            &self.track,
            cat,
            name,
            start,
            end.saturating_sub(start),
            extra,
        );
    }

    /// Closes the current barrier phase at time `end`.
    fn phase_span(&self, end: u64, t: &ThreadState) {
        self.span(
            "barrier_phase",
            &format!("phase {}", self.phase),
            self.phase_start,
            end,
            &[
                ("steps", Value::U64(t.steps.saturating_sub(self.steps_base))),
                ("branches", Value::U64(t.dyn_branches.saturating_sub(self.branches_base))),
            ],
        );
    }

    fn lock_acquired(&mut self, m: usize, wait_start: u64) {
        let now = self.now();
        self.span("lock_wait", &format!("mutex {m}"), wait_start, now, &[]);
        self.hold_since[m] = Some(now);
    }

    fn lock_released(&mut self, m: usize) {
        if let Some(start) = self.hold_since[m].take() {
            self.span("lock_hold", &format!("mutex {m}"), start, self.now(), &[]);
        }
    }

    /// A barrier this worker waited on was released: one phase span
    /// (work) plus one barrier-wait span (stall), then the next phase
    /// opens at the release time.
    fn barrier_released(&mut self, wait_start: u64, t: &ThreadState) {
        self.phase_span(wait_start, t);
        let now = self.now();
        self.span(
            "barrier_wait",
            &format!("barrier (phase {})", self.phase),
            wait_start,
            now,
            &[],
        );
        self.phase += 1;
        self.phase_start = now;
        self.steps_base = t.steps;
        self.branches_base = t.dyn_branches;
    }

    /// Closes the final phase when the worker completes normally.
    fn finish(&self, t: &ThreadState) {
        self.phase_span(self.now(), t);
    }
}

/// What one worker thread brought back.
struct WorkerExit {
    outputs: Vec<Val>,
    trap: Option<TrapKind>,
    hung: bool,
    sent: u64,
    steps: u64,
    dyn_branches: u64,
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    tid: u32,
    entry: Option<bw_ir::FuncId>,
    image: &ProgramImage,
    mem: &AtomicMemory,
    mutexes: &[RawMutex],
    barriers: &[RawBarrier],
    stop: &AtomicBool,
    deadline: Instant,
    config: &ExecConfig,
    hook: &dyn SharedBranchHook,
    mut sender: Option<EventSender>,
) -> WorkerExit {
    let Some(entry) = entry else {
        return WorkerExit {
            outputs: Vec::new(),
            trap: None,
            hung: false,
            sent: 0,
            steps: 0,
            dyn_branches: 0,
        };
    };
    let mut adapter = SharedHookAdapter(hook);
    let mut t = ThreadState::new(tid, entry, image, config.seed);
    let mut trap = None;
    let mut hung = false;
    // Resolved once per worker: costs nothing when no sink is installed.
    let mut tracer = bw_telemetry::trace_sink()
        .map(|sink| RealTracer::new(sink, tid, mutexes.len()));
    loop {
        if stop.load(Ordering::Relaxed) {
            // Another thread trapped or declared a hang; in a real process
            // we would be dead already. Our partial state is discarded by
            // the non-`Completed` outcome.
            break;
        }
        if t.steps > config.max_steps {
            hung = true;
            trip_stop(stop, mutexes, barriers);
            break;
        }
        match t.step(image, mem, config.nthreads, &mut adapter) {
            StepOutcome::Ran { event, .. } => {
                if let (Some(event), Some(sender)) = (event, sender.as_mut()) {
                    sender.send(event);
                }
            }
            StepOutcome::Lock(m) => {
                let wait_start = tracer.as_ref().map(|tr| tr.now());
                match mutexes[m.index()].lock(stop, deadline) {
                    WaitOutcome::Released => {
                        if let (Some(tr), Some(start)) = (tracer.as_mut(), wait_start) {
                            tr.lock_acquired(m.index(), start);
                        }
                    }
                    WaitOutcome::Stopped => break,
                    WaitOutcome::TimedOut => {
                        hung = true;
                        trip_stop(stop, mutexes, barriers);
                        break;
                    }
                }
            }
            StepOutcome::Unlock(m) => {
                if !mutexes[m.index()].unlock() {
                    trap = Some(TrapKind::BadUnlock);
                    trip_stop(stop, mutexes, barriers);
                    break;
                }
                if let Some(tr) = tracer.as_mut() {
                    tr.lock_released(m.index());
                }
            }
            StepOutcome::Barrier(b) => {
                let wait_start = tracer.as_ref().map(|tr| tr.now());
                match barriers[b.index()].wait(stop, deadline) {
                    WaitOutcome::Released => {
                        if let (Some(tr), Some(start)) = (tracer.as_mut(), wait_start) {
                            tr.barrier_released(start, &t);
                        }
                    }
                    WaitOutcome::Stopped => break,
                    WaitOutcome::TimedOut => {
                        hung = true;
                        trip_stop(stop, mutexes, barriers);
                        break;
                    }
                }
            }
            StepOutcome::Done => {
                if let Some(tr) = tracer.as_ref() {
                    tr.finish(&t);
                }
                break;
            }
            StepOutcome::Trap(k) => {
                trap = Some(k);
                trip_stop(stop, mutexes, barriers);
                break;
            }
        }
    }
    // Dropping the sender (at return) flushes its drop count into the
    // shared counter the monitor reads at join.
    WorkerExit {
        sent: sender.as_ref().map_or(0, |s| s.sent()),
        outputs: std::mem::take(&mut t.outputs),
        trap,
        hung,
        steps: t.steps,
        dyn_branches: t.dyn_branches,
    }
}

/// Runs a single-threaded phase (init / fini) on thread 0 state. Outputs
/// are appended only on success, like the simulator's serial phases.
fn run_serial_phase(
    image: &ProgramImage,
    mem: &AtomicMemory,
    func: bw_ir::FuncId,
    config: &ExecConfig,
    hook: &dyn SharedBranchHook,
    outputs: &mut Vec<Val>,
    total_steps: &mut u64,
) -> Result<(), RunOutcome> {
    let mut adapter = SharedHookAdapter(hook);
    let mut t = ThreadState::new(0, func, image, config.seed ^ 0xfeed);
    let result = loop {
        if t.steps > config.max_steps {
            break Err(RunOutcome::Hung);
        }
        match t.step(image, mem, config.nthreads, &mut adapter) {
            StepOutcome::Ran { .. } => {}
            // Sync ops are no-ops single-threaded (a barrier with
            // nthreads participants in init would deadlock a real
            // program; our ports never do this).
            StepOutcome::Lock(_) | StepOutcome::Unlock(_) | StepOutcome::Barrier(_) => {}
            StepOutcome::Done => break Ok(()),
            StepOutcome::Trap(k) => break Err(RunOutcome::Crashed(k)),
        }
    };
    *total_steps += t.steps;
    if result.is_ok() {
        outputs.append(&mut t.outputs);
    }
    result
}

/// The real engine's run loop; reached through
/// [`RealEngine`](crate::engine::RealEngine) or the [`run_real`] wrapper.
pub(crate) fn run_real_engine(
    image: &ProgramImage,
    config: &ExecConfig,
    hook: &dyn SharedBranchHook,
) -> RunResult {
    let n = config.nthreads;
    let mem = AtomicMemory::new(&image.module);
    let mut outputs = Vec::new();
    let mut total_steps = 0u64;

    let finish = |outcome: RunOutcome,
                  outputs: Vec<Val>,
                  total_steps: u64,
                  events: (u64, u64, u64),
                  mut violations: Vec<Violation>,
                  mut violation_reports: Vec<ViolationReport>,
                  branches_per_thread: Vec<u64>,
                  steps_per_thread: Vec<u64>,
                  mut telemetry: TelemetrySnapshot| {
        let (events_sent, events_processed, events_dropped) = events;
        crate::engine::sort_violations(&mut violations, &mut violation_reports);
        telemetry.push_counter("vm.engine.real", 1);
        telemetry.push_counter("vm.instructions", total_steps);
        telemetry.push_counter("vm.events_sent", events_sent);
        telemetry
            .push_counter("vm.branches", branches_per_thread.iter().copied().sum::<u64>());
        for (tid, steps) in steps_per_thread.iter().enumerate() {
            telemetry.push_counter(format!("vm.thread.{tid}.steps"), *steps);
        }
        RunResult {
            outcome,
            outputs,
            parallel_cycles: 0,
            violations,
            violation_reports,
            total_steps,
            events_sent,
            events_processed,
            events_dropped,
            branches_per_thread,
            steps_per_thread,
            telemetry,
            branch_events: Vec::new(),
        }
    };

    // Phase 1: init, single-threaded.
    if let Some(init) = image.module.init {
        if let Err(outcome) =
            run_serial_phase(image, &mem, init, config, hook, &mut outputs, &mut total_steps)
        {
            return finish(
                outcome,
                outputs,
                total_steps,
                (0, 0, 0),
                Vec::new(),
                Vec::new(),
                Vec::new(),
                Vec::new(),
                TelemetrySnapshot::new(),
            );
        }
    }

    // Phase 2: parallel section with monitor thread.
    let mutexes: Vec<RawMutex> =
        (0..image.module.num_mutexes).map(|_| RawMutex::new()).collect();
    let barriers: Vec<RawBarrier> =
        (0..image.module.num_barriers).map(|_| RawBarrier::new(n as usize)).collect();
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_millis(config.watchdog_ms);

    // The builder wires the full monitor side for whichever topology the
    // config selects — flat, hierarchical tree, or sharded ingest — and
    // hands back one routing sender per SPMD thread. Sender-side drop
    // counts flow into per-shard sinks that the joined verdict folds in,
    // so counts survive worker threads that exit early.
    let (senders, monitor): (Vec<Option<EventSender>>, _) = match config.monitor {
        MonitorMode::Off => ((0..n).map(|_| None).collect(), None),
        MonitorMode::Enabled | MonitorMode::SendOnly => {
            let (senders, handle) =
                MonitorBuilder::new(CheckTable::from_plan(&image.plan), n as usize)
                    .topology(config.monitor_topology())
                    .queue_capacity(config.queue_capacity)
                    .spawn();
            (senders.into_iter().map(Some).collect(), Some(handle))
        }
    };

    let entry = image.module.spmd_entry;
    let worker_exits: Vec<WorkerExit> = std::thread::scope(|scope| {
        let mem = &mem;
        let mutexes = &mutexes[..];
        let barriers = &barriers[..];
        let stop = &stop;
        let handles: Vec<_> = senders
            .into_iter()
            .enumerate()
            .map(|(tid, sender)| {
                scope.spawn(move || {
                    worker_loop(
                        tid as u32, entry, image, mem, mutexes, barriers, stop, deadline,
                        config, hook, sender,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    // All senders are gone, so the monitor drains the queues and exits.
    let (mut violations, mut violation_reports, events_processed, events_dropped, monitor_telemetry) =
        match monitor {
            Some(handle) => {
                let verdict = handle.join();
                (
                    verdict.violations,
                    verdict.violation_reports,
                    verdict.events_processed,
                    verdict.events_dropped,
                    verdict.telemetry,
                )
            }
            None => (Vec::new(), Vec::new(), 0, 0, TelemetrySnapshot::new()),
        };
    if config.monitor == MonitorMode::SendOnly {
        // The send path ran hot (queues drained for real), but verdicts are
        // discarded — the paper's 32-thread methodology.
        violations.clear();
        violation_reports.clear();
    }

    // Aggregate workers: first trap (in thread-id order) wins, like the
    // simulator; otherwise any hang makes the run hung.
    let mut outcome = RunOutcome::Completed;
    for w in &worker_exits {
        if let Some(k) = w.trap {
            outcome = RunOutcome::Crashed(k);
            break;
        }
    }
    if outcome == RunOutcome::Completed && worker_exits.iter().any(|w| w.hung) {
        outcome = RunOutcome::Hung;
    }
    let branches_per_thread: Vec<u64> = worker_exits.iter().map(|w| w.dyn_branches).collect();
    let steps_per_thread: Vec<u64> = worker_exits.iter().map(|w| w.steps).collect();
    let events_sent: u64 = worker_exits.iter().map(|w| w.sent).sum();
    total_steps += steps_per_thread.iter().sum::<u64>();
    if outcome == RunOutcome::Completed {
        for mut w in worker_exits {
            outputs.append(&mut w.outputs);
        }
    }

    // Phase 3: fini. Same seed derivation as the simulator's serial phases
    // so the engines agree on fini-local PRNG draws.
    if outcome == RunOutcome::Completed {
        if let Some(fini) = image.module.fini {
            if let Err(o) =
                run_serial_phase(image, &mem, fini, config, hook, &mut outputs, &mut total_steps)
            {
                outcome = o;
            }
        }
    }

    finish(
        outcome,
        outputs,
        total_steps,
        (events_sent, events_processed, events_dropped),
        violations,
        violation_reports,
        branches_per_thread,
        steps_per_thread,
        monitor_telemetry,
    )
}

/// Runs `image` on real OS threads with the asynchronous monitor.
///
/// Thin wrapper kept for compatibility: prefer
/// [`engine`](crate::engine::engine)`(`[`EngineKind::Real`](crate::engine::EngineKind)`)`
/// when the scheduler is a parameter rather than a fixed choice.
pub fn run_real(image: &Arc<ProgramImage>, config: &RealConfig) -> RealResult {
    run_real_engine(image, config, &crate::engine::NoSharedHook)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{engine, EngineKind};

    fn image(src: &str) -> Arc<ProgramImage> {
        Arc::new(ProgramImage::prepare_default(bw_ir::frontend::compile(src).expect("compile")))
    }

    #[test]
    fn real_engine_runs_clean_program_without_violations() {
        let image = image(
            r#"
            shared int n = 16;
            int acc = 0;
            mutex m;
            barrier b;
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i == t) { output(i); }
                }
                lock(m);
                acc = acc + 1;
                unlock(m);
                barrier(b);
            }
            @fini func done() { output(acc); }
            "#,
        );
        let result = run_real(&image, &RealConfig::new(4));
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(!result.detected(), "{:?}", result.violations);
        assert_eq!(result.outputs.last(), Some(&Val::I64(4)));
        assert_eq!(result.events_dropped, 0);
        assert!(result.events_processed > 0);
        assert_eq!(result.branches_per_thread.len(), 4);
        assert!(result.total_steps > 0);
    }

    #[test]
    fn real_engine_reports_crash() {
        let image = image(
            r#"
            float grid[4];
            @spmd func f() { grid[100] = 1.0; }
            "#,
        );
        let result = run_real(&image, &RealConfig::new(2));
        assert_eq!(result.outcome, RunOutcome::Crashed(TrapKind::OutOfBounds));
    }

    #[test]
    fn hierarchical_monitor_is_clean_on_real_program() {
        let image = image(
            r#"
            shared int n = 24;
            barrier b;
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i == t) { output(i); }
                }
                barrier(b);
            }
            "#,
        );
        let mut config = RealConfig::new(8);
        config.hierarchy_fanout = Some(4);
        let result = run_real(&image, &config);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(!result.detected(), "{:?}", result.violations);
        assert!(result.events_processed > 0);
    }

    #[test]
    fn sharded_monitor_is_clean_on_real_program() {
        let image = image(
            r#"
            shared int n = 24;
            barrier b;
            @spmd func f() {
                var t: int = threadid();
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i == t) { output(i); }
                }
                barrier(b);
            }
            "#,
        );
        let config = RealConfig::new(8).monitor_shards(Some(4));
        let result = run_real(&image, &config);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(!result.detected(), "{:?}", result.violations);
        assert_eq!(result.events_dropped, 0);
        assert_eq!(result.events_sent, result.events_processed);
        // Per-shard health counters surface in the run telemetry and sum
        // to the merged total.
        let per_shard: u64 = (0..4)
            .map(|s| {
                result
                    .telemetry
                    .counter(&format!("monitor.shard.{s}.events_processed"))
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(per_shard, result.events_processed);
    }

    #[test]
    fn real_engine_matches_sim_outputs() {
        let src = r#"
            shared int n = 32;
            int data[256];
            @init func setup() {
                for (var i: int = 0; i < 256; i = i + 1) { data[i] = i * 3; }
            }
            @spmd func f() {
                var t: int = threadid();
                var sum: int = 0;
                for (var i: int = 0; i < n; i = i + 1) {
                    sum = sum + data[t * n + i];
                }
                output(sum);
            }
        "#;
        let img = image(src);
        let real = run_real(&img, &RealConfig::new(4));
        let sim = crate::sim::run_sim(&img, &crate::engine::SimConfig::new(4));
        assert_eq!(real.outputs, sim.outputs);
    }

    #[test]
    fn monitor_off_sends_nothing() {
        let image = image(
            r#"
            shared int n = 8;
            @spmd func f() {
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i == threadid()) { output(i); }
                }
            }
            "#,
        );
        let config = RealConfig::new(4).monitor(MonitorMode::Off);
        let result = engine(EngineKind::Real).run(&image, &config);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert_eq!(result.events_sent, 0);
        assert_eq!(result.events_processed, 0);
        assert!(result.violations.is_empty());
    }

    #[test]
    fn send_only_discards_verdicts_but_drains_queues() {
        let image = image(
            r#"
            shared int n = 16;
            @spmd func f() {
                for (var i: int = 0; i < n; i = i + 1) {
                    if (i == threadid()) { output(i); }
                }
            }
            "#,
        );
        let config = RealConfig::new(4).monitor(MonitorMode::SendOnly);
        let result = engine(EngineKind::Real).run(&image, &config);
        assert_eq!(result.outcome, RunOutcome::Completed);
        assert!(result.events_sent > 0);
        assert!(result.violations.is_empty());
    }

    #[test]
    fn watchdog_classifies_a_missing_barrier_arrival_as_hung() {
        // Thread 0 skips the barrier, so the rest wait forever; the
        // watchdog must turn that into a Hung classification instead of
        // wedging the test binary.
        let image = image(
            r#"
            barrier b;
            @spmd func f() {
                if (threadid() != 0) { barrier(b); }
                output(threadid());
            }
            "#,
        );
        let config = RealConfig::new(4).watchdog_ms(200);
        let result = engine(EngineKind::Real).run(&image, &config);
        assert_eq!(result.outcome, RunOutcome::Hung);
    }
}
